"""Horizontal sharding: the oid space partitioned across N databases.

A :class:`ShardedDatabase` routes every operation to the shard that owns
the target oid (see :mod:`repro.shard.placement`), keeps single-shard
transactions on the embedded fast path, and runs cross-shard transactions
through two-phase commit (:mod:`repro.shard.coordinator`) with restart
resolution of in-doubt participants (:mod:`repro.shard.recovery`).
"""

from repro.shard.placement import ModuloPlacement
from repro.shard.recovery import ResolutionReport
from repro.shard.router import ShardedDatabase

__all__ = ["ModuloPlacement", "ResolutionReport", "ShardedDatabase"]
