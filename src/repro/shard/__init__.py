"""Horizontal sharding: the oid space partitioned across N databases.

A :class:`ShardedDatabase` routes every operation to the shard that owns
the target oid (see :mod:`repro.shard.placement`), keeps single-shard
transactions on the embedded fast path, and runs cross-shard transactions
through two-phase commit (:mod:`repro.shard.coordinator`) with restart
resolution of in-doubt participants (:mod:`repro.shard.recovery`).

Each shard is an independent **failure domain**: a shard can be killed
abruptly (``kill_shard``) and reattached online (``reattach_shard``, with
in-doubt 2PC resolution) while operations confined to healthy shards
keep serving and down-shard operations fail fast with
:class:`~repro.errors.ShardUnavailableError`.
"""

from repro.shard.executor import ShardExecutor
from repro.shard.placement import ModuloPlacement
from repro.shard.recovery import ResolutionReport
from repro.shard.router import (
    SHARD_DEGRADED,
    SHARD_DOWN,
    SHARD_UP,
    ShardedDatabase,
)
from repro.shard.snapshot import GlobalSnapshot

__all__ = [
    "GlobalSnapshot",
    "ModuloPlacement",
    "ResolutionReport",
    "SHARD_DEGRADED",
    "SHARD_DOWN",
    "SHARD_UP",
    "ShardExecutor",
    "ShardedDatabase",
]
