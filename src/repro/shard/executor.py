"""The shard executor: one bounded thread pool for every fan-out.

Every cross-shard operation -- fan-out queries, cluster scans, stats
aggregation, multi-holder ``latest_vid`` ranking, and both 2PC phases --
scatters its per-shard work through one shared :class:`ShardExecutor`
owned by the router.  One pool, sized to the shard count, so the
parallelism budget is a property of the topology rather than of whoever
happens to call first; concurrent fan-outs queue behind each other
instead of multiplying threads.

Why a bespoke pool instead of ``concurrent.futures``:

* **Crash semantics.**  :class:`~repro.storage.faults.SimulatedCrash`
  derives from ``BaseException`` so no ordinary handler can swallow it.
  A worker must catch ``BaseException``, hand the crash back to the
  scattering thread verbatim, and *survive* -- the pool belongs to the
  router, not to the transaction that just "died".
* **Self-reaping workers.**  The crash matrix abandons routers without
  closing them (a dead process closes nothing), so workers are daemon
  threads that exit after an idle timeout; an abandoned pool costs
  nothing within seconds and never pins the interpreter.
* **Nested-scatter inlining.**  A task that itself fans out (a fan-out
  query materialized inside another fan-out) would deadlock a bounded
  pool waiting for workers it occupies.  :meth:`in_worker` lets the
  router detect that and degrade to the serial loop.
* **Queue-wait accounting.**  The ``shard.exec.*`` stats (tasks, max
  observed concurrency, queue-wait p99) are first-class, not bolted on.

The scatter-gather primitive is :meth:`run_all`: submit one task per
item, wait for all of them, and return per-item outcomes so the caller
decides how failures compose (2PC wants "did *any* participant crash";
fan-outs want "fence the lowest failing shard").
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Sequence

__all__ = ["ShardExecutor"]

#: Hard cap on pool size regardless of shard count -- beyond this the
#: GIL and the disk stop rewarding extra threads anyway.
_MAX_WORKERS = 16

#: Idle worker lifetime.  Long enough that a steady fan-out workload
#: never respawns, short enough that an abandoned router's daemons
#: disappear promptly.
_IDLE_TIMEOUT = 5.0

#: Queue-wait samples retained for the p99 (ring buffer; stats are a
#: health probe, not a ledger).
_WAIT_SAMPLES = 1024

_pool_ids = itertools.count(1)


class _Task:
    """One scattered unit: a thunk, its outcome, and a completion event."""

    __slots__ = ("fn", "enqueued_at", "done", "result", "error")

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None

    def wait(self) -> None:
        self.done.wait()


class ShardExecutor:
    """A bounded, lazily-spawned, self-reaping thread pool.

    ``size`` workers at most (clamped to ``{max_workers}``); workers are
    spawned on demand when a task arrives and no idle worker exists, and
    exit after ``idle_timeout`` seconds without work.  ``close()`` is
    best-effort and optional -- an unclosed pool reaps itself.
    """.format(max_workers=_MAX_WORKERS)

    def __init__(
        self,
        size: int,
        name: str | None = None,
        idle_timeout: float = _IDLE_TIMEOUT,
    ) -> None:
        self.size = max(1, min(int(size), _MAX_WORKERS))
        self.name = name or f"shard-exec-{next(_pool_ids)}"
        self._idle_timeout = idle_timeout
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque[_Task | None] = deque()
        self._workers = 0          # threads alive
        self._idle = 0             # threads blocked waiting for work
        self._running = 0          # tasks mid-execution
        self._closed = False
        self._worker_seq = itertools.count(1)
        self._local = threading.local()
        # -- counters (read by ShardedDatabase.stats) ----------------------
        self._tasks = 0
        self._max_concurrency = 0
        self._workers_spawned = 0
        self._waits_ms: deque[float] = deque(maxlen=_WAIT_SAMPLES)

    # -- worker-side ---------------------------------------------------------

    def in_worker(self) -> bool:
        """True on a pool worker thread -- the nested-scatter guard.

        A bounded pool must never *wait* for itself: a task that fans
        out again runs its sub-work inline instead of deadlocking on
        workers it already occupies.
        """
        return getattr(self._local, "in_worker", False)

    def _worker(self) -> None:
        self._local.in_worker = True
        try:
            while True:
                with self._cond:
                    deadline = time.monotonic() + self._idle_timeout
                    self._idle += 1
                    try:
                        while not self._queue:
                            if self._closed:
                                return
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                return  # idle reap
                            self._cond.wait(remaining)
                    finally:
                        self._idle -= 1
                    task = self._queue.popleft()
                    if task is None:  # close() sentinel
                        return
                    self._running += 1
                    if self._running > self._max_concurrency:
                        self._max_concurrency = self._running
                    self._waits_ms.append(
                        (time.monotonic() - task.enqueued_at) * 1000.0
                    )
                try:
                    task.result = task.fn()
                except BaseException as exc:  # noqa: BLE001 - crash-carrying
                    # SimulatedCrash included: the outcome travels back to
                    # the scattering thread; the worker itself survives.
                    task.error = exc
                finally:
                    with self._lock:
                        self._running -= 1
                    task.done.set()
        finally:
            with self._cond:
                self._workers -= 1
                self._cond.notify_all()

    # -- submission ----------------------------------------------------------

    def submit(self, fn: Callable[[], Any]) -> _Task:
        """Enqueue ``fn``; spawn a worker if none is idle and the bound
        allows.  A closed pool runs the task inline (degraded, never
        refused -- fan-outs must not start failing because close raced),
        and so does a submission *from a pool worker*: a bounded pool
        waiting on workers it occupies would deadlock, so nested work
        degrades to the caller's thread (the router's ``_scatter`` checks
        :meth:`in_worker` first anyway; this is the backstop)."""
        if self.in_worker():
            inline = _Task(fn)
            try:
                inline.result = fn()
            except BaseException as exc:  # noqa: BLE001 - mirror worker shape
                inline.error = exc
            inline.done.set()
            return inline
        task = _Task(fn)
        with self._cond:
            if self._closed:
                spawn = False
                task = None  # type: ignore[assignment]
            else:
                self._tasks += 1
                self._queue.append(task)
                # Spawn whenever queued work exceeds the idle workers
                # (up to the bound).  The weaker "spawn only when none
                # idle" starves a burst: a scatter of N tasks arriving
                # at a pool with one parked worker would see it still
                # counted idle for every submission and enqueue all N
                # behind that single thread.
                spawn = (
                    self._workers < self.size
                    and len(self._queue) > self._idle
                )
                if spawn:
                    self._workers += 1
                    self._workers_spawned += 1
                self._cond.notify()
        if task is None:
            inline = _Task(fn)
            try:
                inline.result = fn()
            except BaseException as exc:  # noqa: BLE001 - mirror worker shape
                inline.error = exc
            inline.done.set()
            return inline
        if spawn:
            thread = threading.Thread(
                target=self._worker,
                name=f"{self.name}-w{next(self._worker_seq)}",
                daemon=True,
            )
            thread.start()
        return task

    def run_all(
        self, items: Sequence[Any], fn: Callable[[Any], Any]
    ) -> list[tuple[Any, BaseException | None]]:
        """Scatter ``fn(item)`` across the pool; gather every outcome.

        Returns ``[(result, error), ...]`` in ``items`` order -- exactly
        one of the pair is meaningful per item.  Never raises: failure
        composition (which error wins, what cleanup runs) is protocol
        policy and belongs to the caller.
        """
        tasks = [self.submit(lambda item=item: fn(item)) for item in items]
        for task in tasks:
            task.wait()
        return [(task.result, task.error) for task in tasks]

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: float = 1.0) -> None:
        """Stop accepting work and wake every worker.  Idempotent,
        best-effort: daemon workers that miss the window reap themselves."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for _ in range(self._workers):
                self._queue.append(None)
            self._cond.notify_all()
            deadline = time.monotonic() + timeout
            while self._workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)

    # -- stats ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _wait_p99_ms(self, waits: Iterable[float]) -> float:
        ordered = sorted(waits)
        if not ordered:
            return 0.0
        return ordered[int(0.99 * (len(ordered) - 1))]

    def stats(self) -> dict[str, Any]:
        """``shard.exec.*`` counters for the router's :meth:`stats`."""
        with self._lock:
            waits = list(self._waits_ms)
            return {
                "shard.exec.size": self.size,
                "shard.exec.tasks": self._tasks,
                "shard.exec.workers": self._workers,
                "shard.exec.workers_spawned": self._workers_spawned,
                "shard.exec.max_concurrency": self._max_concurrency,
                "shard.exec.queue_wait_p99_ms": round(
                    self._wait_p99_ms(waits), 3
                ),
            }

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self._workers} worker(s)"
        return f"ShardExecutor({self.name!r}, size={self.size}, {state})"
