"""Oid -> shard placement.

Placement is arithmetic, not a lookup table: shard ``i`` of ``n`` only
ever allocates oids congruent to ``i`` modulo ``n`` (the store's
``oid_stride``/``oid_residue`` slice), so any oid's home shard is
``oid.value % n`` with no directory to maintain, replicate, or recover.
The router still falls back to asking every shard when an oid is not
where placement says it should be (see ``ShardedDatabase.locate``) --
placement is a hint that is almost always right, not a correctness
assumption.
"""

from __future__ import annotations

from repro.core.identity import Oid


class ModuloPlacement:
    """The default placement: home shard = ``oid.value % nshards``."""

    def __init__(self, nshards: int) -> None:
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        self.nshards = nshards

    def shard_of(self, oid: Oid) -> int:
        """Home shard index for ``oid``."""
        return oid.value % self.nshards

    def residue(self, shard: int) -> int:
        """The oid residue class shard ``shard`` allocates from."""
        if not 0 <= shard < self.nshards:
            raise ValueError(f"shard {shard} out of range [0, {self.nshards})")
        return shard

    def __repr__(self) -> str:
        return f"ModuloPlacement(nshards={self.nshards})"
