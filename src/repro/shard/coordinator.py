"""Two-phase commit across shards.

The router funnels a :class:`GlobalTransaction`'s commit here.  With one
participant (or none) the global commit *is* the local commit -- the
single-shard fast path pays no protocol cost.  With two or more:

1. **Prepare.**  Every participant's local transaction appends a
   ``PREPARE`` record (carrying the global txid, the coordinator shard,
   and the full participant list) and flushes through it.  A participant
   that crashes after this point is *in-doubt*: its effects are durable
   and recovery keeps them until the verdict is known.  Any prepare
   failure aborts the whole global transaction -- legal, because no
   verdict exists yet (presumed abort).

2. **Decide.**  The coordinator shard -- the lowest participant index, so
   the choice is deterministic and needs no extra WAL traffic to record
   -- journals ``COORD_COMMIT(gtxid, participants)`` and flushes.  This
   single fsync is the commit point for the whole global transaction.

3. **Commit.**  Each participant's local transaction commits (appending
   its ordinary ``COMMIT`` record).  A prepared participant never aborts
   itself on failure here (see :meth:`Transaction.commit`); a crash
   leaves it in-doubt and restart resolution consults the coordinator's
   decision.

4. **Forget.**  With every participant's commit durable, the decision
   record is released (``COORD_END``) so the coordinator shard's WAL can
   truncate again.  Losing the forget costs nothing but an idempotent
   re-delivery of the verdict on the next restart.

Recovery resolves the other direction: an in-doubt participant commits
iff its gtxid has a durable ``COORD_COMMIT`` somewhere, otherwise
*presumed abort* -- no decision record means step 2 never completed, so
no participant can have committed.

Failpoints (``shard.2pc.*``) bracket every window so the crash matrix
can kill the process at each protocol step and assert recovery holds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ShardUnavailableError, TransactionStateError
from repro.storage import faults, serialization

if TYPE_CHECKING:
    from repro.core.transactions import Transaction
    from repro.shard.router import RouterSession, ShardedDatabase

#: GlobalTransaction states (mirrors the local transaction's spellings so
#: the wire server's state checks work unchanged).
ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class GlobalTransaction:
    """One transaction spanning any number of shards.

    Local per-shard transactions are created lazily by the router the
    first time an operation touches a shard, so a transaction that only
    ever touches one shard is indistinguishable -- in cost and in WAL
    traffic -- from an embedded single-database transaction.
    """

    def __init__(
        self,
        router: "ShardedDatabase",
        session: "RouterSession",
        txid: int,
        read_only: bool = False,
    ) -> None:
        self.router = router
        self.session = session
        #: Router-level id (returned over the wire); local per-shard txids
        #: are independent counters and never leave their shard.
        self.txid = txid
        self.state = ACTIVE
        #: Snapshot-read global transaction: every shard-local transaction
        #: is opened with ``snapshot_reads=True`` (lock-free pinned reads,
        #: mutations raise ReadOnlySnapshotError).
        self.read_only = read_only
        #: Kept None so the wire server's inline-lane probe (which checks
        #: ``session.txn``) and state checks treat this like a local txn.
        self.snapshot = None
        #: The consistent cut a snapshot-read transaction was begun
        #: against (:class:`~repro.shard.snapshot.GlobalSnapshot`); every
        #: lazily-begun local adopts its shard's part, so cross-shard
        #: snapshot reads observe one global point.  None for ordinary
        #: transactions; closed by the router when the transaction ends.
        self.cut = None
        #: shard index -> live local Transaction.
        self.locals: dict[int, "Transaction"] = {}
        #: shard index -> the shard generation its local was begun
        #: against.  A mismatch with the router's current generation
        #: means the shard died (and was reattached) mid-transaction:
        #: the local half was rolled back by recovery, so the global
        #: transaction can only fail -- never silently continue.
        self.local_gens: dict[int, int] = {}
        #: True once the commit verdict is durable in the coordinator
        #: shard's WAL: from then on the global transaction *will* commit
        #: and may no longer be aborted.
        self.decided = False
        self.gtxid: tuple | None = None
        #: Coordinator shard index, fixed when the gtxid is assigned.
        self.coordinator: int | None = None
        #: Per-shard lock deadline override, inherited by every local
        #: transaction the router begins on this transaction's behalf.
        self.lock_timeout: float | None = None

    @property
    def participants(self) -> tuple[int, ...]:
        """Sorted indices of the shards this transaction touched."""
        return tuple(sorted(self.locals))

    def commit(self) -> None:
        """Commit everywhere: fast path for <= 1 shard, else 2PC.

        A participant shard dying mid-commit surfaces as the retryable
        :class:`~repro.errors.ShardUnavailableError`, not whatever
        low-level error its closed handles produced.
        """
        if self.state != ACTIVE:
            raise TransactionStateError(
                f"global transaction {self.txid} is {self.state}, not active"
            )
        lost = [
            i
            for i in self.participants
            if self.local_gens.get(i) != self.router._shard_gen[i]
        ]
        if lost and not self.decided:
            # A participant shard died (and was reattached) while this
            # transaction was open: recovery rolled its half back, so
            # the whole must not commit.  Release the surviving shards'
            # locks, then surface the retryable error.
            try:
                abort_global(self.router, self)
            except Exception:
                pass  # best-effort; the unavailability is what matters
            self.router._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {lost[0]} failed while global transaction "
                f"{self.txid} was open; its shard-local work was rolled "
                "back by recovery (retry the whole transaction)",
                shard=lost[0],
            )
        try:
            commit_global(self.router, self)
        except Exception as exc:
            wrapped = self._dead_shard_error(exc, "commit")
            if wrapped is None:
                raise
            raise wrapped from exc

    def abort(self) -> None:
        """Abort every participant.  Refused once the verdict is durable."""
        if self.state != ACTIVE:
            raise TransactionStateError(
                f"global transaction {self.txid} is {self.state}, not active"
            )
        if self.decided:
            raise TransactionStateError(
                f"global transaction {self.txid} is decided committed; "
                "restart recovery will complete it"
            )
        try:
            abort_global(self.router, self)
        except Exception as exc:
            wrapped = self._dead_shard_error(exc, "abort")
            if wrapped is None:
                raise
            raise wrapped from exc

    def _dead_shard_error(self, exc: BaseException, verb: str):
        """Map an error raised while a participant shard is down to the
        documented retryable error, mirroring the router's ``_on_shard``
        fence.  Returns None when no participant died (genuine errors --
        conflicts, validation -- pass through untouched)."""
        if isinstance(exc, ShardUnavailableError):
            return None
        down = [
            i
            for i in self.participants
            if self.router._shard_down[i]
            or self.local_gens.get(i) != self.router._shard_gen[i]
        ]
        if not down:
            return None
        self.router._health_counters["failfast"] += 1
        return ShardUnavailableError(
            f"shard {down[0]} went down during {verb} of global "
            f"transaction {self.txid} (retry after reattach_shard)",
            shard=down[0],
        )

    def __repr__(self) -> str:
        return (
            f"GlobalTransaction(txid={self.txid}, state={self.state}, "
            f"shards={list(self.participants)})"
        )


def prepare_meta(
    gtxid: tuple, coordinator: int, participants: tuple[int, ...]
) -> bytes:
    """The PREPARE record payload (decoded again by WAL recovery)."""
    return serialization.encode((gtxid, coordinator, tuple(participants)))


def commit_global(router: "ShardedDatabase", gtxn: GlobalTransaction) -> None:
    """Run the global commit protocol for ``gtxn``.

    Safe to re-invoke: a commit that failed *after* the decision record
    became durable leaves the transaction active with ``decided=True``
    (:meth:`Transaction.commit` keeps a prepared participant alive on
    failure), and a retry must only re-deliver the verdict -- re-entering
    phase one would find participants already prepared and, worse, the
    presumed-abort handler would roll back a transaction whose COMMIT
    verdict is already on disk.
    """
    counters = router._twopc_counters
    try:
        if gtxn.decided:
            # A durable verdict exists from an earlier attempt that failed
            # in phase two: never re-enter phase one, just finish the job.
            _deliver_verdict(router, gtxn)
            return

        # Read-only participant optimization (presumed abort's classic
        # companion): a participant that logged nothing has no durable
        # state at stake, so it commits -- releasing its read locks --
        # at what would have been its prepare, votes no further, and is
        # excluded from phase two.  The transaction serializes at the
        # moment its last reader released.  A retry after a failed
        # attempt skips the ones already released.
        writers = [i for i in gtxn.participants if gtxn.locals[i].op_count > 0]
        readers = [
            i
            for i in gtxn.participants
            if gtxn.locals[i].op_count == 0 and gtxn.locals[i].state == ACTIVE
        ]
        for idx in readers:
            with gtxn.session.shard_session(idx).activate():
                gtxn.locals[idx].commit()
        counters["readonly_participants"] += len(readers)

        if len(writers) <= 1:
            # Single-shard fast path: the local commit *is* the global
            # commit; no PREPARE, no decision record, no extra fsync.
            for idx in writers:
                with gtxn.session.shard_session(idx).activate():
                    gtxn.locals[idx].commit()
            counters["commits_single"] += 1
            gtxn.state = COMMITTED
            return

        counters["commits_cross"] += 1
        parts = tuple(writers)
        coordinator = parts[0]
        gtxid = router._next_gtxid()
        gtxn.gtxid = gtxid
        gtxn.coordinator = coordinator
        meta = prepare_meta(gtxid, coordinator, parts)

        # Phase one: every participant makes the prepare promise durable.
        # The PREPARE appends+fsyncs scatter across the shard executor
        # (fsync releases the GIL, so wall-clock cost drops from the sum
        # of the participants' flushes to their max); the decision append
        # strictly follows *every* prepare outcome -- the barrier below is
        # the atomicity of the protocol, not an implementation detail.
        try:
            faults.fire("shard.2pc.pre_prepare")

            def _prepare_one(idx: int) -> None:
                # Distinct shards mean distinct shard-local sessions, so
                # concurrent workers never trip the one-thread rule.
                with gtxn.session.shard_session(idx).activate():
                    gtxn.locals[idx].prepare(meta)
                faults.fire("shard.2pc.post_prepare")

            error = _scatter_participants(router, parts, _prepare_one, counters, "prepares")
            if error is not None:
                raise error
            faults.fire("shard.2pc.pre_decision")
            # The commit point: the verdict survives any crash after this.
            # Its append+fsync rides the coordinator shard's ordinary
            # group-commit window like any other flush.
            router.shards[coordinator].log_coordinator_decision(gtxid, parts)
        except BaseException:
            # No durable verdict exists (the decision append either never
            # ran or failed before its fsync): presumed abort.  A
            # simulated crash skips the cleanup -- a dead process aborts
            # nothing, that is what restart resolution is for.
            if not faults.is_crashed() and not gtxn.decided:
                try:
                    abort_global(router, gtxn)
                except BaseException:
                    pass  # the prepare/decision error is the one to surface
            raise
        gtxn.decided = True
        counters["decisions"] += 1
        faults.fire("shard.2pc.post_decision")

        _deliver_verdict(router, gtxn)
    finally:
        if gtxn.state != ACTIVE:
            router._finish_global(gtxn)


def _scatter_participants(
    router: "ShardedDatabase",
    indices: tuple[int, ...] | list[int],
    fn,
    counters: dict[str, int],
    counter_key: str | None,
) -> BaseException | None:
    """Run ``fn(idx)`` over participants, in parallel when enabled.

    Counts successes into ``counters[counter_key]`` on the coordinating
    thread (worker-side increments would race), and returns the one
    error to surface -- a :class:`~repro.storage.faults.SimulatedCrash`
    first (the harness must see the process death it injected; siblings
    may have failed *because* the crash barrier dropped), otherwise the
    lowest failing shard's error, matching the serial loop's
    deterministic shape.  The serial fallback stops at the first failure
    exactly like the historical loop.
    """
    if (
        router.parallel_2pc
        and len(indices) > 1
        and not router._exec.in_worker()
    ):
        outcomes = router._exec.run_all(indices, fn)
    else:
        outcomes = []
        for idx in indices:
            try:
                outcomes.append((fn(idx), None))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                outcomes.append((None, exc))
                break
    if counter_key is not None:
        counters[counter_key] += sum(1 for _, err in outcomes if err is None)
    errors = [
        (idx, err)
        for idx, (_, err) in zip(indices, outcomes)
        if err is not None
    ]
    if not errors:
        return None
    for _, err in errors:
        if isinstance(err, faults.SimulatedCrash):
            return err
    return min(errors)[1]


def _deliver_verdict(router: "ShardedDatabase", gtxn: GlobalTransaction) -> None:
    """Phase two: commit every still-prepared participant, then forget.

    Idempotent by construction so a partially failed delivery can be
    re-run: locals that already committed are skipped, a prepared
    participant whose commit fails stays active for the next attempt
    (see :meth:`Transaction.commit`), and re-forgetting an unknown
    gtxid is a no-op.  The COMMITs scatter across the shard executor
    with those same semantics, and the whole fan-out runs under the
    shared side of the router's cut latch: a global snapshot can never
    land between one participant's publication and another's, which is
    what makes the cut a consistent one.
    """
    counters = router._twopc_counters
    pending = [
        idx for idx in gtxn.participants if gtxn.locals[idx].state == ACTIVE
    ]

    def _commit_one(idx: int) -> None:
        txn = gtxn.locals[idx]
        if txn.state != ACTIVE:
            return
        with gtxn.session.shard_session(idx).activate():
            txn.commit()
        faults.fire("shard.2pc.post_ack")

    with router._cut_latch.publishing():
        error = _scatter_participants(router, pending, _commit_one, counters, None)
    if error is not None:
        raise error

    # Forget: every participant acknowledged; the decision record has
    # served its purpose and releases the coordinator WAL.
    faults.fire("shard.2pc.pre_forget")
    assert gtxn.coordinator is not None and gtxn.gtxid is not None
    router.shards[gtxn.coordinator].forget_coordinator_decision(gtxn.gtxid)
    counters["forgets"] += 1
    gtxn.state = COMMITTED


def abort_global(router: "ShardedDatabase", gtxn: GlobalTransaction) -> None:
    """Abort every live participant; always detaches the transaction.

    Presumed abort makes rolling back *prepared* participants legal here
    -- but only while no commit verdict exists, so a decided transaction
    is refused outright.
    """
    if gtxn.decided:
        raise TransactionStateError(
            f"global transaction {gtxn.txid} is decided committed; "
            "re-run commit (or restart recovery) to complete it"
        )
    first_error: BaseException | None = None
    for idx, txn in sorted(gtxn.locals.items()):
        if txn.state != ACTIVE:
            continue
        try:
            with gtxn.session.shard_session(idx).activate():
                txn.abort(release_prepared=True)
        except BaseException as exc:  # noqa: BLE001 - keep aborting the rest
            if first_error is None:
                first_error = exc
    router._twopc_counters["aborts"] += 1
    gtxn.state = ABORTED
    router._finish_global(gtxn)
    if first_error is not None:
        raise first_error


def resolution_meta(payload: bytes) -> tuple[tuple, int, tuple[int, ...]]:
    """Decode a PREPARE payload back to (gtxid, coordinator, participants)."""
    gtxid, coordinator, participants = serialization.decode(payload)
    return gtxid, coordinator, tuple(participants)
