"""Restart resolution of in-doubt cross-shard transactions.

Runs once per :class:`~repro.shard.router.ShardedDatabase` open, after
every shard's own WAL recovery.  Each shard surfaces two things: its
prepared-but-undecided participants (effects already replayed, undo
images retained) and the coordinator commit verdicts surviving in its
WAL.  Resolution is presumed abort:

* an in-doubt participant whose gtxid has a durable ``COORD_COMMIT`` on
  *any* shard commits (the verdict was the commit point);
* one whose gtxid appears nowhere aborts -- without a durable verdict no
  participant can have committed, so rolling back loses nothing.

Verdicts are read across **all** shards before any participant is
resolved, then forgotten only after every matching participant is
resolved durably -- a crash mid-resolution re-runs it idempotently
(compensation ops are logged, commits are plain ``COMMIT`` appends, and
re-delivering a verdict to an already-resolved participant is a no-op
because the participant is no longer in-doubt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.shard.router import ShardedDatabase


@dataclass
class ResolutionReport:
    """What open-time resolution did -- asserted on by the crash matrix."""

    #: (shard index, local txid) pairs committed by a surviving verdict.
    committed: list[tuple[int, int]] = field(default_factory=list)
    #: (shard index, local txid) pairs rolled back by presumed abort.
    aborted: list[tuple[int, int]] = field(default_factory=list)
    #: Verdicts released after resolution (gtxids).
    forgotten: list[tuple] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        return len(self.committed) + len(self.aborted)


def resolve_in_doubt(router: "ShardedDatabase") -> ResolutionReport:
    """Resolve every in-doubt participant across the router's shards."""
    report = ResolutionReport()

    # Collect verdicts from every shard first: a participant on shard A
    # may have been coordinated by shard B.
    decisions: dict[tuple, int] = {}
    for idx, db in enumerate(router.shards):
        for gtxid in db.coordinator_decisions():
            decisions[gtxid] = idx

    touched: set[int] = set()
    for idx, db in enumerate(router.shards):
        for txid in sorted(db.in_doubt_txns()):
            info = db.in_doubt_txns()[txid]
            commit = info.gtxid in decisions
            db.resolve_in_doubt(txid, commit=commit)
            touched.add(idx)
            (report.committed if commit else report.aborted).append((idx, txid))

    # Every participant is resolved durably; the verdicts may now be
    # forgotten and the involved WALs truncated (the checkpoint below is
    # what actually lifts each shard's truncation hold).
    for gtxid, coord_idx in decisions.items():
        router.shards[coord_idx].forget_coordinator_decision(gtxid)
        touched.add(coord_idx)
        report.forgotten.append(gtxid)
    for idx in sorted(touched):
        router.shards[idx].checkpoint()
    return report
