"""Restart resolution of in-doubt cross-shard transactions.

Runs once per :class:`~repro.shard.router.ShardedDatabase` open, after
every shard's own WAL recovery.  Each shard surfaces two things: its
prepared-but-undecided participants (effects already replayed, undo
images retained) and the coordinator commit verdicts surviving in its
WAL.  Resolution is presumed abort:

* an in-doubt participant whose gtxid has a durable ``COORD_COMMIT`` on
  *any* reachable shard commits (the verdict was the commit point);
* one whose gtxid appears nowhere aborts -- without a durable verdict no
  participant can have committed, so rolling back loses nothing -- but
  **only when its coordinator shard is reachable**.  The verdict lives in
  exactly one WAL (the coordinator's); while that shard is down, "no
  verdict found" is inconclusive, and presuming abort would roll back a
  globally-committed transaction whose verdict is merely unreachable.
  Such participants stay in doubt until the coordinator returns.

Verdicts are read across **all** shards before any participant is
resolved, then forgotten only after every matching participant is
resolved durably -- a crash mid-resolution re-runs it idempotently
(compensation ops are logged, commits are plain ``COMMIT`` appends, and
re-delivering a verdict to an already-resolved participant is a no-op
because the participant is no longer in-doubt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import DatabaseDegradedError, TransactionStateError

if TYPE_CHECKING:
    from repro.shard.router import ShardedDatabase


@dataclass
class ResolutionReport:
    """What open-time resolution did -- asserted on by the crash matrix."""

    #: (shard index, local txid) pairs committed by a surviving verdict.
    committed: list[tuple[int, int]] = field(default_factory=list)
    #: (shard index, local txid) pairs rolled back by presumed abort.
    aborted: list[tuple[int, int]] = field(default_factory=list)
    #: (shard index, local txid) pairs left in doubt: no verdict was
    #: found, but the coordinator shard that could hold one is down.
    deferred: list[tuple[int, int]] = field(default_factory=list)
    #: Verdicts released after resolution (gtxids).
    forgotten: list[tuple] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        return len(self.committed) + len(self.aborted)


def resolve_in_doubt(
    router: "ShardedDatabase", only: set[int] | None = None
) -> ResolutionReport:
    """Resolve every in-doubt participant across the router's shards.

    ``only`` restricts resolution to those shard indices -- the online
    reattach path (:meth:`ShardedDatabase.reattach_shard`), which must
    resolve the returning shard's in-doubt participants without touching
    shards that are still down.  Down shards are always skipped.

    Verdicts are forgotten (and WAL truncation holds lifted) only when
    resolution covered *every* shard: with any shard still down, a
    verdict may yet be needed to commit that shard's prepared
    participants when it returns.  Symmetrically, a verdict-less
    participant whose *coordinator* shard is down is deferred (left in
    doubt), not presumed aborted -- the unreachable WAL may hold its
    ``COORD_COMMIT``.
    """
    report = ResolutionReport()
    all_shards = set(range(len(router.shards)))
    health = getattr(router, "shard_health", None)
    up = all_shards
    if callable(health):
        up = {idx for idx, state in health().items() if state != "down"}

    # Collect verdicts from every reachable shard first: a participant
    # on shard A may have been coordinated by shard B.
    decisions: dict[tuple, int] = {}
    for idx in sorted(up):
        for gtxid in router.shards[idx].coordinator_decisions():
            decisions[gtxid] = idx

    touched: set[int] = set()
    targets = up if only is None else (set(only) & up)
    for idx in sorted(targets):
        db = router.shards[idx]
        for txid in sorted(db.in_doubt_txns()):
            info = db.in_doubt_txns()[txid]
            commit = info.gtxid in decisions
            if not commit and info.coordinator not in up:
                # No verdict found -- but the coordinator shard, the one
                # WAL that could hold it, is unreachable.  The outcome is
                # unknowable: presumed abort here would roll back a
                # globally-committed transaction whose verdict is merely
                # on a down shard.  Stay in doubt until it returns.
                report.deferred.append((idx, txid))
                continue
            db.resolve_in_doubt(txid, commit=commit)
            touched.add(idx)
            (report.committed if commit else report.aborted).append((idx, txid))

    # Every participant is resolved durably; the verdicts may now be
    # forgotten and the involved WALs truncated (the checkpoint below is
    # what actually lifts each shard's truncation hold).  Not while any
    # shard is unreachable: its prepared participants still need them.
    if only is None and up == all_shards:
        for gtxid, coord_idx in decisions.items():
            router.shards[coord_idx].forget_coordinator_decision(gtxid)
            touched.add(coord_idx)
            report.forgotten.append(gtxid)
    for idx in sorted(touched):
        # The checkpoint is only the WAL-truncation opportunity, not
        # part of resolution's correctness.  At open it always succeeds
        # (no sessions yet); during *online* reattach a touched shard
        # may be running live transactions, and checkpoint refuses
        # non-quiescent -- skip, the next quiescent checkpoint truncates.
        try:
            router.shards[idx].checkpoint()
        except (DatabaseDegradedError, TransactionStateError):
            pass
    return report
