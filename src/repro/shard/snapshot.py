"""One consistent cut across every shard: the global snapshot epoch.

Per-shard snapshots (:mod:`repro.core.snapshot`) freeze one shard's
committed state at its publication epoch -- but a fan-out that pins each
shard *independently* can observe a cross-shard transaction torn in
half: pinned on shard A after its commit published there, on shard B
before.  That read skew is exactly what parallel fan-outs would amplify,
so the router closes it with a **consistent cut**:

* Phase two of every cross-shard commit (the per-participant COMMIT
  appends and their snapshot publications) runs while holding the
  **shared** side of a :class:`_CutLatch`.
* Taking a :class:`GlobalSnapshot` holds the **exclusive** side while it
  pins one per-shard snapshot on every up shard.

A cut therefore never lands inside a cross-shard publication window: a
transaction that committed across shards is entirely visible or entirely
invisible.  (Two *independent* single-shard transactions need no such
fence -- each is atomic within its shard, and the cut orders them the
way any sequentially consistent reader could have.)

The latch is writer-preferring on the cut side (waiting cutters block
*new* publishers) so a steady stream of cross-shard commits cannot
starve snapshot takers; publications are short -- a handful of WAL
appends -- so cut latency stays bounded by the slowest in-flight commit.

:class:`GlobalSnapshot` then exposes the whole read surface of a
per-shard :class:`~repro.core.snapshot.Snapshot` -- materialization,
attribute reads, the paper-§4 traversals, clusters, queries, the
multi-holder ``latest_vid`` ranking -- routed over its pinned parts, so
every parallel fan-out read resolves against the one cut.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef
from repro.errors import ShardUnavailableError

if TYPE_CHECKING:
    from repro.core.snapshot import Snapshot
    from repro.core.vgraph import VersionGraph
    from repro.shard.router import ShardedDatabase

__all__ = ["GlobalSnapshot"]


class _CutLatch:
    """Shared/exclusive latch fencing cuts against cross-shard publication.

    ``publishing()`` (shared) brackets 2PC phase two; ``cutting()``
    (exclusive) brackets global snapshot pinning.  Publishers among
    themselves never block -- distinct transactions publish to distinct
    shards' registries under their own locks.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._publishers = 0
        self._cutting = False
        self._cut_waiting = 0

    @contextmanager
    def publishing(self) -> Iterator[None]:
        with self._cond:
            # Waiting cutters bar *new* publishers (anti-starvation);
            # in-flight ones drain first.
            while self._cutting or self._cut_waiting:
                self._cond.wait()
            self._publishers += 1
        try:
            yield
        finally:
            with self._cond:
                self._publishers -= 1
                self._cond.notify_all()

    @contextmanager
    def cutting(self) -> Iterator[None]:
        with self._cond:
            self._cut_waiting += 1
            try:
                while self._cutting or self._publishers:
                    self._cond.wait()
                self._cutting = True
            finally:
                self._cut_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._cutting = False
                self._cond.notify_all()


class GlobalSnapshot:
    """One pinned point-in-time view spanning every up shard.

    Holds one per-shard :class:`~repro.core.snapshot.Snapshot` pinned
    under the cut latch, stamped with the router-wide cut sequence and
    the shard generations it was taken against.  Reads route by
    placement exactly like the live router; a shard that was down at the
    cut has no part, and reads targeting it fail fast with
    :class:`~repro.errors.ShardUnavailableError` (its state at the cut
    is unknowable).

    Use as a context manager (or call :meth:`close`) to unpin the parts.
    """

    def __init__(
        self,
        router: "ShardedDatabase",
        parts: dict[int, "Snapshot"],
        seq: int,
        gens: dict[int, int],
    ) -> None:
        self._router = router
        #: shard index -> pinned per-shard snapshot (up shards only).
        self.parts = parts
        #: Router-wide cut sequence number (monotonic per open).
        self.seq = seq
        #: shard index -> shard generation at the cut (staleness probes).
        self.gens = gens
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def pinned(self) -> bool:
        return not self._closed

    def close(self) -> None:
        """Unpin every part.  Idempotent (parts' own close is too)."""
        if self._closed:
            return
        self._closed = True
        for part in self.parts.values():
            try:
                part.close()
            except Exception:
                pass  # a part on a since-killed shard unpins best-effort

    def __enter__(self) -> "GlobalSnapshot":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "pinned" if not self._closed else "closed"
        return (
            f"GlobalSnapshot(seq={self.seq}, epoch={self.epoch}, {state})"
        )

    # -- epoch ---------------------------------------------------------------

    @property
    def epoch(self) -> tuple[int, ...]:
        """Per-shard publication epochs of the cut (-1: shard was down)."""
        return tuple(
            self.parts[idx].epoch if idx in self.parts else -1
            for idx in range(self._router.nshards)
        )

    # -- routing -------------------------------------------------------------

    def _part(self, idx: int) -> "Snapshot":
        part = self.parts.get(idx)
        if part is None:
            self._router._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {idx} was down when this global snapshot was cut; "
                "its state at the cut is unknowable (retake the snapshot "
                "after reattach_shard)",
                shard=idx,
            )
        return part

    def _locate(self, oid: Oid) -> int:
        home = self._router.placement.shard_of(oid)
        if home in self.parts and self._part(home).object_exists(oid):
            return home
        for idx in self.parts:
            if idx != home and self.parts[idx].object_exists(oid):
                self._router._twopc_counters["locate_fallbacks"] += 1
                return idx
        return home  # not found anywhere: home raises the canonical error

    # -- reads ---------------------------------------------------------------

    def latest_vid(self, oid: Oid) -> Vid:
        """The globally latest version at the cut (multi-holder ranked)."""
        holders = [
            idx for idx in self.parts if self.parts[idx].object_exists(oid)
        ]
        if len(holders) <= 1:
            idx = holders[0] if holders else self._router.placement.shard_of(oid)
            return self._part(idx).latest_vid(oid)
        best_key: tuple | None = None
        best_vid: Vid | None = None
        for idx in holders:
            snap = self.parts[idx]
            vid = snap.latest_vid(oid)
            node = snap.graph(oid).node(vid.serial)
            key = (node.ctime, vid.serial)
            if best_key is None or key > best_key:
                best_key, best_vid = key, vid
        assert best_vid is not None
        return best_vid

    def materialize(self, vid: Vid) -> Any:
        return self._part(self._locate(vid.oid)).materialize(vid)

    def read_attr(self, vid: Vid, name: str) -> Any:
        return self._part(self._locate(vid.oid)).read_attr(vid, name)

    def read_latest_attr(self, oid: Oid, name: str) -> Any:
        return self._part(self._locate(oid)).read_latest_attr(oid, name)

    def object_exists(self, oid: Oid) -> bool:
        return self._part(self._locate(oid)).object_exists(oid)

    def version_exists(self, vid: Vid) -> bool:
        return self._part(self._locate(vid.oid)).version_exists(vid)

    def type_name(self, oid: Oid) -> str:
        return self._part(self._locate(oid)).type_name(oid)

    def graph(self, target: Ref | Oid) -> "VersionGraph":
        oid = target.oid if isinstance(target, Ref) else target
        return self._part(self._locate(oid)).graph(oid)

    # -- traversals (delegate to the owning part) ----------------------------

    def _on_owner(self, vref: VersionRef | Vid, fn: Callable[["Snapshot"], Any]) -> Any:
        vid = vref.vid if isinstance(vref, VersionRef) else vref
        return fn(self._part(self._locate(vid.oid)))

    def dprevious(self, vref: VersionRef | Vid):
        return self._on_owner(vref, lambda s: s.dprevious(vref))

    def dnext(self, vref: VersionRef | Vid):
        return self._on_owner(vref, lambda s: s.dnext(vref))

    def tprevious(self, vref: VersionRef | Vid):
        return self._on_owner(vref, lambda s: s.tprevious(vref))

    def tnext(self, vref: VersionRef | Vid):
        return self._on_owner(vref, lambda s: s.tnext(vref))

    def history(self, vref: VersionRef | Vid):
        return self._on_owner(vref, lambda s: s.history(vref))

    def versions(self, target: Ref | Oid):
        oid = target.oid if isinstance(target, Ref) else target
        return self._part(self._locate(oid)).versions(oid)

    def version_as_of(self, target: Ref | Oid, timestamp: float):
        oid = target.oid if isinstance(target, Ref) else target
        return self._part(self._locate(oid)).version_as_of(oid, timestamp)

    def leaves(self, target: Ref | Oid):
        oid = target.oid if isinstance(target, Ref) else target
        return self._part(self._locate(oid)).leaves(oid)

    def alternatives(self, target: Ref | Oid):
        oid = target.oid if isinstance(target, Ref) else target
        return self._part(self._locate(oid)).alternatives(oid)

    def version_count(self, target: Ref | Oid) -> int:
        oid = target.oid if isinstance(target, Ref) else target
        return self._part(self._locate(oid)).version_count(oid)

    # -- clusters & queries ---------------------------------------------------

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        """The type's cluster across every part (refs stay part-bound:
        reads through them resolve lock-free against the cut)."""
        out: list[Ref] = []
        for idx in sorted(self.parts):
            out.extend(self.parts[idx].cluster(type_or_name))
        return out

    def cluster_names(self) -> list[str]:
        names: set[str] = set()
        for idx in self.parts:
            names.update(self.parts[idx].cluster_names())
        return sorted(names)

    def object_count(self) -> int:
        return sum(
            len(self.parts[idx].cluster(name))
            for idx in self.parts
            for name in self.parts[idx].cluster_names()
        )

    def query(self, type_or_name: type | str):
        """A fanned-out query over the cut (parallel-materialized by the
        router's executor, like every fan-out)."""
        from repro.shard.router import _FanoutQuery

        return _FanoutQuery(
            [
                self.parts[idx].query(type_or_name)
                for idx in sorted(self.parts)
            ],
            executor=self._router._exec,
            router=self._router,
        )
