"""The shard router: one database surface over N shard databases.

A :class:`ShardedDatabase` partitions the oid space across ``nshards``
embedded :class:`~repro.core.database.Database` instances, each with its
own WAL, buffer pool, catalog and snapshot registry, living in
``path/shard-NN``.  Shard ``i`` allocates only oids congruent to ``i``
modulo ``nshards`` (the store's ``oid_stride``/``oid_residue``), so
:class:`~repro.shard.placement.ModuloPlacement` derives any oid's home
shard arithmetically.

The router exposes the same facade as a single database -- ``pnew``,
generic references, versions, clusters, queries, sessions, transactions,
the wire server -- and routes each operation to the owning shard:

* **Single-shard transactions ride the embedded fast path.**  A global
  transaction creates shard-local transactions lazily, one per shard it
  touches; a transaction that touched one shard commits with that
  shard's ordinary one-fsync commit -- no PREPARE, no decision record,
  no cross-shard coordination of any kind (asserted by the E14 bench's
  no-2PC-tax gate).
* **Cross-shard transactions run two-phase commit** -- see
  :mod:`repro.shard.coordinator` -- and restart resolution
  (:mod:`repro.shard.recovery`) finishes whatever a crash interrupted.
* **Generic-reference reads consult every shard holding versions** of
  the oid: ``latest_vid`` ranks the holders' latest versions by creation
  time, so even an oid whose versions somehow span shards (a restored
  backup, a manual migration) resolves to the globally newest version.
  Placement is a hint, not a correctness assumption -- a miss falls back
  to asking every shard (counted as ``shard.locate_fallbacks``).

Caveat worth knowing: per-shard deadlock detectors cannot see a wait
cycle that spans shards.  Cross-shard deadlocks fall to the per-shard
lock *timeout* backstop, so keep cross-shard transactions short and
acquire shards in a consistent order where possible.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.core.database import RETRYABLE_ERRORS, Database
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef
from repro.core.query import Query
from repro.core.session import Session
from repro.core.vgraph import VersionGraph
from repro.errors import (
    SessionStateError,
    ShardUnavailableError,
    TransactionStateError,
)
from repro.shard.coordinator import ACTIVE, GlobalTransaction
from repro.shard.executor import ShardExecutor
from repro.shard.placement import ModuloPlacement
from repro.shard.recovery import ResolutionReport, resolve_in_doubt
from repro.shard.snapshot import GlobalSnapshot, _CutLatch
from repro.storage import faults

_META_FILE = "shards.meta"
_DEFAULT_NSHARDS = 4

#: Shard health states (see :meth:`ShardedDatabase.shard_health`).
SHARD_UP = "up"
SHARD_DEGRADED = "degraded"  # read-only after persistent I/O failure
SHARD_DOWN = "down"          # detached: every touch fails fast

_session_ids = itertools.count(1)


def _oid_of(target: Ref | VersionRef | Oid | Vid) -> Oid:
    if isinstance(target, (Ref, VersionRef)):
        return target.oid
    if isinstance(target, Vid):
        return target.oid
    return target


def _unbind(target: Ref | VersionRef | Oid | Vid) -> Oid | Vid:
    """Strip any binding so shard facades see plain ids."""
    if isinstance(target, Ref):
        return target.oid
    if isinstance(target, VersionRef):
        return target.vid
    return target


class ShardedDatabase:
    """N shard databases behind the single-database facade.

    Parameters
    ----------
    path:
        Directory for the shard directories and the ``shards.meta``
        layout record (created if missing).
    nshards:
        Number of shards.  Persisted on first open; reopening with a
        different explicit value is refused -- placement is arithmetic in
        ``nshards``, so changing it would scatter every existing oid's
        home.  ``None`` adopts the persisted value (or the default of
        {default} for a fresh directory).
    parallel_fanout:
        Scatter fan-outs (queries, clusters, stats, multi-holder
        ``latest_vid``) across the shared :class:`ShardExecutor` instead
        of looping shard-by-shard.  On by default; the serial loops
        remain as the fallback (single shard, nested fan-out, disabled).
    parallel_2pc:
        Run 2PC phase-1 PREPARE flushes and phase-2 COMMITs concurrently
        across writer participants (wall-clock cost drops from the sum
        of the participants' fsyncs to their max).  On by default.
    **db_kwargs:
        Forwarded to every shard's :class:`Database` (pool size, group
        commit window, lock timeout, ...).
    """.format(default=_DEFAULT_NSHARDS)

    def __init__(
        self,
        path: str | os.PathLike[str],
        nshards: int | None = None,
        *,
        parallel_fanout: bool = True,
        parallel_2pc: bool = True,
        **db_kwargs: Any,
    ) -> None:
        self._path = os.fspath(path)
        os.makedirs(self._path, exist_ok=True)
        meta_path = os.path.join(self._path, _META_FILE)
        if os.path.exists(meta_path):
            with open(meta_path, "r", encoding="utf-8") as fh:
                persisted = int(json.load(fh)["nshards"])
            if nshards is not None and nshards != persisted:
                raise ValueError(
                    f"database at {self._path!r} has {persisted} shards; "
                    f"refusing to open with nshards={nshards} (placement is "
                    "modulo nshards, so resharding would orphan every oid)"
                )
            nshards = persisted
        else:
            if nshards is None:
                nshards = _DEFAULT_NSHARDS
            if nshards < 1:
                raise ValueError("nshards must be >= 1")
            with open(meta_path, "w", encoding="utf-8") as fh:
                json.dump({"nshards": nshards}, fh)
        self.nshards = nshards
        self.placement = ModuloPlacement(nshards)
        self._db_kwargs = dict(db_kwargs)
        self.shards: list[Database] = [
            Database(
                os.path.join(self._path, f"shard-{i:02d}"),
                oid_stride=nshards,
                oid_residue=i,
                **db_kwargs,
            )
            for i in range(nshards)
        ]
        # Failure domains: each shard is independently up, degraded
        # (read-only) or down (detached).  ``_shard_gen`` counts
        # reattachments so cached shard sessions bound to a dead
        # Database object are recreated against the replacement.
        self._shard_down: list[bool] = [False] * nshards
        self._shard_gen: list[int] = [0] * nshards
        self._health_counters: dict[str, int] = {
            "kills": 0,
            "reattaches": 0,
            "failfast": 0,
            "skipped_fanouts": 0,
        }
        #: Protocol counters, surfaced as ``shard.2pc.*`` in :meth:`stats`.
        self._twopc_counters: dict[str, int] = {
            "commits_single": 0,
            "commits_cross": 0,
            "prepares": 0,
            "decisions": 0,
            "aborts": 0,
            "forgets": 0,
            "readonly_participants": 0,
            "resolved_commit": 0,
            "resolved_abort": 0,
            "locate_fallbacks": 0,
        }
        # Global transaction ids: a fresh 48-bit incarnation per open plus
        # an in-memory sequence, so gtxids never collide across restarts
        # (the sequence alone would -- it restarts from 1).
        self._incarnation = random.getrandbits(48)
        self._gtxid_seq = itertools.count(1)
        self._gtxn_ids = itertools.count(1)
        self._rr = itertools.count()
        # Parallel cross-shard execution: one bounded pool shared by
        # every fan-out and both 2PC phases, plus the cut latch that
        # keeps global snapshots consistent against phase-2 publication.
        self.parallel_fanout = parallel_fanout
        self.parallel_2pc = parallel_2pc
        self._exec = ShardExecutor(nshards, name=f"shard-exec-{id(self):x}")
        self._cut_latch = _CutLatch()
        self._cut_seq = itertools.count(1)
        self._snap_counters: dict[str, int] = {"cuts": 0, "degraded_cuts": 0}
        self._tlocal = threading.local()
        self._sessions: set["RouterSession"] = set()
        self._session_mutex = threading.Lock()
        self._stats_sources: list[Callable[[], dict[str, Any]]] = []
        self._closed = False
        #: What restart resolution found and did at this open.
        self.last_resolution: ResolutionReport = resolve_in_doubt(self)
        self._twopc_counters["resolved_commit"] = len(self.last_resolution.committed)
        self._twopc_counters["resolved_abort"] = len(self.last_resolution.aborted)

    # -- lifecycle -----------------------------------------------------------

    @property
    def path(self) -> str:
        """The sharded database's root directory."""
        return self._path

    def checkpoint(self) -> None:
        """Checkpoint every *up* shard (quiescent only, like the embedded
        call); down shards are skipped."""
        for idx, db in enumerate(self.shards):
            if not self._shard_down[idx]:
                db.checkpoint()

    def close(self) -> None:
        """Close every session, then every shard.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        with self._session_mutex:
            sessions = list(self._sessions)
        for sess in sessions:
            sess.close()
        self._exec.close()
        for idx, db in enumerate(self.shards):
            if not self._shard_down[idx]:
                db.close()

    # -- failure domains -----------------------------------------------------

    def shard_health(self) -> dict[int, str]:
        """Per-shard health: ``up``, ``degraded`` (read-only) or ``down``.

        Each shard is its own failure domain: a down shard fails its
        operations fast with :class:`ShardUnavailableError` while the
        healthy shards keep serving; a degraded shard (read-only after
        persistent I/O failure) still answers reads.
        """
        out: dict[int, str] = {}
        for idx, db in enumerate(self.shards):
            if self._shard_down[idx]:
                out[idx] = SHARD_DOWN
            elif db.degraded:
                out[idx] = SHARD_DEGRADED
            else:
                out[idx] = SHARD_UP
        return out

    def _up_shards(self) -> list[int]:
        return [i for i in range(self.nshards) if not self._shard_down[i]]

    def _check_up(self, idx: int) -> None:
        if self._shard_down[idx]:
            self._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {idx} is down; the operation targets its failure "
                "domain (retry after reattach_shard, or route elsewhere)",
                shard=idx,
            )

    def kill_shard(self, idx: int) -> None:
        """Abruptly take shard ``idx`` down -- the chaos harness's axe.

        No checkpoint, no flush: the shard's WAL keeps whatever it
        held, exactly like a machine losing power.  The shard is marked
        down *first* so routing fails fast before the files close under
        a concurrent operation.  Idempotent.
        """
        if self._shard_down[idx]:
            return
        self._shard_down[idx] = True
        self._health_counters["kills"] += 1
        db = self.shards[idx]
        # Abrupt stop: mark closed and drop the file handles without
        # flushing -- recovery at reattach must replay from the WAL.
        # Each handle closes *under its own I/O lock* so an operation
        # that passed _check_up before the flag flipped either finishes
        # its in-flight write first (bytes that beat the power cut) or
        # faults cleanly afterwards -- never mid-syscall on a handle
        # closed underneath it (which could tear state beyond the
        # intended power-loss shape).  _on_shard translates the
        # post-close faults to the retryable ShardUnavailableError.
        db._closed = True
        log = db._log
        with log._cond:
            while log._flushing:
                log._cond.wait()
            try:
                log._file.close()
            except Exception:
                pass
        disk = db._disk
        with disk._lock:
            try:
                disk._file.close()
            except Exception:
                pass

    def reattach_shard(self, idx: int) -> ResolutionReport:
        """Bring a down shard back online.

        Reopens the shard database (its own WAL recovery replays the
        abrupt shutdown), bumps the shard's generation so cached shard
        sessions bound to the dead instance are recreated, then runs
        in-doubt resolution: full (all shards, verdicts forgotten) when
        the whole fleet is back up, targeted at this shard (verdicts
        retained) while others remain down.  Returns the resolution
        report.
        """
        if not self._shard_down[idx]:
            raise ValueError(f"shard {idx} is not down")
        self.shards[idx] = Database(
            os.path.join(self._path, f"shard-{idx:02d}"),
            oid_stride=self.nshards,
            oid_residue=idx,
            **self._db_kwargs,
        )
        self._shard_gen[idx] += 1
        self._shard_down[idx] = False
        self._health_counters["reattaches"] += 1
        if all(not down for down in self._shard_down):
            report = resolve_in_doubt(self)
        else:
            report = resolve_in_doubt(self, only={idx})
        self._twopc_counters["resolved_commit"] += len(report.committed)
        self._twopc_counters["resolved_abort"] += len(report.aborted)
        return report

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sessions ------------------------------------------------------------

    def session(self, name: str | None = None) -> "RouterSession":
        """Create an explicit client session (the wire server's per-connection
        state).  Mirrors :meth:`Database.session`."""
        sess = RouterSession(self, name)
        with self._session_mutex:
            self._sessions.add(sess)
        return sess

    @property
    def session_count(self) -> int:
        with self._session_mutex:
            return len(self._sessions)

    def _forget_session(self, sess: "RouterSession") -> None:
        with self._session_mutex:
            self._sessions.discard(sess)

    def _swap_active_session(
        self, sess: "RouterSession | None"
    ) -> "RouterSession | None":
        prev = getattr(self._tlocal, "active_session", None)
        self._tlocal.active_session = sess
        return prev

    def _current_session(self, create: bool = True) -> "RouterSession | None":
        """The calling thread's router session: activated, else implicit."""
        sess = getattr(self._tlocal, "active_session", None)
        if sess is not None:
            return sess
        sess = getattr(self._tlocal, "implicit_session", None)
        if sess is None and create:
            sess = RouterSession(self, name=f"thread-{threading.get_ident()}")
            self._tlocal.implicit_session = sess
        return sess

    def add_stats_source(self, source: Callable[[], dict[str, Any]]) -> None:
        """Merge ``source()`` into :meth:`stats` (the wire server's ``net.*``)."""
        self._stats_sources.append(source)

    def remove_stats_source(self, source: Callable[[], dict[str, Any]]) -> None:
        try:
            self._stats_sources.remove(source)
        except ValueError:
            pass

    # -- routing -------------------------------------------------------------

    def _holders(self, oid: Oid) -> list[int]:
        """Every *up* shard currently holding live versions of ``oid``."""
        return [
            i
            for i, db in enumerate(self.shards)
            if not self._shard_down[i] and db.store.object_exists(oid)
        ]

    def _locate(self, oid: Oid) -> int:
        """The shard that owns ``oid``: placement hint, verified.

        A hint miss scans the other shards (``shard.locate_fallbacks``);
        an oid nobody holds routes to its home shard so the error surfaces
        there with the ordinary not-found message -- and so a snapshot
        reader can still see an object whose live state was just deleted.
        An oid whose home shard is down fails fast with
        :class:`ShardUnavailableError` -- its failure domain.
        """
        home = self.placement.shard_of(oid)
        self._check_up(home)
        if self.shards[home].store.object_exists(oid):
            return home
        for idx, db in enumerate(self.shards):
            if (
                idx != home
                and not self._shard_down[idx]
                and db.store.object_exists(oid)
            ):
                self._twopc_counters["locate_fallbacks"] += 1
                return idx
        return home

    def _on_shard(
        self,
        idx: int,
        fn: Callable[[Database], Any],
        sess: "RouterSession | None" = None,
    ) -> Any:
        """Run ``fn(shard)`` with the shard session activated.

        If the router session has an active global transaction, the shard
        joins it here: a local transaction is begun lazily on first touch
        (inheriting the global lock timeout and snapshot-read mode), so
        shards the transaction never touches pay nothing.

        ``sess`` carries the caller's router session onto executor
        worker threads explicitly -- the thread-local lookup would hand
        a worker its own implicit session, detaching the fan-out from
        the client's transaction and pins.  Distinct shards mean
        distinct shard-local sessions, so parallel workers activating
        them never collide on the one-thread-at-a-time rule.

        An operation that passed the up-check but raced ``kill_shard``
        surfaces whatever low-level error the dying shard produced (a
        closed-file ValueError, a DiskError, ...); those are translated
        to the documented retryable :class:`ShardUnavailableError` here,
        so callers see the same failure shape as a fail-fast rejection.
        """
        self._check_up(idx)
        if sess is None:
            sess = self._current_session()
        gtxn = sess.txn
        if gtxn is not None and gtxn.state != ACTIVE:
            sess.txn = None
            gtxn = None
        shard_sess = sess.shard_session(idx)
        if (
            gtxn is not None
            and idx in gtxn.locals
            and gtxn.local_gens.get(idx) != self._shard_gen[idx]
        ):
            # The shard died and was reattached while this transaction
            # held a local half there: recovery rolled that half back,
            # and the stale local was aborted with its old session.
            # Running the op anyway would escape the transaction
            # entirely (an autocommit write on the replacement shard).
            self._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {idx} failed while this transaction was using "
                "it; its shard-local work was rolled back by recovery "
                "(retry the whole transaction)",
                shard=idx,
            )
        try:
            with shard_sess.activate():
                if gtxn is not None and idx not in gtxn.locals:
                    local = self.shards[idx].begin(
                        lock_timeout=gtxn.lock_timeout,
                        snapshot_reads=gtxn.read_only,
                    )
                    gtxn.locals[idx] = local
                    gtxn.local_gens[idx] = self._shard_gen[idx]
                    cut = gtxn.cut
                    if (
                        gtxn.read_only
                        and cut is not None
                        and idx in cut.parts
                        and cut.gens.get(idx) == self._shard_gen[idx]
                    ):
                        # A snapshot-read global transaction reads at its
                        # begin-time *cut*, not at per-shard first-touch
                        # epochs: swap the lazily-pinned local snapshot
                        # for the cut's part so every shard serves the
                        # same consistent point.  (Snapshot.close is
                        # idempotent; shared ownership with the cut is
                        # fine.)
                        if local.snapshot is not None:
                            local.snapshot.close()
                        local.snapshot = cut.parts[idx]
                return fn(self.shards[idx])
        except ShardUnavailableError:
            raise
        except Exception as exc:
            if not self._shard_down[idx]:
                raise
            self._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {idx} went down mid-operation (retry after "
                "reattach_shard, or route elsewhere)",
                shard=idx,
            ) from exc

    # -- transactions --------------------------------------------------------

    def begin(
        self,
        *,
        lock_timeout: float | None = None,
        snapshot_reads: bool = False,
    ) -> GlobalTransaction:
        """Start a global transaction on the calling session.

        Shard-local transactions are created lazily as shards are
        touched; commit runs the single-shard fast path or cross-shard
        2PC depending on how many shards that turned out to be.
        """
        sess = self._current_session()
        if self.current_transaction() is not None:
            raise TransactionStateError(
                "a transaction is already active on this session"
            )
        gtxn = GlobalTransaction(
            self, sess, next(self._gtxn_ids), read_only=snapshot_reads
        )
        gtxn.lock_timeout = lock_timeout
        if snapshot_reads:
            # One consistent cut for the whole transaction: every shard
            # it lazily touches adopts this cut's part as its snapshot
            # (see _on_shard), so a cross-shard snapshot-read transaction
            # observes a single global point rather than N first-touch
            # epochs.
            gtxn.cut = self.snapshot()
        sess.txn = gtxn
        return gtxn

    def current_transaction(self) -> GlobalTransaction | None:
        """The calling session's active global transaction, if any."""
        sess = self._current_session(create=False)
        if sess is None:
            return None
        gtxn = sess.txn
        if gtxn is not None and gtxn.state != ACTIVE:
            sess.txn = None
            return None
        return gtxn

    @contextmanager
    def transaction(
        self,
        lock_timeout: float | None = None,
        snapshot_reads: bool = False,
    ) -> Iterator[GlobalTransaction]:
        """``with router.transaction():`` -- commit on exit, abort on error."""
        gtxn = self.begin(lock_timeout=lock_timeout, snapshot_reads=snapshot_reads)
        try:
            yield gtxn
        except BaseException:
            # A decided transaction may no longer abort (restart recovery
            # completes it), and a simulated-dead process touches nothing.
            if (
                gtxn.state == ACTIVE
                and not gtxn.decided
                and not faults.is_crashed()
            ):
                gtxn.abort()
            raise
        else:
            if gtxn.state == ACTIVE:
                try:
                    gtxn.commit()
                except BaseException:
                    # An undecided commit failure (e.g. its shard died
                    # under it) must not leave the transaction attached
                    # to the session -- that would wedge every later
                    # begin() with "already active".  Abort detaches it;
                    # a *decided* transaction stays (restart resolution
                    # completes it, and abort is forbidden).
                    if (
                        gtxn.state == ACTIVE
                        and not gtxn.decided
                        and not faults.is_crashed()
                    ):
                        try:
                            gtxn.abort()
                        except Exception:
                            pass  # the commit error is the one to surface
                    raise

    def run_transaction(
        self,
        fn: Callable[[], Any],
        *,
        max_attempts: int = 5,
        backoff: float = 0.01,
        max_backoff: float = 0.5,
        lock_timeout: float | None = None,
        retry_on: tuple[type[BaseException], ...] = RETRYABLE_ERRORS,
    ) -> Any:
        """Run ``fn`` in a global transaction, retrying transient conflicts.

        Same contract as :meth:`Database.run_transaction` (exponential
        backoff with full jitter, join an ambient transaction, re-execute
        from scratch on a retryable conflict).  Cross-shard deadlocks
        surface as per-shard lock timeouts, which are retryable here.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.current_transaction() is not None:
            return fn()
        attempt = 0
        while True:
            attempt += 1
            try:
                with self.transaction(lock_timeout=lock_timeout):
                    return fn()
            except retry_on:
                if attempt >= max_attempts:
                    raise
                pause = random.uniform(
                    0.0, min(max_backoff, backoff * (2 ** (attempt - 1)))
                )
                if pause > 0:
                    time.sleep(pause)

    def _next_gtxid(self) -> tuple:
        return (self._incarnation, next(self._gtxid_seq))

    def _finish_global(self, gtxn: GlobalTransaction) -> None:
        """Detach a finished global transaction from its session (idempotent)."""
        cut = gtxn.cut
        if cut is not None:
            gtxn.cut = None
            cut.close()
        sess = gtxn.session
        if sess.txn is gtxn:
            sess.txn = None

    # -- kernel operations ----------------------------------------------------

    def pnew(self, obj: Any) -> Ref:
        """Create a persistent object on the next *up* shard (round-robin).

        Placement is a free choice here (no oid exists yet), so creation
        stays available while any shard is up -- down shards are simply
        skipped in the rotation.
        """
        idx = next(self._rr) % self.nshards
        for _ in range(self.nshards - 1):
            if not self._shard_down[idx]:
                break
            idx = next(self._rr) % self.nshards
        ref = self._on_shard(idx, lambda db: db.pnew(obj))
        return Ref(self, ref.oid)

    def newversion(self, target: Ref | VersionRef | Oid | Vid) -> VersionRef:
        """Create a derived version on the shard holding the target."""
        oid = _oid_of(target)
        vref = self._on_shard(
            self._locate(oid), lambda db: db.newversion(_unbind(target))
        )
        return VersionRef(self, vref.vid)

    def pdelete(self, target: Ref | VersionRef | Oid | Vid) -> None:
        """Delete an object (or one version) on its shard."""
        oid = _oid_of(target)
        self._on_shard(
            self._locate(oid), lambda db: db.pdelete(_unbind(target))
        )

    def deref(self, ident: Oid | Vid) -> Ref | VersionRef:
        """Bind an id to a router-bound reference."""
        if isinstance(ident, Oid):
            return Ref(self, ident)
        if isinstance(ident, Vid):
            return VersionRef(self, ident)
        raise TypeError(f"expected Oid or Vid, got {type(ident).__qualname__}")

    # -- retention & garbage collection ---------------------------------------

    def set_retention(self, scope: Any, policy: Any | None) -> None:
        """Declare (or clear) a retention policy across the cluster.

        Type-scoped policies are broadcast to every up shard (each
        shard's catalog carries its own copy, so a shard GC needs no
        cross-shard coordination); object-scoped policies route to the
        owning shard alone.
        """
        if isinstance(scope, (Oid, Ref, VersionRef)):
            oid = _oid_of(scope)
            self._on_shard(
                self._locate(oid), lambda db: db.set_retention(oid, policy)
            )
            return
        sess = self._current_session()
        self._scatter(
            self._fanout_shards(),
            lambda idx: self._on_shard(
                idx, lambda db: db.set_retention(scope, policy), sess=sess
            ),
        )

    def retention_policies(self) -> dict[str, Any]:
        """The union of every up shard's retention table."""
        sess = self._current_session()
        parts = self._scatter(
            self._fanout_shards(),
            lambda idx: self._on_shard(
                idx, lambda db: db.retention_policies(), sess=sess
            ),
        )
        merged: dict[str, Any] = {}
        for part in parts:
            merged.update(part)
        return merged

    def retention_for(self, target: Ref | Oid | type | str) -> Any | None:
        """The effective policy: routed for objects, any up shard for types."""
        if isinstance(target, (Oid, Ref, VersionRef)):
            oid = _oid_of(target)
            return self._on_shard(
                self._locate(oid), lambda db: db.retention_for(oid)
            )
        # Type policies are broadcast identically to every shard.
        return self._first_up(lambda db: db.retention_for(target))

    def _first_up(self, fn: Callable[[Database], Any]) -> Any:
        up = self._fanout_shards()
        if not up:
            raise ShardUnavailableError("no shard is up", shard=-1)
        return self._on_shard(up[0], fn)

    def tag_version(self, target: VersionRef | Vid, tag: str) -> None:
        """Pin one version with a tag on its owning shard."""
        vid = target.vid if isinstance(target, VersionRef) else target
        self._on_shard(
            self._locate(vid.oid), lambda db: db.tag_version(vid, tag)
        )

    def untag_version(self, target: VersionRef | Vid) -> None:
        vid = target.vid if isinstance(target, VersionRef) else target
        self._on_shard(
            self._locate(vid.oid), lambda db: db.untag_version(vid)
        )

    def version_tags(self, target: Ref | VersionRef | Oid | Vid) -> dict[int, str]:
        oid = _oid_of(target)
        return self._on_shard(
            self._locate(oid), lambda db: db.version_tags(oid)
        )

    def run_gc(
        self,
        batch_limit: int = 64,
        now: float | None = None,
        dry_run: bool = False,
        reclaim: bool = True,
    ) -> Any:
        """Scatter one incremental GC pass across every up shard.

        Each shard collects independently (retention tables are
        shard-local); a shard holding in-doubt 2PC participants skips
        blob reclaim on its own (their verdict may undo displacements),
        so running GC during a partial outage is safe.  Reports are
        merged.
        """
        from repro.core.gc import GCReport

        sess = self._current_session()
        parts = self._scatter(
            self._fanout_shards(),
            lambda idx: self._on_shard(
                idx,
                lambda db: db.run_gc(
                    batch_limit=batch_limit, now=now, dry_run=dry_run,
                    reclaim=reclaim,
                ),
                sess=sess,
            ),
        )
        merged = GCReport(dry_run=dry_run)
        for part in parts:
            merged.versions_examined += part.versions_examined
            merged.versions_deleted += part.versions_deleted
            merged.objects_pruned += part.objects_pruned
            merged.batches += part.batches
            merged.blobs_unlinked += part.blobs_unlinked
            merged.bytes_freed += part.bytes_freed
            merged.candidates_remaining += part.candidates_remaining
        return merged

    def reclaim_blobs(
        self, limit: int | None = None, dry_run: bool = False
    ) -> tuple[int, int, int]:
        """Scatter a blob-reclaim batch; sums the per-shard outcomes."""
        sess = self._current_session()
        parts = self._scatter(
            self._fanout_shards(),
            lambda idx: self._on_shard(
                idx, lambda db: db.reclaim_blobs(limit, dry_run), sess=sess
            ),
        )
        unlinked = sum(p[0] for p in parts)
        freed = sum(p[1] for p in parts)
        remaining = sum(p[2] for p in parts)
        return (unlinked, freed, remaining)

    # -- store protocol (Ref/VersionRef bound to the router) -------------------

    def materialize(self, vid: Vid) -> Any:
        return self._on_shard(self._locate(vid.oid), lambda db: db.materialize(vid))

    def read_attr(self, vid: Vid, name: str) -> Any:
        return self._on_shard(
            self._locate(vid.oid), lambda db: db.read_attr(vid, name)
        )

    def latest_vid(self, oid: Oid) -> Vid:
        """The globally latest version of ``oid``.

        Consults every shard holding versions of the oid (normally
        exactly one, thanks to strided allocation) and ranks the
        candidates by version creation time, newest wins -- ties break
        toward the higher serial, matching the single-shard temporal
        order.
        """
        holders = self._holders(oid)
        if len(holders) <= 1:
            idx = holders[0] if holders else self.placement.shard_of(oid)
            return self._on_shard(idx, lambda db: db.latest_vid(oid))
        # (down shards never appear in holders; _on_shard fails fast.)
        best_key: tuple | None = None
        best_vid: Vid | None = None

        def probe(db: "Database") -> tuple[Vid, float]:
            # One callback resolves both the vid and its ctime so the
            # graph lookup runs in the same shard-session context (same
            # SHARED lock / local-transaction view) as the latest_vid
            # call it ranks.
            vid = db.latest_vid(oid)
            return vid, db.graph(oid).node(vid.serial).ctime

        sess = self._current_session()
        candidates = self._scatter(
            holders, lambda idx: self._on_shard(idx, probe, sess=sess)
        )
        for vid, ctime in candidates:
            key = (ctime, vid.serial)
            if best_key is None or key > best_key:
                best_key, best_vid = key, vid
        assert best_vid is not None
        return best_vid

    def write_version(self, vid: Vid, obj: Any) -> None:
        self._on_shard(
            self._locate(vid.oid), lambda db: db.write_version(vid, obj)
        )

    def write_version_if_changed(self, vid: Vid, obj: Any) -> bool:
        return self._on_shard(
            self._locate(vid.oid),
            lambda db: db.write_version_if_changed(vid, obj),
        )

    def object_exists(self, oid: Oid) -> bool:
        return self._on_shard(self._locate(oid), lambda db: db.object_exists(oid))

    def version_exists(self, vid: Vid) -> bool:
        return self._on_shard(
            self._locate(vid.oid), lambda db: db.version_exists(vid)
        )

    def type_name(self, oid: Oid) -> str:
        return self._on_shard(self._locate(oid), lambda db: db.type_name(oid))

    # -- traversal ------------------------------------------------------------

    def _rebind_vref(self, vref: VersionRef | None) -> VersionRef | None:
        return None if vref is None else VersionRef(self, vref.vid)

    def dprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        vid = _unbind(vref)
        return self._rebind_vref(
            self._on_shard(self._locate(vid.oid), lambda db: db.dprevious(vid))
        )

    def dnext(self, vref: VersionRef | Vid) -> list[VersionRef]:
        vid = _unbind(vref)
        out = self._on_shard(self._locate(vid.oid), lambda db: db.dnext(vid))
        return [VersionRef(self, v.vid) for v in out]

    def tprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        vid = _unbind(vref)
        return self._rebind_vref(
            self._on_shard(self._locate(vid.oid), lambda db: db.tprevious(vid))
        )

    def tnext(self, vref: VersionRef | Vid) -> VersionRef | None:
        vid = _unbind(vref)
        return self._rebind_vref(
            self._on_shard(self._locate(vid.oid), lambda db: db.tnext(vid))
        )

    def history(self, vref: VersionRef | Vid) -> list[VersionRef]:
        vid = _unbind(vref)
        out = self._on_shard(self._locate(vid.oid), lambda db: db.history(vid))
        return [VersionRef(self, v.vid) for v in out]

    def versions(self, target: Ref | Oid) -> list[VersionRef]:
        oid = _oid_of(target)
        out = self._on_shard(self._locate(oid), lambda db: db.versions(oid))
        return [VersionRef(self, v.vid) for v in out]

    def version_as_of(self, target: Ref | Oid, timestamp: float) -> VersionRef | None:
        oid = _oid_of(target)
        return self._rebind_vref(
            self._on_shard(
                self._locate(oid), lambda db: db.version_as_of(oid, timestamp)
            )
        )

    def leaves(self, target: Ref | Oid) -> list[VersionRef]:
        oid = _oid_of(target)
        out = self._on_shard(self._locate(oid), lambda db: db.leaves(oid))
        return [VersionRef(self, v.vid) for v in out]

    def alternatives(self, target: Ref | Oid) -> list[list[VersionRef]]:
        oid = _oid_of(target)
        out = self._on_shard(self._locate(oid), lambda db: db.alternatives(oid))
        return [[VersionRef(self, v.vid) for v in path] for path in out]

    def version_count(self, target: Ref | Oid) -> int:
        oid = _oid_of(target)
        return self._on_shard(self._locate(oid), lambda db: db.version_count(oid))

    def graph(self, target: Ref | Oid) -> VersionGraph:
        oid = _oid_of(target)
        return self._on_shard(self._locate(oid), lambda db: db.graph(oid))

    # -- clusters & queries ----------------------------------------------------

    def _fanout_shards(self) -> list[int]:
        """The shards a fan-out consults: the up ones.

        Degraded-mode semantics, documented: while any shard is down,
        fan-outs (clusters, queries, counts) return *partial* results
        over the healthy shards rather than failing the whole surface --
        each skip is counted in ``shard.health.skipped_fanouts``.
        """
        up = self._up_shards()
        skipped = self.nshards - len(up)
        if skipped:
            self._health_counters["skipped_fanouts"] += skipped
        return up

    def _scatter(
        self, indices: list[int], fn: Callable[[int], Any]
    ) -> list[Any]:
        """Run ``fn(idx)`` for every shard index; scatter-gather when enabled.

        The parallel path preserves the serial loop's semantics exactly:
        results come back in ``indices`` order, and on failure one
        deterministic exception surfaces -- a :class:`SimulatedCrash`
        first (the harness must see the "process death" it injected, and
        concurrent siblings may have failed *because* of it), otherwise
        the lowest failing shard's error.  Per-shard fencing (dying
        shards -> :class:`ShardUnavailableError`) already happened
        inside the scattered ``fn`` via :meth:`_on_shard`.

        Falls back to the serial loop for single-shard fan-outs, when
        ``parallel_fanout`` is off, or when the calling thread is itself
        a pool worker (a nested scatter waiting on workers it occupies
        would deadlock the bounded pool).
        """
        if (
            not self.parallel_fanout
            or len(indices) <= 1
            or self._exec.in_worker()
        ):
            return [fn(idx) for idx in indices]
        outcomes = self._exec.run_all(indices, fn)
        errors = [
            (idx, err) for idx, (_, err) in zip(indices, outcomes) if err is not None
        ]
        if errors:
            for _, err in errors:
                if isinstance(err, faults.SimulatedCrash):
                    raise err
            raise min(errors)[1]
        return [result for result, _ in outcomes]

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        """The type's cluster, scattered across every up shard."""
        sess = self._current_session()
        parts = self._scatter(
            self._fanout_shards(),
            lambda idx: self._on_shard(
                idx, lambda db: db.cluster(type_or_name), sess=sess
            ),
        )
        out: list[Ref] = []
        for refs in parts:
            out.extend(Ref(self, ref.oid) for ref in refs)
        return out

    def cluster_names(self) -> list[str]:
        sess = self._current_session()
        parts = self._scatter(
            self._fanout_shards(),
            lambda idx: self._on_shard(
                idx, lambda db: db.cluster_names(), sess=sess
            ),
        )
        names: set[str] = set()
        for part in parts:
            names.update(part)
        return sorted(names)

    def object_count(self) -> int:
        sess = self._current_session()
        return sum(
            self._scatter(
                self._fanout_shards(),
                lambda idx: self._on_shard(
                    idx, lambda db: db.object_count(), sess=sess
                ),
            )
        )

    def query(self, type_or_name: type | str) -> "_FanoutQuery":
        """A ``suchthat`` query fanned out across every up shard's cluster.

        Each shard contributes its own :class:`~repro.core.query.Query`
        (bound to the local transaction's snapshot under a snapshot-read
        transaction); results are rebound to the router.  Materialization
        scatters across the shard executor (see :class:`_FanoutQuery`).
        """
        sess = self._current_session()
        indices = self._fanout_shards()
        parts = self._scatter(
            indices,
            lambda idx: self._on_shard(
                idx, lambda db: db.query(type_or_name), sess=sess
            ),
        )
        return _FanoutQuery(
            parts, rebind=self, executor=self._exec,
            origin=(self, sess, indices),
        )

    # -- the global snapshot epoch ---------------------------------------------

    def snapshot(self) -> GlobalSnapshot:
        """Pin one **consistent cut** across every up shard.

        Taken under the exclusive side of the cut latch, so the cut can
        never land inside a cross-shard commit's phase-2 publication
        window: a transaction that committed across shards is entirely
        visible or entirely invisible (the E16 regression gate).  Down
        shards contribute no part -- reads targeting them fail fast, and
        the cut is counted degraded.

        Use as a context manager (or ``close()``) to unpin::

            with router.snapshot() as cut:
                total = sum(acct.balance for acct in cut.cluster(Account))
        """
        with self._cut_latch.cutting():
            parts: dict[int, Any] = {}
            gens: dict[int, int] = {}
            try:
                for idx in self._up_shards():
                    try:
                        parts[idx] = self.shards[idx].snapshot()
                    except Exception:
                        if not self._shard_down[idx]:
                            raise
                        # Raced kill_shard: degrade exactly like a
                        # fan-out that found the shard already down.
                        self._health_counters["skipped_fanouts"] += 1
                        continue
                    gens[idx] = self._shard_gen[idx]
            except BaseException:
                for snap in parts.values():
                    snap.close()
                raise
            seq = next(self._cut_seq)
            self._snap_counters["cuts"] += 1
            if len(parts) < self.nshards:
                self._snap_counters["degraded_cuts"] += 1
        return GlobalSnapshot(self, parts, seq, gens)

    # -- stats ----------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Aggregated counters: shard-summed kernel stats plus ``shard.*``.

        Numeric keys from each shard's :meth:`Database.stats` are summed
        (``wal.flushes`` is the fleet total, and so on); the router adds
        ``shard.count``, ``shard.locate_fallbacks`` and the 2PC protocol
        counters under ``shard.2pc.*``.
        """
        stats: dict[str, Any] = {"shard.count": self.nshards}
        for key, value in self._twopc_counters.items():
            if key == "locate_fallbacks":
                stats["shard.locate_fallbacks"] = value
            else:
                stats[f"shard.2pc.{key}"] = value
        health = self.shard_health()
        stats["shard.health.up"] = sum(
            1 for state in health.values() if state == SHARD_UP
        )
        stats["shard.health.degraded"] = sum(
            1 for state in health.values() if state == SHARD_DEGRADED
        )
        stats["shard.health.down"] = sum(
            1 for state in health.values() if state == SHARD_DOWN
        )
        for key, value in self._health_counters.items():
            stats[f"shard.health.{key}"] = value
        stats.update(self._exec.stats())
        for key, value in self._snap_counters.items():
            stats[f"shard.snap.{key}"] = value

        def shard_stats(idx: int) -> dict[str, Any]:
            try:
                return self.shards[idx].stats()
            except Exception:
                if self._shard_down[idx]:
                    # Raced kill_shard mid-aggregation: degrade like any
                    # fan-out, the healthy shards' numbers still land.
                    self._health_counters["skipped_fanouts"] += 1
                    return {}
                raise

        agg: dict[str, Any] = {}
        for per_shard in self._scatter(self._up_shards(), shard_stats):
            for key, value in per_shard.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                agg[key] = agg.get(key, 0) + value
        stats.update(agg)
        stats["degraded"] = any(
            self.shards[idx].degraded for idx in self._up_shards()
        )
        stats["sessions.open"] = self.session_count
        for source in list(self._stats_sources):
            stats.update(source())
        return stats

    def __repr__(self) -> str:
        return f"ShardedDatabase({self._path!r}, nshards={self.nshards})"


class RouterSession:
    """One client's state against the router: global txn, pins, context.

    Mirrors :class:`~repro.core.session.Session` (the wire server drives
    both through the same calls) and owns one shard-local session per
    shard, created lazily.  The global transaction lives here; its
    shard-local transactions live in the shard sessions.
    """

    def __init__(self, router: ShardedDatabase, name: str | None = None) -> None:
        self.id = next(_session_ids)
        self.name = name or f"router-session-{self.id}"
        self.router = router
        #: The session's open global transaction, or None.
        self.txn: GlobalTransaction | None = None
        self.context: dict[str, Any] = {}
        self.closed = False
        self._shard_sessions: dict[int, Session] = {}
        self._shard_gens: dict[int, int] = {}
        self._reader: "ShardedReader | None" = None
        #: The session's pinned global cut (one consistent point across
        #: shards) -- the read context behind :attr:`snapshot`/:meth:`reader`.
        self._cut: GlobalSnapshot | None = None
        self._mutex = threading.Lock()
        self._active_thread: int | None = None

    def shard_session(self, idx: int) -> Session:
        """The lazily-created local session on shard ``idx``.

        Generation-checked: a cached session bound to a shard instance
        that has since been killed and reattached is discarded and
        recreated against the replacement database -- otherwise every
        session from before the failure would keep talking to the dead
        object forever.
        """
        gen = self.router._shard_gen[idx]
        sess = self._shard_sessions.get(idx)
        if sess is not None and self._shard_gens.get(idx) != gen:
            try:
                sess.close()
            except Exception:
                pass  # bound to the dead instance; nothing to save
            sess = None
        if sess is None:
            # Constructed directly (not via Database.session) so shard
            # databases do not track router-owned sessions; the router
            # session closes them itself.
            sess = Session(self.router.shards[idx], name=f"{self.name}@shard{idx}")
            self._shard_sessions[idx] = sess
            self._shard_gens[idx] = gen
        return sess

    # -- activation -----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["RouterSession"]:
        """Bind the session to the calling thread for one request.

        Same contract as the local session: re-entrant on one thread,
        refused across two threads at once.
        """
        if self.closed:
            raise SessionStateError(f"{self.name} is closed")
        me = threading.get_ident()
        with self._mutex:
            if self._active_thread is not None and self._active_thread != me:
                raise SessionStateError(
                    f"{self.name} is already active on another thread"
                )
            nested = self._active_thread == me
            self._active_thread = me
        prev = self.router._swap_active_session(self)
        try:
            yield self
        finally:
            self.router._swap_active_session(prev)
            if not nested:
                with self._mutex:
                    self._active_thread = None

    # -- the snapshot read context ---------------------------------------------

    @property
    def snapshot(self) -> "ShardedReader | None":
        """The pinned default read context, or None."""
        return self._reader

    def pin(self) -> "ShardedReader":
        """Pin one **global cut** as the session's read context.

        The cut (one consistent point across every up shard -- see
        :meth:`ShardedDatabase.snapshot`) replaces the previous one, and
        its per-shard parts are adopted as the shard sessions' pins, so
        single-shard reads routed through ``_on_shard`` resolve against
        the same point as the fanned-out reader.  Down shards have no
        part; their reads fail fast."""
        if self.closed:
            raise SessionStateError(f"{self.name} is closed")
        self._retake_cut()
        if self._reader is None:
            self._reader = ShardedReader(self)
        return self._reader

    def _retake_cut(self) -> GlobalSnapshot:
        cut = self.router.snapshot()
        for idx, part in cut.parts.items():
            try:
                self.shard_session(idx).adopt_pin(part)
            except Exception:
                pass  # a shard racing kill_shard; its reads fail fast anyway
        old, self._cut = self._cut, cut
        if old is not None:
            old.close()
        return cut

    def _cut_stale(self, cut: GlobalSnapshot) -> bool:
        """One-integer-compare-per-shard staleness probe (no locks)."""
        router = self.router
        for idx in range(router.nshards):
            if router._shard_down[idx]:
                if cut.parts.get(idx) is not None:
                    # The cut predates the kill: its part reads a closed
                    # store.  Retake so the down shard drops out of the
                    # cut and its reads fail fast instead.
                    return True
                continue
            part = cut.parts.get(idx)
            if part is None or cut.gens.get(idx) != router._shard_gen[idx]:
                return True  # shard (re)joined since the cut
            if part.epoch < router.shards[idx].store.snapshots.epoch:
                return True  # publication advanced
        return False

    def current_cut(self) -> GlobalSnapshot:
        """The session's cut, retaken when any shard published since."""
        cut = self._cut
        if cut is not None and not self._cut_stale(cut):
            return cut
        return self._retake_cut()

    def unpin(self) -> None:
        """Drop the cut and every shard pin; reads see live state again."""
        cut, self._cut = self._cut, None
        if cut is not None:
            cut.close()
        for sess in self._shard_sessions.values():
            try:
                sess.unpin()
            except Exception:
                pass  # a shard that died while pinned has nothing to drop
        self._reader = None

    def reader(self) -> "ShardedReader":
        """The fanned-out snapshot reader (cut-level staleness handled by
        :meth:`current_cut`'s per-shard epoch probe)."""
        if self._reader is None:
            self._reader = ShardedReader(self)
        return self._reader

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Tear down: settle the global transaction, close shard sessions.

        An undecided global transaction aborts everywhere (presumed
        abort: nothing durable promised anything).  A *decided* one --
        verdict already journaled -- must NOT be aborted by teardown; its
        local transactions are detached instead, leaving completion to
        restart resolution, which is the only actor allowed to finish a
        decided transaction the client abandoned.
        """
        if self.closed:
            return
        self.closed = True
        if faults.is_crashed():
            # Simulated process death: the dead process touches nothing.
            return
        gtxn = self.txn
        if gtxn is not None and gtxn.state == ACTIVE:
            if gtxn.decided:
                for idx, txn in gtxn.locals.items():
                    sess = self._shard_sessions.get(idx)
                    if sess is not None and sess.txn is txn:
                        sess.txn = None
            else:
                try:
                    gtxn.abort()
                except Exception:
                    pass  # teardown must not raise
        self.txn = None
        cut, self._cut = self._cut, None
        if cut is not None:
            cut.close()
        for sess in self._shard_sessions.values():
            try:
                sess.close()
            except Exception:
                pass  # a session on a killed shard tears down best-effort
        self.router._forget_session(self)

    def __enter__(self) -> "RouterSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("txn" if self.txn else "idle")
        return f"RouterSession({self.name!r}, {state})"


class ShardedReader:
    """The router session's lock-free read surface (the wire inline lane).

    Every call delegates to the session's **global cut** (one consistent
    point across shards, see :class:`~repro.shard.snapshot.GlobalSnapshot`)
    via :meth:`RouterSession.current_cut`, which retakes the cut when any
    shard's publication epoch advanced -- so freshness stays one integer
    compare per shard, reads never take locks or the storage mutex, and a
    cross-shard commit can never appear half-visible to a fan-out.
    """

    def __init__(self, session: RouterSession) -> None:
        self._session = session
        self._router = session.router

    def _cut(self) -> GlobalSnapshot:
        return self._session.current_cut()

    @property
    def epoch(self) -> tuple[int, ...]:
        """Per-shard publication epochs of the cut (-1 for a down shard)."""
        return self._cut().epoch

    def latest_vid(self, oid: Oid) -> Vid:
        return self._cut().latest_vid(oid)

    def read_latest_attr(self, oid: Oid, name: str) -> Any:
        return self._cut().read_latest_attr(oid, name)

    def materialize(self, vid: Vid) -> Any:
        return self._cut().materialize(vid)

    def read_attr(self, vid: Vid, name: str) -> Any:
        return self._cut().read_attr(vid, name)

    def object_exists(self, oid: Oid) -> bool:
        return self._cut().object_exists(oid)

    def version_exists(self, vid: Vid) -> bool:
        return self._cut().version_exists(vid)

    def type_name(self, oid: Oid) -> str:
        return self._cut().type_name(oid)

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        return self._cut().cluster(type_or_name)

    def query(self, type_or_name: type | str) -> "_FanoutQuery":
        """A fanned-out query over the session's cut.

        Results stay bound to the cut's shard snapshots (not rebound to
        the router): the inline lane only ships oids, and snapshot-bound
        references keep predicate evaluation on the lock-free path.
        """
        return self._cut().query(type_or_name)


class _FanoutQuery:
    """One query surface over per-shard :class:`~repro.core.query.Query` parts.

    Supports the ``suchthat`` chaining and iteration the query layer and
    the wire server use; each predicate is pushed down to every part, so
    filtering runs where the data lives (and, under a pinned snapshot,
    lock-free).  Given an executor, iteration **materializes the parts
    in parallel** -- the scatter half of scatter-gather -- then yields
    in shard order, so result order matches the serial loop exactly.

    A live router fan-out additionally carries its ``origin`` -- the
    router, the router session the query was issued under, and the shard
    index behind each part -- so materialization runs *inside*
    :meth:`ShardedDatabase._on_shard` with the shard session activated.
    That keeps per-shard reads under the caller's transaction (strict
    2PL shared locks, like the embedded facade) or pin, instead of
    escaping to autocommit on a bare worker thread; the lock waits a
    part incurs behind writers then overlap across shards.  Cut-bound
    fan-outs (a :class:`~repro.shard.snapshot.GlobalSnapshot`) have no
    session and no locks to take, so they skip the wrapper.
    """

    def __init__(
        self,
        parts: list[Query],
        rebind: ShardedDatabase | None = None,
        executor: "ShardExecutor | None" = None,
        origin: "tuple[ShardedDatabase, RouterSession, list[int]] | None" = None,
        router: "ShardedDatabase | None" = None,
    ):
        self._parts = parts
        self._rebind = rebind
        self._executor = executor
        self._origin = origin
        # The router whose ``parallel_fanout`` toggle governs this
        # query's materialization (a cut-bound fan-out has no origin or
        # rebind, so its owner passes ``router`` explicitly).
        self._router = router or (origin[0] if origin else rebind)

    def suchthat(self, predicate: Callable[[Any], bool]) -> "_FanoutQuery":
        return _FanoutQuery(
            [part.suchthat(predicate) for part in self._parts],
            self._rebind,
            self._executor,
            self._origin,
            self._router,
        )

    def _materialize_part(self, pos: int) -> list[Any]:
        """List one part's matches, via ``_on_shard`` when this fan-out
        has a live origin (shard session activated on this thread)."""
        part = self._parts[pos]
        if self._origin is None:
            return list(part)
        router, sess, indices = self._origin
        return router._on_shard(indices[pos], lambda _db: list(part), sess=sess)

    def _materialized(self) -> list[list[Any]]:
        """Each part's matches, scattered across the executor when one
        is attached (and the caller is not itself a pool worker)."""
        exe = self._executor
        positions = range(len(self._parts))
        if (
            exe is None
            or len(self._parts) <= 1
            or exe.in_worker()
            or (self._router is not None and not self._router.parallel_fanout)
        ):
            return [self._materialize_part(pos) for pos in positions]
        outcomes = exe.run_all(list(positions), self._materialize_part)
        for _, err in outcomes:
            if err is not None:
                raise err
        return [result for result, _ in outcomes]

    def __iter__(self) -> Iterator[Ref]:
        for refs in self._materialized():
            for ref in refs:
                if self._rebind is not None:
                    yield Ref(self._rebind, ref.oid)
                else:
                    yield ref

    def count(self) -> int:
        return sum(1 for _ in self)
