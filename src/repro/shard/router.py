"""The shard router: one database surface over N shard databases.

A :class:`ShardedDatabase` partitions the oid space across ``nshards``
embedded :class:`~repro.core.database.Database` instances, each with its
own WAL, buffer pool, catalog and snapshot registry, living in
``path/shard-NN``.  Shard ``i`` allocates only oids congruent to ``i``
modulo ``nshards`` (the store's ``oid_stride``/``oid_residue``), so
:class:`~repro.shard.placement.ModuloPlacement` derives any oid's home
shard arithmetically.

The router exposes the same facade as a single database -- ``pnew``,
generic references, versions, clusters, queries, sessions, transactions,
the wire server -- and routes each operation to the owning shard:

* **Single-shard transactions ride the embedded fast path.**  A global
  transaction creates shard-local transactions lazily, one per shard it
  touches; a transaction that touched one shard commits with that
  shard's ordinary one-fsync commit -- no PREPARE, no decision record,
  no cross-shard coordination of any kind (asserted by the E14 bench's
  no-2PC-tax gate).
* **Cross-shard transactions run two-phase commit** -- see
  :mod:`repro.shard.coordinator` -- and restart resolution
  (:mod:`repro.shard.recovery`) finishes whatever a crash interrupted.
* **Generic-reference reads consult every shard holding versions** of
  the oid: ``latest_vid`` ranks the holders' latest versions by creation
  time, so even an oid whose versions somehow span shards (a restored
  backup, a manual migration) resolves to the globally newest version.
  Placement is a hint, not a correctness assumption -- a miss falls back
  to asking every shard (counted as ``shard.locate_fallbacks``).

Caveat worth knowing: per-shard deadlock detectors cannot see a wait
cycle that spans shards.  Cross-shard deadlocks fall to the per-shard
lock *timeout* backstop, so keep cross-shard transactions short and
acquire shards in a consistent order where possible.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.core.database import RETRYABLE_ERRORS, Database
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef
from repro.core.query import Query
from repro.core.session import Session
from repro.core.vgraph import VersionGraph
from repro.errors import (
    SessionStateError,
    ShardUnavailableError,
    TransactionStateError,
)
from repro.shard.coordinator import ACTIVE, GlobalTransaction
from repro.shard.placement import ModuloPlacement
from repro.shard.recovery import ResolutionReport, resolve_in_doubt
from repro.storage import faults

_META_FILE = "shards.meta"
_DEFAULT_NSHARDS = 4

#: Shard health states (see :meth:`ShardedDatabase.shard_health`).
SHARD_UP = "up"
SHARD_DEGRADED = "degraded"  # read-only after persistent I/O failure
SHARD_DOWN = "down"          # detached: every touch fails fast

_session_ids = itertools.count(1)


def _oid_of(target: Ref | VersionRef | Oid | Vid) -> Oid:
    if isinstance(target, (Ref, VersionRef)):
        return target.oid
    if isinstance(target, Vid):
        return target.oid
    return target


def _unbind(target: Ref | VersionRef | Oid | Vid) -> Oid | Vid:
    """Strip any binding so shard facades see plain ids."""
    if isinstance(target, Ref):
        return target.oid
    if isinstance(target, VersionRef):
        return target.vid
    return target


class ShardedDatabase:
    """N shard databases behind the single-database facade.

    Parameters
    ----------
    path:
        Directory for the shard directories and the ``shards.meta``
        layout record (created if missing).
    nshards:
        Number of shards.  Persisted on first open; reopening with a
        different explicit value is refused -- placement is arithmetic in
        ``nshards``, so changing it would scatter every existing oid's
        home.  ``None`` adopts the persisted value (or the default of
        {default} for a fresh directory).
    **db_kwargs:
        Forwarded to every shard's :class:`Database` (pool size, group
        commit window, lock timeout, ...).
    """.format(default=_DEFAULT_NSHARDS)

    def __init__(
        self,
        path: str | os.PathLike[str],
        nshards: int | None = None,
        **db_kwargs: Any,
    ) -> None:
        self._path = os.fspath(path)
        os.makedirs(self._path, exist_ok=True)
        meta_path = os.path.join(self._path, _META_FILE)
        if os.path.exists(meta_path):
            with open(meta_path, "r", encoding="utf-8") as fh:
                persisted = int(json.load(fh)["nshards"])
            if nshards is not None and nshards != persisted:
                raise ValueError(
                    f"database at {self._path!r} has {persisted} shards; "
                    f"refusing to open with nshards={nshards} (placement is "
                    "modulo nshards, so resharding would orphan every oid)"
                )
            nshards = persisted
        else:
            if nshards is None:
                nshards = _DEFAULT_NSHARDS
            if nshards < 1:
                raise ValueError("nshards must be >= 1")
            with open(meta_path, "w", encoding="utf-8") as fh:
                json.dump({"nshards": nshards}, fh)
        self.nshards = nshards
        self.placement = ModuloPlacement(nshards)
        self._db_kwargs = dict(db_kwargs)
        self.shards: list[Database] = [
            Database(
                os.path.join(self._path, f"shard-{i:02d}"),
                oid_stride=nshards,
                oid_residue=i,
                **db_kwargs,
            )
            for i in range(nshards)
        ]
        # Failure domains: each shard is independently up, degraded
        # (read-only) or down (detached).  ``_shard_gen`` counts
        # reattachments so cached shard sessions bound to a dead
        # Database object are recreated against the replacement.
        self._shard_down: list[bool] = [False] * nshards
        self._shard_gen: list[int] = [0] * nshards
        self._health_counters: dict[str, int] = {
            "kills": 0,
            "reattaches": 0,
            "failfast": 0,
            "skipped_fanouts": 0,
        }
        #: Protocol counters, surfaced as ``shard.2pc.*`` in :meth:`stats`.
        self._twopc_counters: dict[str, int] = {
            "commits_single": 0,
            "commits_cross": 0,
            "prepares": 0,
            "decisions": 0,
            "aborts": 0,
            "forgets": 0,
            "readonly_participants": 0,
            "resolved_commit": 0,
            "resolved_abort": 0,
            "locate_fallbacks": 0,
        }
        # Global transaction ids: a fresh 48-bit incarnation per open plus
        # an in-memory sequence, so gtxids never collide across restarts
        # (the sequence alone would -- it restarts from 1).
        self._incarnation = random.getrandbits(48)
        self._gtxid_seq = itertools.count(1)
        self._gtxn_ids = itertools.count(1)
        self._rr = itertools.count()
        self._tlocal = threading.local()
        self._sessions: set["RouterSession"] = set()
        self._session_mutex = threading.Lock()
        self._stats_sources: list[Callable[[], dict[str, Any]]] = []
        self._closed = False
        #: What restart resolution found and did at this open.
        self.last_resolution: ResolutionReport = resolve_in_doubt(self)
        self._twopc_counters["resolved_commit"] = len(self.last_resolution.committed)
        self._twopc_counters["resolved_abort"] = len(self.last_resolution.aborted)

    # -- lifecycle -----------------------------------------------------------

    @property
    def path(self) -> str:
        """The sharded database's root directory."""
        return self._path

    def checkpoint(self) -> None:
        """Checkpoint every *up* shard (quiescent only, like the embedded
        call); down shards are skipped."""
        for idx, db in enumerate(self.shards):
            if not self._shard_down[idx]:
                db.checkpoint()

    def close(self) -> None:
        """Close every session, then every shard.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        with self._session_mutex:
            sessions = list(self._sessions)
        for sess in sessions:
            sess.close()
        for idx, db in enumerate(self.shards):
            if not self._shard_down[idx]:
                db.close()

    # -- failure domains -----------------------------------------------------

    def shard_health(self) -> dict[int, str]:
        """Per-shard health: ``up``, ``degraded`` (read-only) or ``down``.

        Each shard is its own failure domain: a down shard fails its
        operations fast with :class:`ShardUnavailableError` while the
        healthy shards keep serving; a degraded shard (read-only after
        persistent I/O failure) still answers reads.
        """
        out: dict[int, str] = {}
        for idx, db in enumerate(self.shards):
            if self._shard_down[idx]:
                out[idx] = SHARD_DOWN
            elif db.degraded:
                out[idx] = SHARD_DEGRADED
            else:
                out[idx] = SHARD_UP
        return out

    def _up_shards(self) -> list[int]:
        return [i for i in range(self.nshards) if not self._shard_down[i]]

    def _check_up(self, idx: int) -> None:
        if self._shard_down[idx]:
            self._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {idx} is down; the operation targets its failure "
                "domain (retry after reattach_shard, or route elsewhere)",
                shard=idx,
            )

    def kill_shard(self, idx: int) -> None:
        """Abruptly take shard ``idx`` down -- the chaos harness's axe.

        No checkpoint, no flush: the shard's WAL keeps whatever it
        held, exactly like a machine losing power.  The shard is marked
        down *first* so routing fails fast before the files close under
        a concurrent operation.  Idempotent.
        """
        if self._shard_down[idx]:
            return
        self._shard_down[idx] = True
        self._health_counters["kills"] += 1
        db = self.shards[idx]
        # Abrupt stop: mark closed and drop the file handles without
        # flushing -- recovery at reattach must replay from the WAL.
        # Each handle closes *under its own I/O lock* so an operation
        # that passed _check_up before the flag flipped either finishes
        # its in-flight write first (bytes that beat the power cut) or
        # faults cleanly afterwards -- never mid-syscall on a handle
        # closed underneath it (which could tear state beyond the
        # intended power-loss shape).  _on_shard translates the
        # post-close faults to the retryable ShardUnavailableError.
        db._closed = True
        log = db._log
        with log._cond:
            while log._flushing:
                log._cond.wait()
            try:
                log._file.close()
            except Exception:
                pass
        disk = db._disk
        with disk._lock:
            try:
                disk._file.close()
            except Exception:
                pass

    def reattach_shard(self, idx: int) -> ResolutionReport:
        """Bring a down shard back online.

        Reopens the shard database (its own WAL recovery replays the
        abrupt shutdown), bumps the shard's generation so cached shard
        sessions bound to the dead instance are recreated, then runs
        in-doubt resolution: full (all shards, verdicts forgotten) when
        the whole fleet is back up, targeted at this shard (verdicts
        retained) while others remain down.  Returns the resolution
        report.
        """
        if not self._shard_down[idx]:
            raise ValueError(f"shard {idx} is not down")
        self.shards[idx] = Database(
            os.path.join(self._path, f"shard-{idx:02d}"),
            oid_stride=self.nshards,
            oid_residue=idx,
            **self._db_kwargs,
        )
        self._shard_gen[idx] += 1
        self._shard_down[idx] = False
        self._health_counters["reattaches"] += 1
        if all(not down for down in self._shard_down):
            report = resolve_in_doubt(self)
        else:
            report = resolve_in_doubt(self, only={idx})
        self._twopc_counters["resolved_commit"] += len(report.committed)
        self._twopc_counters["resolved_abort"] += len(report.aborted)
        return report

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sessions ------------------------------------------------------------

    def session(self, name: str | None = None) -> "RouterSession":
        """Create an explicit client session (the wire server's per-connection
        state).  Mirrors :meth:`Database.session`."""
        sess = RouterSession(self, name)
        with self._session_mutex:
            self._sessions.add(sess)
        return sess

    @property
    def session_count(self) -> int:
        with self._session_mutex:
            return len(self._sessions)

    def _forget_session(self, sess: "RouterSession") -> None:
        with self._session_mutex:
            self._sessions.discard(sess)

    def _swap_active_session(
        self, sess: "RouterSession | None"
    ) -> "RouterSession | None":
        prev = getattr(self._tlocal, "active_session", None)
        self._tlocal.active_session = sess
        return prev

    def _current_session(self, create: bool = True) -> "RouterSession | None":
        """The calling thread's router session: activated, else implicit."""
        sess = getattr(self._tlocal, "active_session", None)
        if sess is not None:
            return sess
        sess = getattr(self._tlocal, "implicit_session", None)
        if sess is None and create:
            sess = RouterSession(self, name=f"thread-{threading.get_ident()}")
            self._tlocal.implicit_session = sess
        return sess

    def add_stats_source(self, source: Callable[[], dict[str, Any]]) -> None:
        """Merge ``source()`` into :meth:`stats` (the wire server's ``net.*``)."""
        self._stats_sources.append(source)

    def remove_stats_source(self, source: Callable[[], dict[str, Any]]) -> None:
        try:
            self._stats_sources.remove(source)
        except ValueError:
            pass

    # -- routing -------------------------------------------------------------

    def _holders(self, oid: Oid) -> list[int]:
        """Every *up* shard currently holding live versions of ``oid``."""
        return [
            i
            for i, db in enumerate(self.shards)
            if not self._shard_down[i] and db.store.object_exists(oid)
        ]

    def _locate(self, oid: Oid) -> int:
        """The shard that owns ``oid``: placement hint, verified.

        A hint miss scans the other shards (``shard.locate_fallbacks``);
        an oid nobody holds routes to its home shard so the error surfaces
        there with the ordinary not-found message -- and so a snapshot
        reader can still see an object whose live state was just deleted.
        An oid whose home shard is down fails fast with
        :class:`ShardUnavailableError` -- its failure domain.
        """
        home = self.placement.shard_of(oid)
        self._check_up(home)
        if self.shards[home].store.object_exists(oid):
            return home
        for idx, db in enumerate(self.shards):
            if (
                idx != home
                and not self._shard_down[idx]
                and db.store.object_exists(oid)
            ):
                self._twopc_counters["locate_fallbacks"] += 1
                return idx
        return home

    def _on_shard(self, idx: int, fn: Callable[[Database], Any]) -> Any:
        """Run ``fn(shard)`` with the shard session activated.

        If the router session has an active global transaction, the shard
        joins it here: a local transaction is begun lazily on first touch
        (inheriting the global lock timeout and snapshot-read mode), so
        shards the transaction never touches pay nothing.

        An operation that passed the up-check but raced ``kill_shard``
        surfaces whatever low-level error the dying shard produced (a
        closed-file ValueError, a DiskError, ...); those are translated
        to the documented retryable :class:`ShardUnavailableError` here,
        so callers see the same failure shape as a fail-fast rejection.
        """
        self._check_up(idx)
        sess = self._current_session()
        gtxn = sess.txn
        if gtxn is not None and gtxn.state != ACTIVE:
            sess.txn = None
            gtxn = None
        shard_sess = sess.shard_session(idx)
        if (
            gtxn is not None
            and idx in gtxn.locals
            and gtxn.local_gens.get(idx) != self._shard_gen[idx]
        ):
            # The shard died and was reattached while this transaction
            # held a local half there: recovery rolled that half back,
            # and the stale local was aborted with its old session.
            # Running the op anyway would escape the transaction
            # entirely (an autocommit write on the replacement shard).
            self._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {idx} failed while this transaction was using "
                "it; its shard-local work was rolled back by recovery "
                "(retry the whole transaction)",
                shard=idx,
            )
        try:
            with shard_sess.activate():
                if gtxn is not None and idx not in gtxn.locals:
                    gtxn.locals[idx] = self.shards[idx].begin(
                        lock_timeout=gtxn.lock_timeout,
                        snapshot_reads=gtxn.read_only,
                    )
                    gtxn.local_gens[idx] = self._shard_gen[idx]
                return fn(self.shards[idx])
        except ShardUnavailableError:
            raise
        except Exception as exc:
            if not self._shard_down[idx]:
                raise
            self._health_counters["failfast"] += 1
            raise ShardUnavailableError(
                f"shard {idx} went down mid-operation (retry after "
                "reattach_shard, or route elsewhere)",
                shard=idx,
            ) from exc

    # -- transactions --------------------------------------------------------

    def begin(
        self,
        *,
        lock_timeout: float | None = None,
        snapshot_reads: bool = False,
    ) -> GlobalTransaction:
        """Start a global transaction on the calling session.

        Shard-local transactions are created lazily as shards are
        touched; commit runs the single-shard fast path or cross-shard
        2PC depending on how many shards that turned out to be.
        """
        sess = self._current_session()
        if self.current_transaction() is not None:
            raise TransactionStateError(
                "a transaction is already active on this session"
            )
        gtxn = GlobalTransaction(
            self, sess, next(self._gtxn_ids), read_only=snapshot_reads
        )
        gtxn.lock_timeout = lock_timeout
        sess.txn = gtxn
        return gtxn

    def current_transaction(self) -> GlobalTransaction | None:
        """The calling session's active global transaction, if any."""
        sess = self._current_session(create=False)
        if sess is None:
            return None
        gtxn = sess.txn
        if gtxn is not None and gtxn.state != ACTIVE:
            sess.txn = None
            return None
        return gtxn

    @contextmanager
    def transaction(
        self,
        lock_timeout: float | None = None,
        snapshot_reads: bool = False,
    ) -> Iterator[GlobalTransaction]:
        """``with router.transaction():`` -- commit on exit, abort on error."""
        gtxn = self.begin(lock_timeout=lock_timeout, snapshot_reads=snapshot_reads)
        try:
            yield gtxn
        except BaseException:
            # A decided transaction may no longer abort (restart recovery
            # completes it), and a simulated-dead process touches nothing.
            if (
                gtxn.state == ACTIVE
                and not gtxn.decided
                and not faults.is_crashed()
            ):
                gtxn.abort()
            raise
        else:
            if gtxn.state == ACTIVE:
                try:
                    gtxn.commit()
                except BaseException:
                    # An undecided commit failure (e.g. its shard died
                    # under it) must not leave the transaction attached
                    # to the session -- that would wedge every later
                    # begin() with "already active".  Abort detaches it;
                    # a *decided* transaction stays (restart resolution
                    # completes it, and abort is forbidden).
                    if (
                        gtxn.state == ACTIVE
                        and not gtxn.decided
                        and not faults.is_crashed()
                    ):
                        try:
                            gtxn.abort()
                        except Exception:
                            pass  # the commit error is the one to surface
                    raise

    def run_transaction(
        self,
        fn: Callable[[], Any],
        *,
        max_attempts: int = 5,
        backoff: float = 0.01,
        max_backoff: float = 0.5,
        lock_timeout: float | None = None,
        retry_on: tuple[type[BaseException], ...] = RETRYABLE_ERRORS,
    ) -> Any:
        """Run ``fn`` in a global transaction, retrying transient conflicts.

        Same contract as :meth:`Database.run_transaction` (exponential
        backoff with full jitter, join an ambient transaction, re-execute
        from scratch on a retryable conflict).  Cross-shard deadlocks
        surface as per-shard lock timeouts, which are retryable here.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.current_transaction() is not None:
            return fn()
        attempt = 0
        while True:
            attempt += 1
            try:
                with self.transaction(lock_timeout=lock_timeout):
                    return fn()
            except retry_on:
                if attempt >= max_attempts:
                    raise
                pause = random.uniform(
                    0.0, min(max_backoff, backoff * (2 ** (attempt - 1)))
                )
                if pause > 0:
                    time.sleep(pause)

    def _next_gtxid(self) -> tuple:
        return (self._incarnation, next(self._gtxid_seq))

    def _finish_global(self, gtxn: GlobalTransaction) -> None:
        """Detach a finished global transaction from its session (idempotent)."""
        sess = gtxn.session
        if sess.txn is gtxn:
            sess.txn = None

    # -- kernel operations ----------------------------------------------------

    def pnew(self, obj: Any) -> Ref:
        """Create a persistent object on the next *up* shard (round-robin).

        Placement is a free choice here (no oid exists yet), so creation
        stays available while any shard is up -- down shards are simply
        skipped in the rotation.
        """
        idx = next(self._rr) % self.nshards
        for _ in range(self.nshards - 1):
            if not self._shard_down[idx]:
                break
            idx = next(self._rr) % self.nshards
        ref = self._on_shard(idx, lambda db: db.pnew(obj))
        return Ref(self, ref.oid)

    def newversion(self, target: Ref | VersionRef | Oid | Vid) -> VersionRef:
        """Create a derived version on the shard holding the target."""
        oid = _oid_of(target)
        vref = self._on_shard(
            self._locate(oid), lambda db: db.newversion(_unbind(target))
        )
        return VersionRef(self, vref.vid)

    def pdelete(self, target: Ref | VersionRef | Oid | Vid) -> None:
        """Delete an object (or one version) on its shard."""
        oid = _oid_of(target)
        self._on_shard(
            self._locate(oid), lambda db: db.pdelete(_unbind(target))
        )

    def deref(self, ident: Oid | Vid) -> Ref | VersionRef:
        """Bind an id to a router-bound reference."""
        if isinstance(ident, Oid):
            return Ref(self, ident)
        if isinstance(ident, Vid):
            return VersionRef(self, ident)
        raise TypeError(f"expected Oid or Vid, got {type(ident).__qualname__}")

    # -- store protocol (Ref/VersionRef bound to the router) -------------------

    def materialize(self, vid: Vid) -> Any:
        return self._on_shard(self._locate(vid.oid), lambda db: db.materialize(vid))

    def read_attr(self, vid: Vid, name: str) -> Any:
        return self._on_shard(
            self._locate(vid.oid), lambda db: db.read_attr(vid, name)
        )

    def latest_vid(self, oid: Oid) -> Vid:
        """The globally latest version of ``oid``.

        Consults every shard holding versions of the oid (normally
        exactly one, thanks to strided allocation) and ranks the
        candidates by version creation time, newest wins -- ties break
        toward the higher serial, matching the single-shard temporal
        order.
        """
        holders = self._holders(oid)
        if len(holders) <= 1:
            idx = holders[0] if holders else self.placement.shard_of(oid)
            return self._on_shard(idx, lambda db: db.latest_vid(oid))
        # (down shards never appear in holders; _on_shard fails fast.)
        best_key: tuple | None = None
        best_vid: Vid | None = None

        def probe(db: "Database") -> tuple[Vid, float]:
            # One callback resolves both the vid and its ctime so the
            # graph lookup runs in the same shard-session context (same
            # SHARED lock / local-transaction view) as the latest_vid
            # call it ranks.
            vid = db.latest_vid(oid)
            return vid, db.graph(oid).node(vid.serial).ctime

        for idx in holders:
            vid, ctime = self._on_shard(idx, probe)
            key = (ctime, vid.serial)
            if best_key is None or key > best_key:
                best_key, best_vid = key, vid
        assert best_vid is not None
        return best_vid

    def write_version(self, vid: Vid, obj: Any) -> None:
        self._on_shard(
            self._locate(vid.oid), lambda db: db.write_version(vid, obj)
        )

    def write_version_if_changed(self, vid: Vid, obj: Any) -> bool:
        return self._on_shard(
            self._locate(vid.oid),
            lambda db: db.write_version_if_changed(vid, obj),
        )

    def object_exists(self, oid: Oid) -> bool:
        return self._on_shard(self._locate(oid), lambda db: db.object_exists(oid))

    def version_exists(self, vid: Vid) -> bool:
        return self._on_shard(
            self._locate(vid.oid), lambda db: db.version_exists(vid)
        )

    def type_name(self, oid: Oid) -> str:
        return self._on_shard(self._locate(oid), lambda db: db.type_name(oid))

    # -- traversal ------------------------------------------------------------

    def _rebind_vref(self, vref: VersionRef | None) -> VersionRef | None:
        return None if vref is None else VersionRef(self, vref.vid)

    def dprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        vid = _unbind(vref)
        return self._rebind_vref(
            self._on_shard(self._locate(vid.oid), lambda db: db.dprevious(vid))
        )

    def dnext(self, vref: VersionRef | Vid) -> list[VersionRef]:
        vid = _unbind(vref)
        out = self._on_shard(self._locate(vid.oid), lambda db: db.dnext(vid))
        return [VersionRef(self, v.vid) for v in out]

    def tprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        vid = _unbind(vref)
        return self._rebind_vref(
            self._on_shard(self._locate(vid.oid), lambda db: db.tprevious(vid))
        )

    def tnext(self, vref: VersionRef | Vid) -> VersionRef | None:
        vid = _unbind(vref)
        return self._rebind_vref(
            self._on_shard(self._locate(vid.oid), lambda db: db.tnext(vid))
        )

    def history(self, vref: VersionRef | Vid) -> list[VersionRef]:
        vid = _unbind(vref)
        out = self._on_shard(self._locate(vid.oid), lambda db: db.history(vid))
        return [VersionRef(self, v.vid) for v in out]

    def versions(self, target: Ref | Oid) -> list[VersionRef]:
        oid = _oid_of(target)
        out = self._on_shard(self._locate(oid), lambda db: db.versions(oid))
        return [VersionRef(self, v.vid) for v in out]

    def version_as_of(self, target: Ref | Oid, timestamp: float) -> VersionRef | None:
        oid = _oid_of(target)
        return self._rebind_vref(
            self._on_shard(
                self._locate(oid), lambda db: db.version_as_of(oid, timestamp)
            )
        )

    def leaves(self, target: Ref | Oid) -> list[VersionRef]:
        oid = _oid_of(target)
        out = self._on_shard(self._locate(oid), lambda db: db.leaves(oid))
        return [VersionRef(self, v.vid) for v in out]

    def alternatives(self, target: Ref | Oid) -> list[list[VersionRef]]:
        oid = _oid_of(target)
        out = self._on_shard(self._locate(oid), lambda db: db.alternatives(oid))
        return [[VersionRef(self, v.vid) for v in path] for path in out]

    def version_count(self, target: Ref | Oid) -> int:
        oid = _oid_of(target)
        return self._on_shard(self._locate(oid), lambda db: db.version_count(oid))

    def graph(self, target: Ref | Oid) -> VersionGraph:
        oid = _oid_of(target)
        return self._on_shard(self._locate(oid), lambda db: db.graph(oid))

    # -- clusters & queries ----------------------------------------------------

    def _fanout_shards(self) -> list[int]:
        """The shards a fan-out consults: the up ones.

        Degraded-mode semantics, documented: while any shard is down,
        fan-outs (clusters, queries, counts) return *partial* results
        over the healthy shards rather than failing the whole surface --
        each skip is counted in ``shard.health.skipped_fanouts``.
        """
        up = self._up_shards()
        skipped = self.nshards - len(up)
        if skipped:
            self._health_counters["skipped_fanouts"] += skipped
        return up

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        """The type's cluster, fanned out across every up shard."""
        out: list[Ref] = []
        for idx in self._fanout_shards():
            refs = self._on_shard(idx, lambda db: db.cluster(type_or_name))
            out.extend(Ref(self, ref.oid) for ref in refs)
        return out

    def cluster_names(self) -> list[str]:
        names: set[str] = set()
        for idx in self._fanout_shards():
            names.update(self._on_shard(idx, lambda db: db.cluster_names()))
        return sorted(names)

    def object_count(self) -> int:
        return sum(
            self._on_shard(idx, lambda db: db.object_count())
            for idx in self._fanout_shards()
        )

    def query(self, type_or_name: type | str) -> "_FanoutQuery":
        """A ``suchthat`` query fanned out across every up shard's cluster.

        Each shard contributes its own :class:`~repro.core.query.Query`
        (bound to the local transaction's snapshot under a snapshot-read
        transaction); results are rebound to the router.
        """
        parts = [
            self._on_shard(idx, lambda db: db.query(type_or_name))
            for idx in self._fanout_shards()
        ]
        return _FanoutQuery(parts, rebind=self)

    # -- stats ----------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Aggregated counters: shard-summed kernel stats plus ``shard.*``.

        Numeric keys from each shard's :meth:`Database.stats` are summed
        (``wal.flushes`` is the fleet total, and so on); the router adds
        ``shard.count``, ``shard.locate_fallbacks`` and the 2PC protocol
        counters under ``shard.2pc.*``.
        """
        stats: dict[str, Any] = {"shard.count": self.nshards}
        for key, value in self._twopc_counters.items():
            if key == "locate_fallbacks":
                stats["shard.locate_fallbacks"] = value
            else:
                stats[f"shard.2pc.{key}"] = value
        health = self.shard_health()
        stats["shard.health.up"] = sum(
            1 for state in health.values() if state == SHARD_UP
        )
        stats["shard.health.degraded"] = sum(
            1 for state in health.values() if state == SHARD_DEGRADED
        )
        stats["shard.health.down"] = sum(
            1 for state in health.values() if state == SHARD_DOWN
        )
        for key, value in self._health_counters.items():
            stats[f"shard.health.{key}"] = value
        agg: dict[str, Any] = {}
        for idx in self._up_shards():
            for key, value in self.shards[idx].stats().items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                agg[key] = agg.get(key, 0) + value
        stats.update(agg)
        stats["degraded"] = any(
            self.shards[idx].degraded for idx in self._up_shards()
        )
        stats["sessions.open"] = self.session_count
        for source in list(self._stats_sources):
            stats.update(source())
        return stats

    def __repr__(self) -> str:
        return f"ShardedDatabase({self._path!r}, nshards={self.nshards})"


class RouterSession:
    """One client's state against the router: global txn, pins, context.

    Mirrors :class:`~repro.core.session.Session` (the wire server drives
    both through the same calls) and owns one shard-local session per
    shard, created lazily.  The global transaction lives here; its
    shard-local transactions live in the shard sessions.
    """

    def __init__(self, router: ShardedDatabase, name: str | None = None) -> None:
        self.id = next(_session_ids)
        self.name = name or f"router-session-{self.id}"
        self.router = router
        #: The session's open global transaction, or None.
        self.txn: GlobalTransaction | None = None
        self.context: dict[str, Any] = {}
        self.closed = False
        self._shard_sessions: dict[int, Session] = {}
        self._shard_gens: dict[int, int] = {}
        self._reader: "ShardedReader | None" = None
        self._mutex = threading.Lock()
        self._active_thread: int | None = None

    def shard_session(self, idx: int) -> Session:
        """The lazily-created local session on shard ``idx``.

        Generation-checked: a cached session bound to a shard instance
        that has since been killed and reattached is discarded and
        recreated against the replacement database -- otherwise every
        session from before the failure would keep talking to the dead
        object forever.
        """
        gen = self.router._shard_gen[idx]
        sess = self._shard_sessions.get(idx)
        if sess is not None and self._shard_gens.get(idx) != gen:
            try:
                sess.close()
            except Exception:
                pass  # bound to the dead instance; nothing to save
            sess = None
        if sess is None:
            # Constructed directly (not via Database.session) so shard
            # databases do not track router-owned sessions; the router
            # session closes them itself.
            sess = Session(self.router.shards[idx], name=f"{self.name}@shard{idx}")
            self._shard_sessions[idx] = sess
            self._shard_gens[idx] = gen
        return sess

    # -- activation -----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["RouterSession"]:
        """Bind the session to the calling thread for one request.

        Same contract as the local session: re-entrant on one thread,
        refused across two threads at once.
        """
        if self.closed:
            raise SessionStateError(f"{self.name} is closed")
        me = threading.get_ident()
        with self._mutex:
            if self._active_thread is not None and self._active_thread != me:
                raise SessionStateError(
                    f"{self.name} is already active on another thread"
                )
            nested = self._active_thread == me
            self._active_thread = me
        prev = self.router._swap_active_session(self)
        try:
            yield self
        finally:
            self.router._swap_active_session(prev)
            if not nested:
                with self._mutex:
                    self._active_thread = None

    # -- the snapshot read context ---------------------------------------------

    @property
    def snapshot(self) -> "ShardedReader | None":
        """The pinned default read context, or None."""
        return self._reader

    def pin(self) -> "ShardedReader":
        """Pin every up shard session's snapshot; return the fanned-out
        reader.  Down shards are skipped (their reads fail fast anyway);
        a later reattach pins lazily via the generation check."""
        if self.closed:
            raise SessionStateError(f"{self.name} is closed")
        for idx in self.router._up_shards():
            self.shard_session(idx).pin()
        if self._reader is None:
            self._reader = ShardedReader(self)
        return self._reader

    def unpin(self) -> None:
        """Drop every shard pin; reads see live state again."""
        for sess in self._shard_sessions.values():
            try:
                sess.unpin()
            except Exception:
                pass  # a shard that died while pinned has nothing to drop
        self._reader = None

    def reader(self) -> "ShardedReader":
        """The fanned-out snapshot reader (per-shard staleness handled by
        each shard session's own ``reader()`` re-pin probe)."""
        if self._reader is None:
            self._reader = ShardedReader(self)
        return self._reader

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Tear down: settle the global transaction, close shard sessions.

        An undecided global transaction aborts everywhere (presumed
        abort: nothing durable promised anything).  A *decided* one --
        verdict already journaled -- must NOT be aborted by teardown; its
        local transactions are detached instead, leaving completion to
        restart resolution, which is the only actor allowed to finish a
        decided transaction the client abandoned.
        """
        if self.closed:
            return
        self.closed = True
        if faults.is_crashed():
            # Simulated process death: the dead process touches nothing.
            return
        gtxn = self.txn
        if gtxn is not None and gtxn.state == ACTIVE:
            if gtxn.decided:
                for idx, txn in gtxn.locals.items():
                    sess = self._shard_sessions.get(idx)
                    if sess is not None and sess.txn is txn:
                        sess.txn = None
            else:
                try:
                    gtxn.abort()
                except Exception:
                    pass  # teardown must not raise
        self.txn = None
        for sess in self._shard_sessions.values():
            try:
                sess.close()
            except Exception:
                pass  # a session on a killed shard tears down best-effort
        self.router._forget_session(self)

    def __enter__(self) -> "RouterSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("txn" if self.txn else "idle")
        return f"RouterSession({self.name!r}, {state})"


class ShardedReader:
    """The router session's lock-free read surface (the wire inline lane).

    Every call delegates to the owning shard session's pinned snapshot
    via :meth:`Session.reader`, which re-pins that shard when its
    publication epoch advanced -- so freshness stays a per-shard integer
    compare and reads never take locks or the storage mutex.
    """

    def __init__(self, session: RouterSession) -> None:
        self._session = session
        self._router = session.router

    def _shard(self, idx: int):
        return self._session.shard_session(idx).reader()

    @property
    def epoch(self) -> tuple[int, ...]:
        """Per-shard publication epochs (-1 for a down shard)."""
        return tuple(
            -1 if self._router._shard_down[idx] else self._shard(idx).epoch
            for idx in range(self._router.nshards)
        )

    def _locate(self, oid: Oid) -> int:
        home = self._router.placement.shard_of(oid)
        self._router._check_up(home)
        if self._shard(home).object_exists(oid):
            return home
        for idx in self._router._up_shards():
            if idx != home and self._shard(idx).object_exists(oid):
                self._router._twopc_counters["locate_fallbacks"] += 1
                return idx
        return home

    def latest_vid(self, oid: Oid) -> Vid:
        holders = [
            idx
            for idx in self._router._up_shards()
            if self._shard(idx).object_exists(oid)
        ]
        if len(holders) <= 1:
            idx = holders[0] if holders else self._router.placement.shard_of(oid)
            self._router._check_up(idx)
            return self._shard(idx).latest_vid(oid)
        best_key: tuple | None = None
        best_vid: Vid | None = None
        for idx in holders:
            snap = self._shard(idx)
            vid = snap.latest_vid(oid)
            node = snap.graph(oid).node(vid.serial)
            key = (node.ctime, vid.serial)
            if best_key is None or key > best_key:
                best_key, best_vid = key, vid
        assert best_vid is not None
        return best_vid

    def read_latest_attr(self, oid: Oid, name: str) -> Any:
        return self._shard(self._locate(oid)).read_latest_attr(oid, name)

    def materialize(self, vid: Vid) -> Any:
        return self._shard(self._locate(vid.oid)).materialize(vid)

    def read_attr(self, vid: Vid, name: str) -> Any:
        return self._shard(self._locate(vid.oid)).read_attr(vid, name)

    def object_exists(self, oid: Oid) -> bool:
        return self._shard(self._locate(oid)).object_exists(oid)

    def version_exists(self, vid: Vid) -> bool:
        return self._shard(self._locate(vid.oid)).version_exists(vid)

    def type_name(self, oid: Oid) -> str:
        return self._shard(self._locate(oid)).type_name(oid)

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        out: list[Ref] = []
        for idx in self._router._up_shards():
            out.extend(self._shard(idx).cluster(type_or_name))
        return out

    def query(self, type_or_name: type | str) -> "_FanoutQuery":
        """A fanned-out query over each up shard's pinned snapshot.

        Results stay bound to their shard snapshots (not rebound to the
        router): the inline lane only ships oids, and snapshot-bound
        references keep predicate evaluation on the lock-free path.
        """
        return _FanoutQuery(
            [
                self._shard(idx).query(type_or_name)
                for idx in self._router._up_shards()
            ]
        )


class _FanoutQuery:
    """One query surface over per-shard :class:`~repro.core.query.Query` parts.

    Supports the ``suchthat`` chaining and iteration the query layer and
    the wire server use; each predicate is pushed down to every part, so
    filtering runs where the data lives (and, under a pinned snapshot,
    lock-free).
    """

    def __init__(self, parts: list[Query], rebind: ShardedDatabase | None = None):
        self._parts = parts
        self._rebind = rebind

    def suchthat(self, predicate: Callable[[Any], bool]) -> "_FanoutQuery":
        return _FanoutQuery(
            [part.suchthat(predicate) for part in self._parts], self._rebind
        )

    def __iter__(self) -> Iterator[Ref]:
        for part in self._parts:
            for ref in part:
                if self._rebind is not None:
                    yield Ref(self._rebind, ref.oid)
                else:
                    yield ref

    def count(self) -> int:
        return sum(1 for _ in self)
