"""Vacuum: rewrite a database into a fresh, compact directory.

Long-lived databases accumulate dead space: emptied pages after version
deletions, forwarding stubs from grown records, delta chains whose bases
were edited many times.  ``vacuum`` performs a *logical copy* -- every
live object's versions are replayed into a brand-new database in
derivation order, preserving Oids, Vids, derivation and temporal
structure exactly -- and reports the space saved.

The copy preserves identity by writing the object table directly through
the target store's internals (ids must survive a vacuum or every stored
reference would dangle).  The source database is never modified; callers
swap directories after a successful run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

from repro.core.database import Database
from repro.core.identity import Vid
from repro.core.store import StoragePolicy
from repro.core.vgraph import VersionGraph
from repro.storage.disk import PAGE_SIZE


@dataclass
class VacuumReport:
    """What a vacuum run did."""

    objects_copied: int
    versions_copied: int
    source_pages: int
    target_pages: int
    #: Content bytes in each side's blob store.  Version payloads live
    #: there (content-addressed), so this is where dead versions' space
    #: actually goes; the heap pages only hold fixed-size references.
    source_blob_bytes: int = 0
    target_blob_bytes: int = 0

    @property
    def pages_saved(self) -> int:
        """Pages reclaimed by the rewrite (can be negative in theory)."""
        return self.source_pages - self.target_pages

    @property
    def bytes_saved(self) -> int:
        """Total footprint reclaimed: page bytes plus blob bytes."""
        return (
            self.pages_saved * PAGE_SIZE
            + self.source_blob_bytes
            - self.target_blob_bytes
        )


def vacuum(
    source: Database,
    target_path: str | os.PathLike[str],
    policy: StoragePolicy | None = None,
) -> VacuumReport:
    """Rewrite ``source`` into a new database directory at ``target_path``.

    ``policy`` optionally changes the storage policy during the rewrite
    (e.g. full-copy -> delta), which is also how a database is migrated
    between policies.  Returns a :class:`VacuumReport`.
    """
    source_store = source.store
    target = Database(target_path, policy=policy or source_store.policy)
    try:
        tstore = target.store
        objects = 0
        versions = 0
        for ref in source_store.all_objects():
            objects += 1
            oid = ref.oid
            graph = source_store.graph(oid)
            type_name = source_store.type_name(oid)
            # Rebuild the graph with freshly stored payloads, derivation
            # order (parents before children holds in serial order).
            from repro.core.store import _Entry
            from repro.storage import serialization

            if tstore.object_exists(oid):
                # Re-running into a non-empty target: the chain is about
                # to be rewritten wholesale, so the old records -- and
                # every cache entry derived from them (materialized bytes,
                # decoded objects, the latest-vid memo) -- must go first.
                # _delete_object invalidates all of them.
                tstore._delete_object(oid, None)
            new_graph = VersionGraph()
            entry = _Entry(oid, type_name, new_graph, None, None)
            for node in graph.walk_temporal():
                content = source_store._version_bytes(
                    source_store._entry(oid), node.serial
                )
                data = tstore._store_payload(
                    entry, node.serial, content, node.dprev, None
                )
                # create() enforces monotonic serials; walk_temporal yields
                # them ascending, and dprev < serial always, so this holds.
                new_graph.create(node.serial, node.dprev, node.ctime, data)
                tstore._cache_bytes(Vid(oid, node.serial), content)
                versions += 1
            tstore._save_entry(entry, None)
            cluster_payload = serialization.encode((type_name, oid))
            entry.cluster_rid = tstore._clusters.insert(cluster_payload, None)
            tstore._table[oid] = entry
            tstore._by_type.setdefault(type_name, set()).add(oid)
            tstore._dirty_oids.add(oid)
        # Carry the id counter forward so future pnew calls don't collide.
        current = source.catalog.peek_value("ode.oid")
        while target.catalog.peek_value("ode.oid") < current:
            target.catalog.next_value("ode.oid")
        # The copies bypassed the transaction layer, so publish them here:
        # snapshots pinned against the target must see the rewritten chains.
        tstore.publish_snapshot()
        target.checkpoint()
        report = VacuumReport(
            objects_copied=objects,
            versions_copied=versions,
            source_pages=source.stats()["data_pages"],
            target_pages=target.stats()["data_pages"],
            source_blob_bytes=source_store.blobs.total_bytes(),
            target_blob_bytes=tstore.blobs.total_bytes(),
        )
    finally:
        target.close()
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: offline rewrite, online GC, or both.

    ``python -m repro.tools.vacuum SRC DST`` rewrites ``SRC`` into
    ``DST``.  ``--gc`` first runs the online collector (retention
    pruning + blob reclaim) against the source; ``--gc-only`` runs just
    the collector, in place, with no target directory at all -- the
    incremental path for databases too large (or too hot) to rewrite.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.vacuum",
        description="Rewrite a database compactly and/or run the online GC.",
    )
    parser.add_argument("source", help="database directory to vacuum")
    parser.add_argument(
        "target", nargs="?", default=None,
        help="fresh directory for the rewrite (omit with --gc-only)",
    )
    parser.add_argument(
        "--gc", action="store_true",
        help="run the online collector on the source before copying",
    )
    parser.add_argument(
        "--gc-only", action="store_true",
        help="only run the online collector; no rewrite, no target",
    )
    parser.add_argument(
        "--batch", type=int, default=64, metavar="N",
        help="GC batch limit: versions deleted / blobs unlinked per "
        "transaction (default 64)",
    )
    parser.add_argument(
        "--gc-passes", type=int, default=2, metavar="N",
        help="collector passes (a displacement becomes reclaimable one "
        "publication after it happens, so 2 passes drain a quiet "
        "database; default 2)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="plan the GC without deleting anything (implies --gc-only)",
    )
    parser.add_argument(
        "--policy", choices=("full", "delta"), default=None,
        help="migrate the rewrite to this storage policy",
    )
    parser.add_argument(
        "--keyframe", type=int, default=8, metavar="N",
        help="keyframe interval for --policy delta (default 8)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)
    gc_requested = args.gc or args.gc_only or args.dry_run
    if not (args.gc_only or args.dry_run) and args.target is None:
        parser.error("a target directory is required unless --gc-only/--dry-run")
    out: dict[str, object] = {"source": args.source}
    with Database(args.source) as db:
        if gc_requested:
            gc_total: dict[str, int] = {}
            for _ in range(max(1, args.gc_passes)):
                report = db.run_gc(
                    batch_limit=args.batch, dry_run=args.dry_run
                )
                for key in (
                    "versions_deleted", "blobs_unlinked", "bytes_freed",
                    "batches",
                ):
                    gc_total[key] = gc_total.get(key, 0) + getattr(report, key)
                gc_total["candidates_remaining"] = report.candidates_remaining
                if not args.json:
                    print(report.render())
                if args.dry_run:
                    break
            out["gc"] = gc_total
        if args.target is not None and not (args.gc_only or args.dry_run):
            policy = None
            if args.policy is not None:
                policy = StoragePolicy(
                    kind=args.policy, keyframe_interval=args.keyframe
                )
            report = vacuum(db, args.target, policy=policy)
            out["target"] = args.target
            out["vacuum"] = {
                "objects_copied": report.objects_copied,
                "versions_copied": report.versions_copied,
                "pages_saved": report.pages_saved,
                "source_blob_bytes": report.source_blob_bytes,
                "target_blob_bytes": report.target_blob_bytes,
                "bytes_saved": report.bytes_saved,
            }
            if not args.json:
                print(
                    f"vacuum: copied {report.objects_copied} object(s) / "
                    f"{report.versions_copied} version(s) into "
                    f"{args.target}; saved {report.bytes_saved} byte(s) "
                    f"({report.pages_saved} page(s), blob bytes "
                    f"{report.source_blob_bytes} -> {report.target_blob_bytes})"
                )
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
