"""Vacuum: rewrite a database into a fresh, compact directory.

Long-lived databases accumulate dead space: emptied pages after version
deletions, forwarding stubs from grown records, delta chains whose bases
were edited many times.  ``vacuum`` performs a *logical copy* -- every
live object's versions are replayed into a brand-new database in
derivation order, preserving Oids, Vids, derivation and temporal
structure exactly -- and reports the space saved.

The copy preserves identity by writing the object table directly through
the target store's internals (ids must survive a vacuum or every stored
reference would dangle).  The source database is never modified; callers
swap directories after a successful run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.database import Database
from repro.core.identity import Vid
from repro.core.store import StoragePolicy
from repro.core.vgraph import VersionGraph


@dataclass
class VacuumReport:
    """What a vacuum run did."""

    objects_copied: int
    versions_copied: int
    source_pages: int
    target_pages: int

    @property
    def pages_saved(self) -> int:
        """Pages reclaimed by the rewrite (can be negative in theory)."""
        return self.source_pages - self.target_pages


def vacuum(
    source: Database,
    target_path: str | os.PathLike[str],
    policy: StoragePolicy | None = None,
) -> VacuumReport:
    """Rewrite ``source`` into a new database directory at ``target_path``.

    ``policy`` optionally changes the storage policy during the rewrite
    (e.g. full-copy -> delta), which is also how a database is migrated
    between policies.  Returns a :class:`VacuumReport`.
    """
    source_store = source.store
    target = Database(target_path, policy=policy or source_store.policy)
    try:
        tstore = target.store
        objects = 0
        versions = 0
        for ref in source_store.all_objects():
            objects += 1
            oid = ref.oid
            graph = source_store.graph(oid)
            type_name = source_store.type_name(oid)
            # Rebuild the graph with freshly stored payloads, derivation
            # order (parents before children holds in serial order).
            from repro.core.store import _Entry
            from repro.storage import serialization

            if tstore.object_exists(oid):
                # Re-running into a non-empty target: the chain is about
                # to be rewritten wholesale, so the old records -- and
                # every cache entry derived from them (materialized bytes,
                # decoded objects, the latest-vid memo) -- must go first.
                # _delete_object invalidates all of them.
                tstore._delete_object(oid, None)
            new_graph = VersionGraph()
            entry = _Entry(oid, type_name, new_graph, None, None)
            for node in graph.walk_temporal():
                content = source_store._version_bytes(
                    source_store._entry(oid), node.serial
                )
                data = tstore._store_payload(
                    entry, node.serial, content, node.dprev, None
                )
                # create() enforces monotonic serials; walk_temporal yields
                # them ascending, and dprev < serial always, so this holds.
                new_graph.create(node.serial, node.dprev, node.ctime, data)
                tstore._cache_bytes(Vid(oid, node.serial), content)
                versions += 1
            tstore._save_entry(entry, None)
            cluster_payload = serialization.encode((type_name, oid))
            entry.cluster_rid = tstore._clusters.insert(cluster_payload, None)
            tstore._table[oid] = entry
            tstore._by_type.setdefault(type_name, set()).add(oid)
            tstore._dirty_oids.add(oid)
        # Carry the id counter forward so future pnew calls don't collide.
        current = source.catalog.peek_value("ode.oid")
        while target.catalog.peek_value("ode.oid") < current:
            target.catalog.next_value("ode.oid")
        # The copies bypassed the transaction layer, so publish them here:
        # snapshots pinned against the target must see the rewritten chains.
        tstore.publish_snapshot()
        target.checkpoint()
        report = VacuumReport(
            objects_copied=objects,
            versions_copied=versions,
            source_pages=source.stats()["data_pages"],
            target_pages=target.stats()["data_pages"],
        )
    finally:
        target.close()
    return report
