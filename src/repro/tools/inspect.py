"""Database inspection: what is in this directory?

``python -m repro.tools.inspect /path/to/db`` prints a summary; the same
information is available programmatically via :func:`inspect_database`,
which returns a :class:`DatabaseSummary` of plain data (safe to log or
serialize).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.core.database import Database


@dataclass
class ClusterSummary:
    """Per-cluster statistics."""

    type_name: str
    objects: int
    versions: int
    max_history: int
    branched_objects: int  # objects with >1 derivation leaf


@dataclass
class DatabaseSummary:
    """Everything :func:`inspect_database` gathers."""

    path: str
    objects: int
    versions: int
    clusters: list[ClusterSummary] = field(default_factory=list)
    heaps: list[str] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    data_pages: int = 0
    wal_bytes: int = 0
    storage_policy: str = "full"
    degraded_reason: str | None = None

    def render(self) -> str:
        """A human-readable multi-line report."""
        health = (
            f"DEGRADED (read-only): {self.degraded_reason}"
            if self.degraded_reason
            else "ok"
        )
        if "snap.epoch" in self.counters:
            health += (
                f" -- snapshot epoch {self.counters['snap.epoch']}, "
                f"{self.counters.get('snap.pinned', 0)} pinned reader(s)"
            )
        lines = [
            f"database: {self.path}",
            f"  health: {health}",
        ]
        if "net.connections" in self.counters:
            # A server is attached (its stats source adds the net.* keys):
            # surface the service tier next to the kernel's health.
            get = self.counters.get
            lines.append(
                f"  network: {get('net.connections', 0)} connection(s) "
                f"({get('net.connections_total', 0)} total), "
                f"{get('net.requests', 0)} requests "
                f"({get('net.errors', 0)} errors), "
                f"pipeline depth {get('net.pipeline_max', 0)}, "
                f"{get('net.snapshot_reads', 0)} lock-free reads, "
                f"{get('net.commits', 0)} commits "
                f"({get('net.commits_overlapped', 0)} overlapped)"
            )
            # The overload/fault-tolerance tier: what the server refused
            # and what the clients survived.
            state = "draining" if get("net.draining", 0) else "accepting"
            lines.append(
                f"  overload: {state}, {get('net.shed', 0)} shed, "
                f"{get('net.deadline_expired', 0)} deadline-expired, "
                f"{get('net.reconnects', 0)} reconnect(s)"
            )
        if "shard.health.up" in self.counters:
            get = self.counters.get
            lines.append(
                f"  shards: {get('shard.health.up', 0)} up / "
                f"{get('shard.health.down', 0)} down "
                f"({get('shard.health.degraded', 0)} degraded), "
                f"{get('shard.health.kills', 0)} kill(s), "
                f"{get('shard.health.reattaches', 0)} reattach(es), "
                f"{get('shard.health.failfast', 0)} failed fast, "
                f"{get('shard.health.skipped_fanouts', 0)} degraded fanout(s)"
            )
        if "shard.exec.size" in self.counters:
            # The parallel cross-shard execution tier: the shared
            # scatter-gather pool and the global snapshot epoch.
            get = self.counters.get
            lines.append(
                f"  executor: {get('shard.exec.workers', 0)}/"
                f"{get('shard.exec.size', 0)} worker(s), "
                f"{get('shard.exec.tasks', 0)} task(s) scattered, "
                f"max concurrency {get('shard.exec.max_concurrency', 0)}, "
                f"queue wait p99 {get('shard.exec.queue_wait_p99_ms', 0)}ms; "
                f"{get('shard.snap.cuts', 0)} global cut(s) "
                f"({get('shard.snap.degraded_cuts', 0)} degraded)"
            )
        if "blobs.count" in self.counters:
            # The content-addressed payload store: dedup efficiency and
            # how much displaced content awaits the collector.
            get = self.counters.get
            lines.append(
                f"  blobs: {get('blobs.live', 0)}/{get('blobs.count', 0)} "
                f"live ({get('blobs.live_bytes', 0)} bytes, "
                f"{get('blobs.logical_bytes', 0)} logical), "
                f"{get('blobs.dedup_hits', 0)} dedup hit(s), "
                f"{get('blobs.pending_reclaim', 0)} pending reclaim; "
                f"gc: {get('gc.runs', 0)} run(s), "
                f"{get('gc.versions_deleted', 0)} version(s) pruned, "
                f"{get('gc.blobs_unlinked', 0)} blob(s) / "
                f"{get('gc.bytes_freed', 0)} byte(s) freed"
            )
        lines += [
            f"  policy: {self.storage_policy}",
            f"  data pages: {self.data_pages}  wal bytes: {self.wal_bytes}",
            f"  objects: {self.objects}  versions: {self.versions}",
            f"  heaps: {', '.join(self.heaps) or '(none)'}",
            "  counters: "
            + (", ".join(f"{k}={v}" for k, v in sorted(self.counters.items())) or "(none)"),
            "  clusters:",
        ]
        for cluster in self.clusters:
            lines.append(
                f"    {cluster.type_name}: {cluster.objects} objects, "
                f"{cluster.versions} versions (max history {cluster.max_history}, "
                f"{cluster.branched_objects} branched)"
            )
        if not self.clusters:
            lines.append("    (empty)")
        return "\n".join(lines)


def inspect_database(db: Database) -> DatabaseSummary:
    """Gather a summary of an open database."""
    store = db.store
    catalog = db.catalog
    clusters: list[ClusterSummary] = []
    total_versions = 0
    for type_name in store.cluster_names():
        refs = store.cluster(type_name)
        versions = 0
        max_history = 0
        branched = 0
        for ref in refs:
            graph = store.graph(ref.oid)
            versions += len(graph)
            max_history = max(max_history, len(graph))
            if len(graph.leaves()) > 1:
                branched += 1
        total_versions += versions
        clusters.append(
            ClusterSummary(
                type_name=type_name,
                objects=len(refs),
                versions=versions,
                max_history=max_history,
                branched_objects=branched,
            )
        )
    stats = db.stats()
    counters = {name: catalog.peek_value(name) for name in ("ode.oid",)}
    # Operational counters (cache hits/misses, lock waits/deadlocks, txn
    # retries, fsyncs, evictions...) ride along so `inspect` doubles as a
    # perf and health probe.  Only the namespaced spellings are shown --
    # the un-namespaced aliases in stats() exist for back-compat, and
    # duplicating them here would just double the report.
    counters.update(
        (k, v)
        for k, v in stats.items()
        if "." in k and k != "degraded.reason"
    )
    counters["degraded"] = int(stats["degraded"])
    return DatabaseSummary(
        path=db.path,
        objects=store.object_count(),
        versions=total_versions,
        clusters=clusters,
        heaps=catalog.heap_names(),
        counters=counters,
        data_pages=stats["data_pages"],
        wal_bytes=stats["wal_bytes"],
        storage_policy=store.policy.kind,
        degraded_reason=stats["degraded.reason"],
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.tools.inspect <db-dir>``."""
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 1:
        print("usage: python -m repro.tools.inspect <database-directory>")
        return 2
    with Database(args[0]) as db:
        print(inspect_database(db).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
