"""Version-graph rendering: ASCII trees and Graphviz DOT.

The Ode project's companion system OdeView [4] presented version
derivation graphs graphically.  This module is the text-mode equivalent:
``ascii_tree`` draws the paper's derivation figures in the terminal, and
``to_dot`` emits Graphviz for real diagrams.  Both draw the *derived-from*
tree (solid arrows in the paper's figures) and annotate the *temporal*
chain (the dotted arrows) with sequence positions.

Example output for the paper's §4 running example::

    v1 [t0]  <- latest is v4
    ├── v2 [t1]
    │   └── v4 [t3] *latest*
    └── v3 [t2]
"""

from __future__ import annotations

from typing import Callable

from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref
from repro.core.vgraph import VersionGraph

Labeler = Callable[[int], str]


def ascii_tree(
    graph: VersionGraph,
    labeler: Labeler | None = None,
) -> str:
    """Render a derivation forest as an ASCII tree.

    ``labeler(serial)`` may add a per-version annotation (e.g. a field of
    the version's state); by default versions show their serial and
    temporal position.
    """
    order = {serial: pos for pos, serial in enumerate(graph.serials())}
    latest = graph.latest()
    lines: list[str] = []

    def label(serial: int) -> str:
        text = f"v{serial} [t{order[serial]}]"
        if labeler is not None:
            extra = labeler(serial)
            if extra:
                text += f" {extra}"
        if serial == latest:
            text += " *latest*"
        return text

    def walk(serial: int, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(label(serial))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + label(serial))
            child_prefix = prefix + ("    " if is_last else "│   ")
        children = graph.dnext(serial)
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, False)

    for root in graph.roots():
        walk(root, "", True, True)
    return "\n".join(lines)


def to_dot(
    graph: VersionGraph,
    name: str = "versions",
    labeler: Labeler | None = None,
) -> str:
    """Render a version graph as Graphviz DOT.

    Solid edges are derived-from (paper's solid arrows); dashed edges are
    the temporal chain (the paper's dotted arrows); the latest version is
    drawn doubled, matching the object-id-denotes-latest convention.
    """
    latest = graph.latest()
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=circle];"]
    for node in graph.walk_temporal():
        label = f"v{node.serial}"
        if labeler is not None:
            extra = labeler(node.serial)
            if extra:
                label += f"\\n{extra}"
        shape = "doublecircle" if node.serial == latest else "circle"
        lines.append(f'  v{node.serial} [label="{label}", shape={shape}];')
    for node in graph.walk_temporal():
        if node.dprev is not None:
            lines.append(f"  v{node.serial} -> v{node.dprev};")
    serials = graph.serials()
    for older, newer in zip(serials, serials[1:]):
        lines.append(f"  v{newer} -> v{older} [style=dashed, constraint=false];")
    lines.append("}")
    return "\n".join(lines)


def describe_object(
    db: Database,
    target: Ref | Oid,
    field: str | None = None,
) -> str:
    """A ready-to-print report for one object: header + ASCII tree.

    ``field`` names an attribute to annotate each version with.
    """
    oid = target.oid if isinstance(target, Ref) else target
    graph = db.graph(db.deref(oid))
    labeler: Labeler | None = None
    if field is not None:
        def labeler(serial: int) -> str:
            value = getattr(db.deref(Vid(oid, serial)), field, None)
            return f"{field}={value!r}"

    header = (
        f"object {oid.value} ({db.type_name(oid)}): "
        f"{len(graph)} versions, {len(graph.leaves())} alternative(s)"
    )
    return header + "\n" + ascii_tree(graph, labeler)
