"""Contention stress harness: concurrent workloads against one database.

Where :mod:`repro.tools.crashmatrix` attacks durability (does the data
survive a dying process?), this harness attacks **liveness and isolation**
under heavy lock contention: many threads hammering few objects, the
workload shapes most likely to deadlock, starve, or lose updates:

* ``hotspot`` -- every thread increments the same handful of counter
  objects through ``db.run_transaction`` (read-modify-write under strict
  2PL).  The classic lost-update shape: SHARED read locks upgrade to
  EXCLUSIVE on write, two upgraders deadlock, the wait-for-graph detector
  must victim one and the retry layer must re-run it.
* ``upgrade_storm`` -- all threads S-lock the *same* object then upgrade,
  maximizing upgrade-upgrade cycles (the deadlock the old timeout-only
  scheme burned a full ``lock_timeout`` on, every time).
* ``newversion_chain`` -- threads race ``newversion`` + write on one
  object, growing a long version chain; exercises the detector while
  each attempt does multiple logged operations.
* ``snapshot_readers`` (``--snapshots``) -- half the threads increment
  counters through ``run_transaction`` while the other half continuously
  pin :meth:`Database.snapshot` views and sum the counters lock-free.
  Verifies *monotonic snapshot visibility* (epochs and observed totals
  never go backwards for any reader), that every pinned view is
  internally consistent, and -- via a final snapshot -- that no
  acknowledged increment was lost.
* ``gc_churn`` (``--gc-churn``) -- writers churn version history under a
  retention policy while snapshot readers scan and a dedicated thread
  runs the online collector continuously.  Verifies read-your-acked-
  writes after every commit, that no reader ever observes a missing
  blob, monotone collector progress, and exact post-convergence
  retention (every object at its keep-last-N floor, no zero-ref debris).
* ``server`` (``--server``) -- the same invariants *over the wire*: an
  in-process :class:`~repro.net.server.ServerThread` serves 512
  concurrent client connections, each driving full wire transactions
  (BEGIN / READ / WRITE / COMMIT) against its own counter, with a
  lock-free snapshot read after every commit.  Verifies no lost updates
  per acknowledged wire commit, read-your-acked-writes monotonicity on
  the lock-free lane, lock quiescence, and that every session is torn
  down on disconnect.

Every scenario verifies, from per-thread ledgers:

1. **No lost updates** -- each counter's final value equals the number of
   acknowledged commits against it; every version chain's length equals
   acknowledged ``newversion`` count + 1.
2. **No stuck threads** -- every worker joins within a hard timeout.
3. **No leaked locks** -- :meth:`LockManager.assert_quiescent` passes
   after the workload (no holders, no waiters, no unconsumed victims).
4. **Bounded waiting** -- p99 lock-acquire latency stays under half the
   lock deadline: contention resolves by detection, not by timeout.

Run it:

    PYTHONPATH=src python -m repro.tools.stress [--smoke] [--snapshots] [-v]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import Database, PersistentObject, persistent
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    OdeError,
    SerializationError,
    TransactionAborted,
)
from repro.storage import serialization

#: Lock deadline for stress runs.  Deliberately generous: correct runs
#: never get near it (deadlocks resolve by detection in milliseconds),
#: and a run that *does* hit it has a real liveness bug to report.
LOCK_TIMEOUT = 5.0

#: p99 lock-acquire latency must stay under this fraction of the deadline.
P99_BUDGET_FRACTION = 0.5

_JOIN_TIMEOUT = 120.0


def _workload_type(name: str):
    """``@persistent`` that survives double execution of this module.

    ``python -m repro.tools.stress`` runs this module body a second time
    as ``__main__`` after ``repro.tools`` already imported it; reuse the
    canonical registered class so encode/decode stay consistent.
    """

    def wrap(cls: type) -> type:
        try:
            return persistent(name=name)(cls)
        except SerializationError:
            return serialization.lookup_type(name)

    return wrap


@_workload_type("stress.Counter")
class Counter(PersistentObject):
    """A shared counter: the lost-update canary."""

    def __init__(self, tag: int = 0, val: int = 0) -> None:
        self.tag = tag
        self.val = val


# -- scenarios ---------------------------------------------------------------


@dataclass
class ScenarioResult:
    name: str
    threads: int
    rounds: int
    commits: int = 0
    retries: int = 0
    deadlocks: int = 0
    p99_wait: float = 0.0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"  [{status}] {self.name}: {self.threads} threads x "
            f"{self.rounds} rounds, {self.commits} commits, "
            f"{self.retries} retries, {self.deadlocks} deadlocks, "
            f"p99 wait {self.p99_wait * 1000:.1f}ms"
        )


def _run_workers(
    result: ScenarioResult, worker, threads: int
) -> list[BaseException | None]:
    """Start ``threads`` copies of ``worker(wid)``; record errors/hangs."""
    errors: list[BaseException | None] = [None] * threads

    def run(wid: int) -> None:
        try:
            worker(wid)
        except BaseException as exc:  # noqa: BLE001 - surfaced as a finding
            errors[wid] = exc

    ts = [
        threading.Thread(target=run, args=(wid,), name=f"stress-w{wid}")
        for wid in range(threads)
    ]
    for t in ts:
        t.start()
    for t in ts:
        t.join(timeout=_JOIN_TIMEOUT)
        if t.is_alive():
            result.problems.append(f"thread {t.name} stuck (> {_JOIN_TIMEOUT}s)")
    for wid, exc in enumerate(errors):
        if exc is not None:
            result.problems.append(f"worker {wid} raised {exc!r}")
    return errors


def _finish(db: Database, result: ScenarioResult) -> None:
    """Common post-workload checks: quiescence, latency, counters."""
    stats = db.stats()
    result.retries = stats["txn.retries"]
    result.deadlocks = stats["locks.deadlocks"]
    result.p99_wait = db.locks.wait_p99()
    try:
        db.locks.assert_quiescent()
    except AssertionError as exc:
        result.problems.append(f"locks not quiescent after workload: {exc}")
    budget = LOCK_TIMEOUT * P99_BUDGET_FRACTION
    if result.p99_wait >= budget:
        result.problems.append(
            f"p99 lock wait {result.p99_wait:.3f}s >= budget {budget:.3f}s "
            "(contention resolving by timeout, not detection?)"
        )
    if stats["txn.giveups"]:
        result.problems.append(
            f"{stats['txn.giveups']} transaction(s) exhausted their retries"
        )


def _scenario_hotspot(path: Path, threads: int, rounds: int) -> ScenarioResult:
    """All threads increment a few hot counters; totals must balance."""
    result = ScenarioResult("hotspot", threads, rounds)
    hot = max(2, threads // 4)  # few counters, many threads
    with Database(path, lock_timeout=LOCK_TIMEOUT) as db:
        refs = [db.pnew(Counter(tag=i)) for i in range(hot)]
        committed = [[0] * hot for _ in range(threads)]

        def worker(wid: int) -> None:
            for j in range(rounds):
                ref = refs[(wid + j) % hot]

                def increment() -> None:
                    ref.val = ref.val + 1  # S-read then X-write: upgrades

                db.run_transaction(increment, max_attempts=40)
                committed[wid][(wid + j) % hot] += 1

        _run_workers(result, worker, threads)
        for i, ref in enumerate(refs):
            expect = sum(committed[wid][i] for wid in range(threads))
            got = ref.val
            if got != expect:
                result.problems.append(
                    f"counter {i}: value {got} != {expect} acknowledged "
                    f"increments (lost update)"
                )
            result.commits += expect
        _finish(db, result)
    return result


def _scenario_upgrade_storm(path: Path, threads: int, rounds: int) -> ScenarioResult:
    """Every thread upgrades S->X on one object -- maximal upgrade cycles."""
    result = ScenarioResult("upgrade_storm", threads, rounds)
    with Database(path, lock_timeout=LOCK_TIMEOUT) as db:
        ref = db.pnew(Counter(tag=0))
        committed = [0] * threads

        def worker(wid: int) -> None:
            for _ in range(rounds):

                def upgrade() -> None:
                    base = ref.val  # SHARED
                    ref.val = base + 1  # upgrade to EXCLUSIVE

                db.run_transaction(upgrade, max_attempts=60)
                committed[wid] += 1

        _run_workers(result, worker, threads)
        expect = sum(committed)
        result.commits = expect
        if ref.val != expect:
            result.problems.append(
                f"counter: value {ref.val} != {expect} acknowledged "
                f"increments (lost update)"
            )
        _finish(db, result)
    return result


def _scenario_newversion_chain(
    path: Path, threads: int, rounds: int
) -> ScenarioResult:
    """Threads race ``newversion`` on one object; chain length must balance."""
    result = ScenarioResult("newversion_chain", threads, rounds)
    with Database(path, lock_timeout=LOCK_TIMEOUT) as db:
        ref = db.pnew(Counter(tag=0))
        committed = [0] * threads

        def worker(wid: int) -> None:
            for j in range(rounds):

                def derive() -> None:
                    vref = db.newversion(ref)
                    vref.val = wid * 10_000 + j

                db.run_transaction(derive, max_attempts=60)
                committed[wid] += 1

        _run_workers(result, worker, threads)
        expect = 1 + sum(committed)  # the original + every acknowledged derive
        got = db.version_count(ref)
        result.commits = sum(committed)
        if got != expect:
            result.problems.append(
                f"version chain: {got} versions != {expect} expected "
                f"(original + acknowledged newversions)"
            )
        _finish(db, result)
    return result


def _scenario_snapshot_readers(
    path: Path, threads: int, rounds: int
) -> ScenarioResult:
    """Writers increment under 2PL while readers scan pinned snapshots.

    The readers-vs-writers mix from the lock-free read path: writer
    threads do classic read-modify-write increments, reader threads pin
    ``db.snapshot()`` in a loop and sum every counter through the frozen
    view.  Checks, per reader: snapshot epochs never decrease and
    observed totals never decrease (monotonic visibility).  Afterwards:
    a final snapshot must show exactly the acknowledged increments (no
    lost updates) and no reader may leave a snapshot pinned.
    """
    result = ScenarioResult("snapshot_readers", threads, rounds)
    writers = max(1, threads // 2)
    readers = max(1, threads - writers)
    hot = max(2, writers)
    with Database(path, lock_timeout=LOCK_TIMEOUT) as db:
        refs = [db.pnew(Counter(tag=i)) for i in range(hot)]
        oids = [ref.oid for ref in refs]
        committed = [0] * writers
        acked = threading.Semaphore(0)  # one release per acknowledged commit
        done = threading.Event()

        def writer(wid: int) -> None:
            for j in range(rounds):
                ref = refs[(wid + j) % hot]

                def increment() -> None:
                    ref.val = ref.val + 1

                db.run_transaction(increment, max_attempts=40)
                committed[wid] += 1
                acked.release()

        def reader(rid: int) -> None:
            last_epoch = -1
            last_total = -1
            while not done.is_set():
                # No read-your-acked-writes floor here: publication can
                # lag acknowledgement when the next writer grabs the
                # freed lock and dirties the object before the committer
                # publishes.  The contract is monotonic visibility plus
                # the final no-lost-updates balance below.
                with db.snapshot() as snap:
                    if snap.epoch < last_epoch:
                        result.problems.append(
                            f"reader {rid}: epoch went backwards "
                            f"({snap.epoch} < {last_epoch})"
                        )
                        return
                    last_epoch = snap.epoch
                    total = sum(snap.materialize(snap.latest_vid(oid)).val for oid in oids)
                if total < last_total:
                    result.problems.append(
                        f"reader {rid}: total went backwards "
                        f"({total} < {last_total}) -- non-monotonic visibility"
                    )
                    return
                last_total = total

        def worker(wid: int) -> None:
            if wid < writers:
                writer(wid)
            else:
                reader(wid - writers)

        # Writers signal completion through the semaphore; flip ``done``
        # once all acknowledged commits are in so readers wind down.
        def closer() -> None:
            for _ in range(writers * rounds):
                acked.acquire()
            done.set()

        stop = threading.Thread(target=closer, name="stress-closer")
        stop.start()
        try:
            _run_workers(result, worker, writers + readers)
        finally:
            done.set()
            stop.join(timeout=_JOIN_TIMEOUT)

        expect = sum(committed)
        result.commits = expect
        with db.snapshot() as snap:
            got = sum(snap.materialize(snap.latest_vid(oid)).val for oid in oids)
        if got != expect:
            result.problems.append(
                f"final snapshot total {got} != {expect} acknowledged "
                f"increments (lost update)"
            )
        stats = db.stats()
        if stats["snap.pinned"] != 0:
            result.problems.append(
                f"{stats['snap.pinned']} snapshot(s) left pinned after workload"
            )
        if stats["snap.lockfree_hits"] == 0:
            result.problems.append(
                "no lock-free read hits recorded -- readers took the locked path?"
            )
        _finish(db, result)
    return result


def _scenario_gc_churn(path: Path, threads: int, rounds: int) -> ScenarioResult:
    """Writers churn version history while the online GC collects it.

    Half the threads rewrite their own versioned counters (every write a
    ``newversion`` + distinct payload, so history -- and displaced blob
    content -- grows continuously) under a ``keep_last_n`` retention
    policy; the rest continuously pin snapshots and materialize the
    latest version of every object; one dedicated thread runs
    ``db.run_gc`` in a loop the whole time.  Verifies:

    1. **read-your-acked-writes** -- each writer reads its own object
       back immediately after every acknowledged commit and must see the
       value it wrote (the collector never eats an acked write);
    2. **no missing blobs** -- no reader or writer ever observes a
       ``BlobMissingError`` (reclaim never unlinks content a live reader
       can reach);
    3. **monotone GC progress** -- the collector's deleted-versions
       counter never decreases and the final convergence run drains the
       candidate set to zero, leaving exactly the retention keep set.
    """
    from repro.core.gc import RetentionPolicy
    from repro.errors import BlobMissingError

    result = ScenarioResult("gc_churn", threads, rounds)
    writers = max(1, threads // 2)
    readers = max(1, threads - writers - 1)
    keep = 3
    with Database(path, lock_timeout=LOCK_TIMEOUT) as db:
        db.set_retention(Counter, RetentionPolicy(keep_last_n=keep))
        refs = [db.pnew(Counter(tag=i)) for i in range(writers)]
        oids = [ref.oid for ref in refs]
        committed = [0] * writers
        acked = threading.Semaphore(0)  # one release per acknowledged commit
        done = threading.Event()

        def writer(wid: int) -> None:
            ref = refs[wid]  # private object: churn, not lock contention
            released = 0
            try:
                for j in range(rounds):
                    val = wid * 1_000_000 + j

                    def rewrite() -> None:
                        db.newversion(ref)
                        ref.val = val

                    db.run_transaction(rewrite, max_attempts=40)
                    committed[wid] += 1
                    acked.release()
                    released += 1
                    try:
                        got = ref.val
                    except BlobMissingError as exc:
                        result.problems.append(
                            f"writer {wid}: acked write unreadable "
                            f"(BlobMissingError {exc})"
                        )
                        return
                    if got != val:
                        result.problems.append(
                            f"writer {wid}: read-your-acked-writes broken "
                            f"(wrote {val}, read {got})"
                        )
                        return
            finally:
                # An early return (a recorded problem, a raised error)
                # must still unblock the closer below.
                if released < rounds:
                    acked.release(rounds - released)

        def reader(rid: int) -> None:
            while not done.is_set():
                try:
                    with db.snapshot() as snap:
                        for oid in oids:
                            snap.materialize(snap.latest_vid(oid))
                except BlobMissingError as exc:
                    result.problems.append(
                        f"reader {rid}: BlobMissingError surfaced ({exc})"
                    )
                    return

        def collector() -> None:
            last = 0
            while not done.is_set():
                report = db.run_gc(batch_limit=8)
                total = db.stats()["gc.versions_deleted"]
                if total < last:
                    result.problems.append(
                        f"GC progress went backwards ({total} < {last})"
                    )
                    return
                last = total
                if report.versions_deleted == 0 and report.blobs_unlinked == 0:
                    time.sleep(0.002)  # idle pass: let the writers refill

        def worker(wid: int) -> None:
            if wid < writers:
                writer(wid)
            elif wid < writers + readers:
                reader(wid - writers)
            else:
                collector()

        # Writers signal completion through the semaphore; flip ``done``
        # once every acknowledged commit is in so the readers and the
        # collector wind down.
        def closer() -> None:
            for _ in range(writers * rounds):
                acked.acquire()
            done.set()

        stop = threading.Thread(target=closer, name="stress-gc-closer")
        stop.start()
        try:
            _run_workers(result, worker, writers + readers + 1)
        finally:
            done.set()
            stop.join(timeout=_JOIN_TIMEOUT)

        # Convergence: a quiet database drains completely in two passes
        # (displacement publishes on the first, reclaim eligibility on
        # the next); allow a couple extra for snapshot-epoch stragglers.
        for _ in range(4):
            report = db.run_gc(batch_limit=256)
            if report.candidates_remaining == 0:
                break
        else:
            result.problems.append(
                f"reclaim did not drain: {report.candidates_remaining} "
                f"candidate(s) remain after the workload went quiet"
            )
        result.commits = sum(committed)
        for wid, ref in enumerate(refs):
            if ref.val != wid * 1_000_000 + (rounds - 1):
                result.problems.append(
                    f"writer {wid}: final value {ref.val} != last acked write"
                )
            versions = db.version_count(ref)
            if versions != keep:
                result.problems.append(
                    f"writer {wid}: {versions} versions survive, retention "
                    f"demands exactly {keep}"
                )
        if db.stats()["gc.versions_deleted"] == 0:
            result.problems.append(
                "the collector never deleted anything -- churn misconfigured?"
            )
        stats = db.stats()
        if stats["blobs.count"] != stats["blobs.live"]:
            result.problems.append(
                f"{stats['blobs.count'] - stats['blobs.live']} zero-ref "
                f"index entries remain after convergence"
            )
        _finish(db, result)
    return result


#: Connection count for the ``server`` scenario.  The acceptance floor
#: is 500 live sessions; 512 keeps it a round power of two above it.
SERVER_CONNECTIONS = 512


def _scenario_server(path: Path, threads: int, rounds: int) -> ScenarioResult:
    """A 512-connection client swarm against the in-process server.

    Each connection owns one counter and drives full wire transactions --
    BEGIN / READ / WRITE / COMMIT frames through the session's stateful
    lane -- followed by a lock-free snapshot read on the inline lane.
    Transient transaction errors (deadlock victims, lock timeouts,
    server-side aborts) are retried client-side with backoff, exactly as
    a real wire client would.

    Invariants, checked from per-connection ledgers:

    1. **No lost updates over the wire** -- every counter's final value
       equals that connection's acknowledged wire commits.
    2. **Read-your-acked-writes** -- the lock-free read after an
       acknowledged commit never sees fewer increments than were acked.
    3. **Full swarm concurrency** -- all 512 sessions are live at once.
    4. **Clean teardown** -- every session reaped on disconnect, no
       snapshot left pinned, lock table quiescent.
    """
    from repro.net.client import OdeConnection
    from repro.net.server import ServerThread

    connections = SERVER_CONNECTIONS
    txns = max(2, rounds // 4)
    result = ScenarioResult("server", connections, txns)
    retriable = (DeadlockError, LockTimeoutError, TransactionAborted)
    with Database(
        path, lock_timeout=LOCK_TIMEOUT, group_commit_window=0.002
    ) as db:
        with db.transaction():
            refs = [db.pnew(Counter(tag=i)) for i in range(connections)]
        oids = [ref.oid for ref in refs]
        acked = [0] * connections

        async def drive(idx: int, conn: OdeConnection) -> None:
            oid = oids[idx]
            for j in range(txns):
                for attempt in range(1, 41):
                    try:
                        await conn.begin()
                        val = await conn.read(oid, "val")
                        await conn.write(oid, "val", val + 1)
                        await conn.commit()
                        acked[idx] += 1
                        break
                    except retriable:
                        try:
                            await conn.abort()
                        except OdeError:
                            pass
                        await asyncio.sleep(0.001 * attempt)
                else:
                    result.problems.append(
                        f"connection {idx}: transaction {j} exhausted retries"
                    )
                    return
                # Outside the transaction the session serves this from
                # its pinned snapshot -- the lock-free inline lane.
                got = await conn.read(oid, "val")
                if got < acked[idx]:
                    result.problems.append(
                        f"connection {idx}: lock-free read saw {got} after "
                        f"{acked[idx]} acknowledged commits"
                    )
                    return

        with ServerThread(db) as server:

            async def swarm() -> int:
                conns = await asyncio.gather(
                    *(
                        OdeConnection.open(server.host, server.port)
                        for _ in range(connections)
                    )
                )
                try:
                    # The client-side opens complete before the server
                    # loop has processed every accept; poll briefly for
                    # the swarm's true peak.
                    peak = 0
                    deadline = time.monotonic() + 5.0
                    while peak < connections and time.monotonic() < deadline:
                        peak = max(peak, db.stats()["net.connections"])
                        await asyncio.sleep(0.02)
                    await asyncio.gather(*(drive(i, c) for i, c in enumerate(conns)))
                finally:
                    await asyncio.gather(
                        *(c.close() for c in conns), return_exceptions=True
                    )
                return peak

            peak = asyncio.run(swarm())
            if peak < 500:
                result.problems.append(
                    f"only {peak} concurrent sessions (need >= 500)"
                )
            deadline = time.monotonic() + 10.0
            while db.stats()["net.connections"] and time.monotonic() < deadline:
                time.sleep(0.02)
            # Snapshot the counters before the server detaches its
            # stats source on shutdown.
            stats = db.stats()

        if stats["net.connections"] != 0:
            result.problems.append(
                f"{stats['net.connections']} session(s) not torn down on disconnect"
            )
        if stats["snap.pinned"] != 0:
            result.problems.append(
                f"{stats['snap.pinned']} snapshot(s) left pinned after the swarm"
            )
        if stats["net.snapshot_reads"] == 0:
            result.problems.append(
                "no lock-free wire reads recorded -- inline lane never used?"
            )
        result.commits = sum(acked)
        with db.snapshot() as snap:
            for idx, oid in enumerate(oids):
                got = snap.read_attr(snap.latest_vid(oid), "val")
                if got != acked[idx]:
                    result.problems.append(
                        f"counter {idx}: value {got} != {acked[idx]} acknowledged "
                        f"wire commits (lost update)"
                    )
        _finish(db, result)
    return result


_SCENARIOS = {
    "hotspot": _scenario_hotspot,
    "upgrade_storm": _scenario_upgrade_storm,
    "newversion_chain": _scenario_newversion_chain,
}

#: Opt-in scenarios (``--snapshots``): kept out of ``_SCENARIOS`` so the
#: default run -- and everything that asserts on its exact scenario set --
#: is unchanged.
_SNAPSHOT_SCENARIOS = {
    "snapshot_readers": _scenario_snapshot_readers,
}

#: Opt-in (``--server``): the wire-protocol swarm.  Kept separate for the
#: same reason as the snapshot scenarios -- the default set is stable.
_SERVER_SCENARIOS = {
    "server": _scenario_server,
}

#: Opt-in (``--gc-churn``): writers + snapshot readers vs. the online
#: collector.  Separate so the default set is stable.
_GC_SCENARIOS = {
    "gc_churn": _scenario_gc_churn,
}


# -- the harness -------------------------------------------------------------


@dataclass
class StressReport:
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        lines = [
            f"stress: {len(self.results)} scenarios, "
            + ("all OK" if self.ok else "FAILURES")
        ]
        for result in self.results:
            lines.append(result.line())
            lines.extend(f"      - {p}" for p in result.problems)
        return "\n".join(lines)


def run_stress(
    base_dir: Path | None = None,
    threads: int = 8,
    rounds: int = 30,
    verbose: bool = False,
    snapshots: bool = False,
    server: bool = False,
    gc_churn: bool = False,
) -> StressReport:
    """Run every scenario against a fresh database directory.

    ``snapshots=True`` adds the readers-vs-writers snapshot scenarios;
    ``server=True`` adds the 512-connection wire-protocol swarm;
    ``gc_churn=True`` adds the online-GC churn scenario.  All ride on
    top of the default set.
    """
    report = StressReport()
    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="stress-")
        base_dir = Path(tmp.name)
    scenarios = dict(_SCENARIOS)
    if snapshots:
        scenarios.update(_SNAPSHOT_SCENARIOS)
    if server:
        scenarios.update(_SERVER_SCENARIOS)
    if gc_churn:
        scenarios.update(_GC_SCENARIOS)
    try:
        for name, scenario in scenarios.items():
            result = scenario(base_dir / name, threads, rounds)
            report.results.append(result)
            if verbose:
                print(result.line(), flush=True)
                for problem in result.problems:
                    print(f"      - {problem}", flush=True)
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stress", description="lock-contention stress harness"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small thread/round counts -- fast CI subset",
    )
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--snapshots", action="store_true",
        help="also run the snapshot readers-vs-writers scenarios",
    )
    parser.add_argument(
        "--server", action="store_true",
        help="also run the 512-connection wire-protocol swarm",
    )
    parser.add_argument(
        "--gc-churn", action="store_true",
        help="also run the online-GC vs. writers/readers churn scenario",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument(
        "--dir", type=Path, default=None,
        help="run under this directory instead of a temp dir (kept afterwards)",
    )
    args = parser.parse_args(argv)
    threads = args.threads if args.threads is not None else (4 if args.smoke else 8)
    rounds = args.rounds if args.rounds is not None else (10 if args.smoke else 30)
    report = run_stress(
        args.dir, threads=threads, rounds=rounds,
        verbose=args.verbose, snapshots=args.snapshots, server=args.server,
        gc_churn=args.gc_churn,
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
