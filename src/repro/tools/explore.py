"""Interleaving explorer CLI: hunt serializability anomalies by schedule.

Runs the concurrency scenarios of :mod:`repro.verify.scenarios` under the
cooperative scheduler, judging every run with the model-based oracle:

    PYTHONPATH=src python -m repro.tools.explore [--smoke] [-v]

Modes:

* default / ``--scenario NAME`` -- bounded-exhaustive exploration for the
  2-transaction scenarios, seeded random schedules for the larger ones.
* ``--mutate publish-exclusion`` -- run with the commit-publish exclusion
  of active-transaction oids deliberately disabled (uncommitted state
  leaks into published snapshots); the oracle must catch it.
* ``--selftest`` -- prove the harness catches anomalies: find a
  violation under the mutation, minimize it, write the repro file, and
  confirm the same schedule is clean without the mutation.
* ``--smoke`` -- the CI gate: selftest + capped exhaustive runs of every
  small scenario (expect zero violations).
* ``--replay FILE`` -- re-run a repro file written by a failing run.

A failure writes a minimized repro JSON (schedule + trace + reason) into
``--out`` (default ``explore-failures/``); see ``docs/TESTING.md`` for
how to read one.  Exit status: 0 clean, 1 violations/harness errors or a
failed selftest, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.verify.explorer import (
    ExploreResult,
    MUTATIONS,
    RunOutcome,
    explore,
    load_repro,
    minimize,
    run_schedule,
    write_repro,
)
from repro.verify.scenarios import SCENARIOS, small_scenarios

#: Scenarios the mutation self-test tries, in order, until one trips.
SELFTEST_SCENARIOS = ("uncommitted_read", "write_vs_snapshot")


def _default_seed() -> int:
    env = os.environ.get("REPRO_TEST_SEED")
    return int(env) if env else 0


def _say(verbose: bool, message: str) -> None:
    if verbose:
        print(message)


def run_selftest(
    seed: int, out_dir: str, budget: int = 300, verbose: bool = False
) -> tuple[bool, str]:
    """Mutation self-test; returns (ok, summary line).

    Proves the oracle is live: with publish exclusion disabled a
    violation must be found and minimized, and the minimized schedule
    must be clean again with the mutation off (the flag is causal).
    """
    start = time.monotonic()
    for name in SELFTEST_SCENARIOS:
        scenario = SCENARIOS[name]
        result = explore(
            scenario,
            mode="random",
            max_runs=budget,
            seed=seed,
            mutate="publish-exclusion",
        )
        _say(
            verbose,
            f"  selftest {name}: {result.runs} mutated runs, "
            f"{len(result.failures)} failure(s)",
        )
        if not result.failures:
            continue
        failing = result.failures[0]
        minimized = minimize(scenario, failing)
        if not minimized.failed:
            return False, (
                f"selftest: minimization of {name} lost the failure "
                f"(schedule {failing.schedule})"
            )
        path = write_repro(minimized, out_dir)
        clean = run_schedule(scenario, schedule=minimized.schedule, mutate=None)
        if clean.failed:
            return False, (
                f"selftest: {name} fails even without the mutation "
                f"({clean.reason}) -- not the mutation's doing"
            )
        elapsed = time.monotonic() - start
        return True, (
            f"selftest OK: publish-exclusion mutation caught on {name} in "
            f"{elapsed:.1f}s, minimized to {len(minimized.schedule)} decisions "
            f"({minimized.reason}); repro: {path}"
        )
    return False, (
        f"selftest FAILED: no violation found under the publish-exclusion "
        f"mutation in {budget} runs per scenario -- the oracle is blind"
    )


def _report(result: ExploreResult, out_dir: str, verbose: bool) -> list[str]:
    lines = []
    coverage = "complete" if result.complete else "truncated (bounded)"
    lines.append(
        f"{result.scenario}: {result.mode}, {result.runs} runs, {coverage}, "
        f"{len(result.failures)} failure(s)"
    )
    for failing in result.failures:
        scenario = SCENARIOS[result.scenario]
        minimized = minimize(scenario, failing)
        path = write_repro(minimized if minimized.failed else failing, out_dir)
        lines.append(f"  FAILURE: {failing.reason}")
        lines.append(
            f"  minimized schedule: {minimized.schedule} -> repro {path}"
        )
        if verbose:
            for thread, point in minimized.trace:
                lines.append(f"    {thread:>4} @ {point}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="explore",
        description="deterministic interleaving explorer + serializability oracle",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to explore (repeatable; default: all)",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "exhaustive", "random"),
        default="auto",
        help="auto = exhaustive for 2-txn scenarios, random for larger ones",
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="schedule budget per scenario (default 400; 120 with --smoke)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for random schedules (default: $REPRO_TEST_SEED or 0)",
    )
    parser.add_argument(
        "--mutate",
        choices=MUTATIONS,
        default=None,
        help="run with a deliberate kernel mutation enabled",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="mutation self-test: the oracle must catch the planted bug",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI gate: selftest + capped exhaustive"
    )
    parser.add_argument(
        "--replay", metavar="FILE", default=None, help="re-run a repro JSON file"
    )
    parser.add_argument(
        "--out",
        default="explore-failures",
        metavar="DIR",
        help="directory for minimized-failure repro files",
    )
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list:
        for scenario in SCENARIOS.values():
            kind = "exhaustive" if scenario.small else "random"
            print(f"{scenario.name:>20}  [{kind}]  {scenario.doc}")
        return 0

    seed = args.seed if args.seed is not None else _default_seed()
    max_runs = args.max_runs if args.max_runs is not None else (
        120 if args.smoke else 400
    )
    failed = False

    if args.replay:
        name, schedule, mutation = load_repro(args.replay)
        if name not in SCENARIOS:
            print(f"replay: unknown scenario {name!r}", file=sys.stderr)
            return 2
        outcome = run_schedule(SCENARIOS[name], schedule=schedule, mutate=mutation)
        print(f"{name}: {outcome.reason}")
        if args.verbose:
            for thread, point in outcome.trace:
                print(f"  {thread:>4} @ {point}")
        return 1 if outcome.failed else 0

    if args.selftest or args.smoke:
        ok, summary = run_selftest(seed, args.out, verbose=args.verbose)
        print(summary)
        failed = failed or not ok
        if args.selftest and not args.smoke:
            return 1 if failed else 0

    if args.scenario:
        unknown = [n for n in args.scenario if n not in SCENARIOS]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        chosen = [SCENARIOS[n] for n in args.scenario]
    elif args.smoke:
        chosen = small_scenarios()
    else:
        chosen = list(SCENARIOS.values())

    for scenario in chosen:
        if args.mode == "auto":
            mode = "exhaustive" if scenario.small else "random"
        else:
            mode = args.mode
        result = explore(
            scenario,
            mode=mode,
            max_runs=max_runs,
            seed=seed,
            mutate=args.mutate,
            stop_on_failure=True,
        )
        for line in _report(result, args.out, args.verbose):
            print(line)
        failed = failed or not result.ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
