"""Offline schema migration: rewrite a cluster through a transform.

Persistent types evolve: fields get added, renamed, or re-encoded.  In
ode-py (as in Ode) decoding is tolerant -- ``__setstate__``/``__dict__``
restoration never runs the constructor -- so *reading* old objects after
adding a field with a class-level default usually just works.  When the
data itself must change, ``migrate_cluster`` rewrites objects through a
caller-supplied transform:

* ``versions="latest"`` (default): the transform runs on each object's
  latest version and is written **in place** -- the paper's separation of
  mutation from versioning means a schema fix is not a design revision;
* ``versions="all"``: every live version is rewritten in place, for
  migrations that must fix history too;
* ``as_new_version=True``: instead of in-place writes, the transformed
  state is committed as a *new version* derived from the old latest --
  an auditable migration (only valid with ``versions="latest"``).

The transform receives the materialized object and either mutates it (and
returns None) or returns a replacement object of the same registered type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import OdeError
from repro.core.database import Database

Transform = Callable[[Any], Any]


class MigrationError(OdeError):
    """A migration request was invalid or a transform failed."""


@dataclass
class MigrationReport:
    """What one :func:`migrate_cluster` run did."""

    objects_visited: int = 0
    versions_rewritten: int = 0
    versions_created: int = 0


def migrate_cluster(
    db: Database,
    type_or_name: type | str,
    transform: Transform,
    versions: str = "latest",
    as_new_version: bool = False,
) -> MigrationReport:
    """Apply ``transform`` across one cluster.  See the module docstring."""
    if versions not in ("latest", "all"):
        raise MigrationError(f"versions must be 'latest' or 'all', got {versions!r}")
    if as_new_version and versions != "latest":
        raise MigrationError("as_new_version only combines with versions='latest'")
    report = MigrationReport()
    for ref in db.cluster(type_or_name):
        report.objects_visited += 1
        if versions == "latest":
            targets = [db.latest_vid(ref.oid)]
        else:
            targets = [v.vid for v in db.versions(ref)]
        for vid in targets:
            obj = db.materialize(vid)
            result = transform(obj)
            new_obj = obj if result is None else result
            if type(new_obj) is not type(obj):
                raise MigrationError(
                    f"transform changed the type of {vid!r}: "
                    f"{type(obj).__qualname__} -> {type(new_obj).__qualname__}"
                )
            if as_new_version:
                vref = db.newversion(vid)
                db.write_version(vref.vid, new_obj)
                report.versions_created += 1
            else:
                db.write_version(vid, new_obj)
                report.versions_rewritten += 1
    return report


def add_field(name: str, default: Any) -> Transform:
    """A transform that adds a missing attribute with a default."""

    def apply(obj: Any) -> None:
        if not hasattr(obj, name):
            setattr(obj, name, default)

    return apply


def rename_field(old: str, new: str) -> Transform:
    """A transform that renames an attribute (no-op when already renamed)."""

    def apply(obj: Any) -> None:
        if hasattr(obj, old) and not hasattr(obj, new):
            setattr(obj, new, getattr(obj, old))
            delattr(obj, old)

    return apply


def drop_field(name: str) -> Transform:
    """A transform that removes an attribute if present."""

    def apply(obj: Any) -> None:
        if hasattr(obj, name):
            delattr(obj, name)

    return apply
