"""Network chaos harness: does the service tier survive a hostile wire?

:mod:`repro.tools.crashmatrix` attacks durability (a dying process),
:mod:`repro.tools.stress` attacks liveness under contention.  This
harness attacks **availability and correctness under network and shard
failure**: a client swarm drives wire transactions through a
:class:`~repro.net.chaos.ChaosProxy` that delays, duplicates, truncates
and drops traffic, partitions the network mid-run, and kills whole
shards out from under a sharded server -- then the harness checks the
promises the fault-tolerance layer makes:

* ``lossy_wire`` -- a swarm through a seeded chaos plan (latency
  spikes, duplicated chunks, truncate-mid-frame, dropped chunks).
  Connections die and heal with jittered backoff; every op is
  deadline-bounded.  Invariants: **no lost acked writes** (each
  counter's final value covers every acknowledged commit), writes never
  *exceed* acked + indeterminate (a timed-out commit may or may not
  have landed -- tracked, not guessed), **read-your-acked-writes** on
  the lock-free lane, and **bounded op latency** (no attempt takes
  longer than the deadline budget).
* ``partition`` -- a full partition drops in mid-run: established
  connections black-hole (nothing tells the client; only its deadline
  can), new connections are refused.  Invariants: every op during the
  partition fails within its deadline bound, the pool reconnects after
  heal, every planned transaction eventually commits, and no acked
  write is lost.
* ``shard_failover`` -- the swarm runs against a sharded server; one
  shard is killed abruptly (no flush -- WAL recovery is real) with a
  cross-shard 2PC transaction deliberately in doubt on it.  Invariants:
  ops homed on healthy shards **keep serving** (the availability
  floor), ops homed on the dead shard **fail fast** with the retryable
  :class:`~repro.errors.ShardUnavailableError` (no timeout burn), the
  health opcode reports the down shard, and after an online
  ``reattach_shard`` the in-doubt transaction resolves to COMMIT and
  the whole keyspace serves again with nothing lost.

Run it::

    PYTHONPATH=src python -m repro.tools.chaos [--smoke] [--seed N] [-v]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import PersistentObject, persistent
from repro.errors import (
    ConnectionClosedError,
    DeadlineExceededError,
    NetworkError,
    OdeError,
    ProtocolError,
    SerializationError,
    ShardUnavailableError,
    TransactionStateError,
)
from repro.net.chaos import C2S, S2C, ChaosPlan, ChaosProxyThread
from repro.net.client import OdeClient, is_retryable
from repro.net.server import ServerThread
from repro.shard import ShardedDatabase
from repro.storage import faults, serialization

#: Per-op client deadline for chaos runs: tight enough that a black-holed
#: op fails in bounded time, loose enough that a healthy-but-contended op
#: never trips it.
DEADLINE = 3.0

#: Worst-case budget for one transaction *attempt*: five deadline-bounded
#: ops (begin/read/write/commit + the abort the lease adds on failure)
#: plus scheduling slack.  Any attempt exceeding this is an unbounded-
#: latency bug, which is exactly what the deadline layer exists to rule
#: out.
ATTEMPT_BUDGET = 5 * DEADLINE + 2.0

#: A down shard must fail fast, not burn a timeout: the refusal budget.
FAILFAST_BUDGET = 0.25

_RETRY_CAP = 60


def _should_retry(exc: BaseException) -> bool:
    """The harness's retry predicate, wider than the library's taxonomy:

    * :func:`~repro.net.client.is_retryable` -- the wire taxonomy;
    * :class:`TransactionStateError` -- a begin that raced an orphaned
      server-side transaction (its commit was black-holed mid-flight;
      the lease's abort-on-error already cleared it, a retry is clean);
    * pool-heal exhaustion (:class:`NetworkError` that is not a
      :class:`ProtocolError`) -- the server was unreachable for longer
      than one heal cycle; under a deliberate partition that is
      expected, and trying again after the heal is the whole point.
    """
    if is_retryable(exc) or isinstance(exc, TransactionStateError):
        return True
    return isinstance(exc, NetworkError) and not isinstance(exc, ProtocolError)


def _workload_type(name: str):
    """``@persistent`` that survives double execution of this module
    (``python -m`` re-runs the body as ``__main__``)."""

    def wrap(cls: type) -> type:
        try:
            return persistent(name=name)(cls)
        except SerializationError:
            return serialization.lookup_type(name)

    return wrap


@_workload_type("chaos.Account")
class Account(PersistentObject):
    """One counter per swarm connection: the lost-ack canary."""

    def __init__(self, tag: int = 0, val: int = 0) -> None:
        self.tag = tag
        self.val = val


# -- bookkeeping --------------------------------------------------------------


@dataclass
class ScenarioResult:
    name: str
    workers: int
    txns: int
    acked: int = 0
    maybe: int = 0
    retries: int = 0
    failfast: int = 0
    max_attempt_s: float = 0.0
    elapsed: float = 0.0
    problems: list[str] = field(default_factory=list)
    notes: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def line(self) -> str:
        status = "OK " if self.ok else "FAIL"
        extra = " ".join(f"{k}={v}" for k, v in self.notes.items())
        return (
            f"  [{status}] {self.name:<14} workers={self.workers:<3} "
            f"acked={self.acked:<5} maybe={self.maybe:<3} "
            f"retries={self.retries:<4} max_attempt={self.max_attempt_s:.2f}s "
            f"({self.elapsed:.1f}s) {extra}"
        )


class _Ledger:
    """Per-worker ack accounting shared with the final verification."""

    def __init__(self, n: int) -> None:
        self.acked = [0] * n
        self.maybe = [0] * n


async def _run_txn(
    client: OdeClient, oid, idx: int, ledger: _Ledger, result: ScenarioResult
) -> bool:
    """One read-modify-write wire transaction, retried to completion.

    Returns False only when retries are exhausted (recorded as a
    problem).  A commit that fails *indeterminately* (deadline expiry or
    connection loss after the COMMIT frame went out) is counted in
    ``maybe`` and not retried: retrying could double-apply the
    increment, and the point is to verify the harness can bound what it
    does not know.
    """
    for attempt in range(1, _RETRY_CAP + 1):
        t0 = time.perf_counter()
        indeterminate = False
        try:
            async with client.lease() as conn:
                await conn.begin()
                val = await conn.read(oid, "val")
                await conn.write(oid, "val", val + 1)
                try:
                    await conn.commit()
                except (DeadlineExceededError, ConnectionClosedError):
                    indeterminate = True
                    raise
                ledger.acked[idx] += 1
                # Read-your-acked-writes: the post-commit lock-free read
                # must see at least everything this worker was acked.
                try:
                    got = await conn.read(oid, "val")
                    if got < ledger.acked[idx]:
                        result.problems.append(
                            f"worker {idx}: lock-free read saw {got} after "
                            f"{ledger.acked[idx]} acked commits"
                        )
                except OdeError as exc:
                    if not is_retryable(exc):
                        raise
                    # The read-back is best-effort under chaos; a dead
                    # connection here does not unack the commit.
            return True
        except BaseException as exc:  # noqa: BLE001 - classified below
            elapsed = time.perf_counter() - t0
            result.max_attempt_s = max(result.max_attempt_s, elapsed)
            if elapsed > ATTEMPT_BUDGET:
                result.problems.append(
                    f"worker {idx}: attempt took {elapsed:.2f}s "
                    f"(budget {ATTEMPT_BUDGET:.2f}s) -- unbounded latency"
                )
                return False
            if indeterminate:
                ledger.maybe[idx] += 1
                return True  # the txn may have landed; do not re-run it
            if _should_retry(exc):
                result.retries += 1
                await asyncio.sleep(min(0.05 * attempt, 0.5))
                continue
            result.problems.append(
                f"worker {idx}: non-retryable {type(exc).__name__}: {exc}"
            )
            return False
        finally:
            elapsed = time.perf_counter() - t0
            result.max_attempt_s = max(result.max_attempt_s, elapsed)
    result.problems.append(f"worker {idx}: exhausted {_RETRY_CAP} retries")
    return False


def _verify_ledger(
    db: ShardedDatabase, oids, ledger: _Ledger, result: ScenarioResult
) -> None:
    """No lost acked writes; no writes beyond acked + indeterminate."""
    for idx, oid in enumerate(oids):
        obj = db.materialize(db.latest_vid(oid))
        lo, hi = ledger.acked[idx], ledger.acked[idx] + ledger.maybe[idx]
        if not (lo <= obj.val <= hi):
            result.problems.append(
                f"counter {idx}: value {obj.val} outside [{lo}, {hi}] "
                f"(acked={lo}, indeterminate={ledger.maybe[idx]}) -- "
                + ("lost acked write" if obj.val < lo else "phantom commit")
            )
    result.acked = sum(ledger.acked)
    result.maybe = sum(ledger.maybe)


# -- scenarios ----------------------------------------------------------------


def _scenario_lossy_wire(
    path: Path, workers: int, txns: int, seed: int
) -> ScenarioResult:
    """The swarm through a seeded lossy plan: delay/dup/truncate/drop."""
    result = ScenarioResult("lossy_wire", workers, txns)
    start = time.monotonic()
    plan = (
        ChaosPlan(seed=seed)
        .delay(C2S, prob=0.04, min_s=0.0005, max_s=0.01)
        .delay(S2C, prob=0.04, min_s=0.0005, max_s=0.01)
        .duplicate(C2S, prob=0.03)
        .duplicate(S2C, prob=0.03)
        .truncate(S2C, prob=0.01)
        .truncate(C2S, prob=0.01)
        .drop_chunk(S2C, prob=0.01)
    )
    with ShardedDatabase(
        path, nshards=2, lock_timeout=5.0, group_commit_window=0.001
    ) as db:
        with db.transaction():
            oids = [db.pnew(Account(tag=i)).oid for i in range(workers)]
        ledger = _Ledger(workers)
        with ServerThread(db) as server, ChaosProxyThread(
            server.host, server.port, plan
        ) as proxy:

            async def swarm() -> None:
                client = await OdeClient.connect(
                    proxy.host,
                    proxy.port,
                    pool_size=workers,
                    deadline=DEADLINE,
                    reconnect_attempts=10,
                    reconnect_backoff=0.02,
                )
                try:

                    async def drive(idx: int) -> None:
                        for _ in range(txns):
                            if not await _run_txn(
                                client, oids[idx], idx, ledger, result
                            ):
                                return

                    await asyncio.gather(*(drive(i) for i in range(workers)))
                finally:
                    await client.close()
                result.notes["heals"] = client.heals

            asyncio.run(swarm())
            chaos = proxy.stats
            result.notes["chaos_faults"] = (
                chaos.chunks_delayed
                + chaos.chunks_duplicated
                + chaos.chunks_truncated
                + chaos.chunks_dropped
            )
            if chaos.chunks_forwarded == 0:
                result.problems.append("proxy forwarded nothing -- dead run")
            if result.notes["chaos_faults"] == 0:
                result.problems.append(
                    "chaos plan injected no faults -- the run proved nothing"
                )
        _verify_ledger(db, oids, ledger, result)
    result.elapsed = time.monotonic() - start
    return result


def _scenario_partition(
    path: Path, workers: int, txns: int, seed: int
) -> ScenarioResult:
    """Full partition mid-run: bounded failure, then full recovery."""
    result = ScenarioResult("partition", workers, txns)
    start = time.monotonic()
    with ShardedDatabase(
        path, nshards=2, lock_timeout=5.0, group_commit_window=0.001
    ) as db:
        with db.transaction():
            oids = [db.pnew(Account(tag=i)).oid for i in range(workers)]
        ledger = _Ledger(workers)
        with ServerThread(db) as server, ChaosProxyThread(
            server.host, server.port, ChaosPlan(seed=seed)
        ) as proxy:

            async def swarm() -> None:
                client = await OdeClient.connect(
                    proxy.host,
                    proxy.port,
                    pool_size=workers,
                    deadline=1.0,
                    reconnect_attempts=12,
                    reconnect_backoff=0.02,
                )
                cut = asyncio.Event()

                async def controller() -> None:
                    # Let the swarm get going, then cut the cable.  The
                    # workers gate their second half on ``cut`` so their
                    # remaining transactions provably run into the
                    # partition, however fast the healthy half went.
                    await asyncio.sleep(0.1)
                    proxy.partition()
                    cut.set()
                    await asyncio.sleep(1.2)
                    proxy.heal()

                async def drive(idx: int) -> None:
                    for j in range(txns):
                        if j == txns // 2:
                            await cut.wait()
                        if not await _run_txn(
                            client, oids[idx], idx, ledger, result
                        ):
                            return

                try:
                    await asyncio.gather(
                        controller(), *(drive(i) for i in range(workers))
                    )
                finally:
                    await client.close()
                result.notes["heals"] = client.heals

            expired_before = db.stats().get("net.deadline_expired", 0)
            asyncio.run(swarm())
            stats = db.stats()
            if proxy.stats.partitions != 1:
                result.problems.append("partition never engaged")
            if (
                proxy.stats.bytes_blackholed == 0
                and proxy.stats.conns_refused == 0
            ):
                result.problems.append(
                    "partition black-holed nothing and refused nothing -- "
                    "the swarm never felt it"
                )
            if stats.get("net.deadline_expired", 0) <= expired_before:
                result.problems.append(
                    "no deadline expiries during a full partition -- "
                    "something waited unboundedly or never waited at all"
                )
        _verify_ledger(db, oids, ledger, result)
        # Recovery must be total: every planned transaction either acked
        # or (rarely) indeterminate at the partition edge.
        for idx in range(workers):
            done = ledger.acked[idx] + ledger.maybe[idx]
            if done != txns:
                result.problems.append(
                    f"worker {idx}: only {done}/{txns} transactions "
                    "completed after heal -- the pool did not recover"
                )
    result.elapsed = time.monotonic() - start
    return result


def _plant_in_doubt(
    db: ShardedDatabase, oid_a, oid_b, result: ScenarioResult
) -> None:
    """Leave a cross-shard 2PC transaction half-committed.

    The transaction writes ``val=777`` on both shards, logs its durable
    COMMIT verdict, commits the first participant (the lower shard),
    then "crashes" at the ``shard.2pc.post_ack`` failpoint -- the second
    participant stays prepared.  Exactly the state a coordinator crash
    between phase-two deliveries leaves behind; reattach-time resolution
    must commit it.
    """
    sess = db.session(name="in-doubt-planter")
    injector = faults.activate(
        faults.FaultPlan().crash("shard.2pc.post_ack", hit=1)
    )
    # The plant relies on serial phase-two order: commit the lower
    # shard, crash before the higher one.  Parallel delivery could
    # commit both before the failpoint fires, leaving nothing in doubt.
    was_parallel = db.parallel_2pc
    db.parallel_2pc = False
    try:
        with sess.activate():
            try:
                with db.transaction():
                    db.deref(oid_a).val = 777
                    db.deref(oid_b).val = 777
            except faults.SimulatedCrash:
                pass
        if not injector.fired:
            result.problems.append(
                "in-doubt planting: shard.2pc.post_ack never fired -- the "
                "write was not cross-shard"
            )
    finally:
        db.parallel_2pc = was_parallel
        faults.deactivate()
    # The planter "process" is dead; its session detaches the decided
    # transaction (never aborts it -- the verdict is durable).
    sess.close()


def _scenario_shard_failover(
    path: Path, workers: int, txns: int, seed: int
) -> ScenarioResult:
    """Kill a shard under the swarm; degrade gracefully; reattach online."""
    nshards = 3
    victim = 1
    result = ScenarioResult("shard_failover", workers, txns)
    start = time.monotonic()
    with ShardedDatabase(
        path, nshards=nshards, lock_timeout=5.0, group_commit_window=0.001
    ) as db:
        with db.transaction():
            oids = [db.pnew(Account(tag=i)).oid for i in range(workers)]
        homes = [db.placement.shard_of(oid) for oid in oids]
        # Two extra objects on distinct shards for the in-doubt 2PC txn.
        with db.transaction():
            pair = [db.pnew(Account(tag=1000 + i)).oid for i in range(nshards)]
        doubt_a = next(o for o in pair if db.placement.shard_of(o) == 0)
        doubt_b = next(o for o in pair if db.placement.shard_of(o) == victim)
        ledger = _Ledger(workers)
        with ServerThread(db) as server:

            async def phase(client: OdeClient, expect_down: bool) -> None:
                async def drive(idx: int) -> None:
                    for _ in range(txns):
                        if expect_down and homes[idx] == victim:
                            # The failure domain: this op must fail FAST
                            # with the retryable shard error.
                            t0 = time.perf_counter()
                            try:
                                async with client.lease() as conn:
                                    await conn.begin()
                                    await conn.read(oids[idx], "val")
                                    await conn.abort()
                                result.problems.append(
                                    f"worker {idx}: op on killed shard "
                                    f"{victim} succeeded"
                                )
                            except ShardUnavailableError:
                                elapsed = time.perf_counter() - t0
                                result.failfast += 1
                                if elapsed > FAILFAST_BUDGET:
                                    result.problems.append(
                                        f"worker {idx}: down-shard refusal "
                                        f"took {elapsed:.3f}s (budget "
                                        f"{FAILFAST_BUDGET}s) -- not fail-fast"
                                    )
                            except OdeError as exc:
                                result.problems.append(
                                    f"worker {idx}: down-shard op raised "
                                    f"{type(exc).__name__}, not "
                                    f"ShardUnavailableError"
                                )
                        else:
                            if not await _run_txn(
                                client, oids[idx], idx, ledger, result
                            ):
                                return

                await asyncio.gather(*(drive(i) for i in range(workers)))

            async def run_all() -> None:
                client = await OdeClient.connect(
                    server.host, server.port, pool_size=workers, deadline=DEADLINE
                )
                try:
                    # Phase 1: healthy fleet.
                    await phase(client, expect_down=False)
                    health = await client.health()
                    if health.get("shards", {}).get(str(victim)) != "up":
                        result.problems.append(
                            f"health opcode reports shard {victim} as "
                            f"{health.get('shards', {}).get(str(victim))!r} "
                            "while up"
                        )
                    # Plant the in-doubt cross-shard txn, then kill.
                    _plant_in_doubt(db, doubt_a, doubt_b, result)
                    db.kill_shard(victim)
                    # Phase 2: degraded fleet -- healthy shards keep
                    # serving, the victim's domain fails fast.
                    await phase(client, expect_down=True)
                    health = await client.health()
                    if health.get("shards", {}).get(str(victim)) != "down":
                        result.problems.append(
                            "health opcode does not report the killed shard "
                            "as down"
                        )
                    # Phase 3: online reattach, then full service again.
                    report = db.reattach_shard(victim)
                    if not any(
                        idx == victim for idx, _ in report.committed
                    ):
                        result.problems.append(
                            "reattach resolution did not commit the planted "
                            f"in-doubt transaction (report: {report})"
                        )
                    await phase(client, expect_down=False)
                finally:
                    await client.close()

            asyncio.run(run_all())
            result.notes["reattaches"] = db.stats()["shard.health.reattaches"]
        # Availability floor: every healthy-homed transaction in every
        # phase must have been acked.  Healthy workers ran all three
        # phases; the victim's workers spent phase 2 in the fail-fast
        # branch (no ledger entries) and ran phases 1 and 3.
        expected = [
            txns * (3 if homes[i] != victim else 2) for i in range(workers)
        ]
        for idx in range(workers):
            done = ledger.acked[idx] + ledger.maybe[idx]
            if done != expected[idx]:
                result.problems.append(
                    f"worker {idx} (shard {homes[idx]}): {done} completed "
                    f"!= {expected[idx]} planned -- availability hole"
                )
        if result.failfast == 0:
            result.problems.append(
                "no down-shard op was exercised -- victim shard owned no "
                "workers (seed/layout bug)"
            )
        # The planted transaction must have resolved to COMMIT on both
        # halves: atomicity across the failure.
        for oid in (doubt_a, doubt_b):
            obj = db.materialize(db.latest_vid(oid))
            if obj.val != 777:
                result.problems.append(
                    f"in-doubt txn half on shard "
                    f"{db.placement.shard_of(oid)} has val={obj.val}, "
                    "not 777 -- resolution lost a committed write"
                )
        _verify_ledger(db, oids, ledger, result)
    result.elapsed = time.monotonic() - start
    return result


_SCENARIOS = {
    "lossy_wire": _scenario_lossy_wire,
    "partition": _scenario_partition,
    "shard_failover": _scenario_shard_failover,
}


# -- the harness --------------------------------------------------------------


@dataclass
class ChaosReport:
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        lines = [
            f"chaos: {len(self.results)} scenarios, "
            + ("all OK" if self.ok else "FAILURES")
        ]
        for result in self.results:
            lines.append(result.line())
            lines.extend(f"      - {p}" for p in result.problems)
        return "\n".join(lines)


def run_chaos(
    base_dir: Path | None = None,
    workers: int = 16,
    txns: int = 12,
    seed: int = 7,
    verbose: bool = False,
) -> ChaosReport:
    """Run every scenario against fresh sharded databases."""
    report = ChaosReport()
    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="chaos-")
        base_dir = Path(tmp.name)
    try:
        for name, scenario in _SCENARIOS.items():
            result = scenario(base_dir / name, workers, txns, seed)
            report.results.append(result)
            if verbose:
                print(result.line(), flush=True)
                for problem in result.problems:
                    print(f"      - {problem}", flush=True)
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chaos", description="network/shard fault-tolerance harness"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small worker/txn counts -- fast CI subset",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--txns", type=int, default=None)
    parser.add_argument(
        "--seed", type=int, default=7,
        help="chaos plan seed (same seed + workload => same fault schedule)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument(
        "--dir", type=Path, default=None,
        help="run under this directory instead of a temp dir (kept afterwards)",
    )
    args = parser.parse_args(argv)
    workers = args.workers if args.workers is not None else (8 if args.smoke else 16)
    txns = args.txns if args.txns is not None else (6 if args.smoke else 12)
    report = run_chaos(
        args.dir, workers=workers, txns=txns, seed=args.seed,
        verbose=args.verbose,
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
