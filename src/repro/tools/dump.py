"""Portable dump/load: move a database between machines or versions.

``dump_database`` walks every object and emits a plain-data document
(nested lists/dicts/strings/ints only -- JSON-compatible apart from bytes,
which are hex-encoded) that fully describes the database: objects, their
version graphs, per-version payload *states* (decoded, so the dump is
independent of the storage policy and page layout), and the id counter.

``load_database`` rebuilds an equivalent database from a dump, preserving
every Oid/Vid, derivation edge, and temporal position -- so stored
references inside payloads stay valid.

The dump format is versioned; loading rejects unknown format versions.
"""

from __future__ import annotations

from typing import Any

from repro.errors import OdeError
from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.store import _Entry
from repro.core.vgraph import VersionGraph
from repro.storage import serialization

FORMAT_VERSION = 1


class DumpError(OdeError):
    """A dump document is malformed or from an unknown format version."""


def _encode_value(value: Any) -> Any:
    """Lower a codec value into JSON-compatible plain data."""
    if isinstance(value, Oid):
        return {"$oid": value.value}
    if isinstance(value, Vid):
        return {"$vid": [value.oid.value, value.serial]}
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(v) for v in value]}
    if isinstance(value, set):
        return {"$set": [_encode_value(v) for v in sorted(value, key=repr)]}
    if isinstance(value, frozenset):
        return {"$frozenset": [_encode_value(v) for v in sorted(value, key=repr)]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {
            "$dict": [[_encode_value(k), _encode_value(v)] for k, v in value.items()]
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise DumpError(f"cannot dump value of type {type(value).__qualname__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if isinstance(value, dict):
        if "$oid" in value:
            return Oid(value["$oid"])
        if "$vid" in value:
            oid_value, serial = value["$vid"]
            return Vid(Oid(oid_value), serial)
        if "$bytes" in value:
            return bytes.fromhex(value["$bytes"])
        if "$tuple" in value:
            return tuple(_decode_value(v) for v in value["$tuple"])
        if "$set" in value:
            return {_decode_value(v) for v in value["$set"]}
        if "$frozenset" in value:
            return frozenset(_decode_value(v) for v in value["$frozenset"])
        if "$dict" in value:
            return {
                _decode_value(k): _decode_value(v) for k, v in value["$dict"]
            }
        raise DumpError(f"unknown tagged value: {sorted(value)}")
    return value


def dump_database(db: Database) -> dict:
    """Produce the portable document for an open database."""
    store = db.store
    objects = []
    for ref in store.all_objects():
        oid = ref.oid
        graph = store.graph(oid)
        versions = []
        for node in graph.walk_temporal():
            state = store.materialize(Vid(oid, node.serial))
            # Re-encode through the codec to get a plain state document:
            # registered objects become (type name, state dict).
            raw = serialization.encode(state)
            versions.append(
                {
                    "serial": node.serial,
                    "dprev": node.dprev,
                    "ctime": node.ctime,
                    "payload": raw.hex(),
                }
            )
        objects.append(
            {
                "oid": oid.value,
                "type": store.type_name(oid),
                "max_serial": graph.max_serial,
                "versions": versions,
            }
        )
    return {
        "format": FORMAT_VERSION,
        "oid_counter": db.catalog.peek_value("ode.oid"),
        "objects": objects,
    }


def load_database(dump: dict, db: Database) -> int:
    """Rebuild a dumped database into a freshly created, empty ``db``.

    Returns the number of objects loaded.  Raises :class:`DumpError` for
    unknown formats and refuses non-empty targets.
    """
    if dump.get("format") != FORMAT_VERSION:
        raise DumpError(f"unsupported dump format {dump.get('format')!r}")
    if db.store.object_count() != 0:
        raise DumpError("load target must be an empty database")
    store = db.store
    for record in dump["objects"]:
        oid = Oid(record["oid"])
        type_name = record["type"]
        graph = VersionGraph()
        entry = _Entry(oid, type_name, graph, None, None)
        for version in record["versions"]:
            content = bytes.fromhex(version["payload"])
            data = store._store_payload(
                entry, version["serial"], content, version["dprev"], None
            )
            graph.create(version["serial"], version["dprev"], version["ctime"], data)
            store._bytes_cache[Vid(oid, version["serial"])] = content
        # Restore the serial high-water mark (deleted serials never return).
        graph._max_serial = max(graph._max_serial, record["max_serial"])
        store._save_entry(entry, None)
        cluster_payload = serialization.encode((type_name, oid))
        entry.cluster_rid = store._clusters.insert(cluster_payload, None)
        store._table[oid] = entry
        store._by_type.setdefault(type_name, set()).add(oid)
    while db.catalog.peek_value("ode.oid") < dump["oid_counter"]:
        db.catalog.next_value("ode.oid")
    db.checkpoint()
    return len(dump["objects"])
