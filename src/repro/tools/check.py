"""fsck for ode-py databases: deep integrity verification.

Checks, for an open database:

1. every version graph validates structurally (acyclic derivation,
   temporal chain consistent, parent/child symmetry);
2. every live version's payload materializes through the codec (delta
   chains reconstruct, spanning records assemble);
3. every payload record in the versions heap is referenced by exactly one
   live version (no orphans, no double-references);
4. cluster membership matches the object table in both directions;
5. the object-table heap decodes record by record.

Returns a :class:`CheckReport`; ``ok`` is True when no problems were
found.  Never mutates the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import Database
from repro.core.identity import Vid
from repro.errors import OdeError
from repro.storage.heap import Rid


@dataclass
class CheckReport:
    """Findings of one :func:`check_database` run."""

    objects_checked: int = 0
    versions_checked: int = 0
    problems: list[str] = field(default_factory=list)
    #: Advisory findings (performance hazards, not integrity violations);
    #: they do not affect :attr:`ok`.
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the database passed every check."""
        return not self.problems

    def render(self) -> str:
        """Human-readable report."""
        header = (
            f"checked {self.objects_checked} objects / "
            f"{self.versions_checked} versions: "
            + ("OK" if self.ok else f"{len(self.problems)} problem(s)")
        )
        lines = [header] + [f"  - {p}" for p in self.problems]
        lines.extend(f"  ! {w}" for w in self.warnings)
        return "\n".join(lines)


def check_database(db: Database) -> CheckReport:
    """Run every integrity check against an open database."""
    report = CheckReport()
    store = db.store
    catalog = db.catalog

    versions_heap = catalog.ensure_heap("ode.versions")
    objects_heap = catalog.ensure_heap("ode.objects")
    clusters_heap = catalog.ensure_heap("ode.clusters")

    # 5. object-table heap decodes.
    from repro.storage import serialization

    table_rids = set()
    for rid, payload in objects_heap.scan():
        table_rids.add(rid)
        try:
            serialization.decode(payload)
        except OdeError as exc:
            report.problems.append(f"object-table record {rid} undecodable: {exc}")

    # Delta chains longer than 2x the keyframe interval mean the policy's
    # keyframe cadence is not bounding replay cost (deep interior deletes
    # or a migrated database) -- worth a warning, not a problem.
    chain_warn_threshold = (
        2 * store.policy.keyframe_interval if store.policy.kind == "delta" else 0
    )

    # 1+2: graphs validate, versions materialize; collect payload refs.
    referenced: dict[Rid, Vid] = {}
    for ref in store.all_objects():
        report.objects_checked += 1
        graph = store.graph(ref.oid)
        try:
            graph.validate()
        except OdeError as exc:
            report.problems.append(f"object {ref.oid!r}: graph invalid: {exc}")
            continue
        depths: dict[int, int] = {}  # serial -> delta steps back to a keyframe
        longest_chain = 0
        for node in graph.walk_temporal():
            report.versions_checked += 1
            vid = Vid(ref.oid, node.serial)
            kind, page_id, slot = node.data
            if kind == "D" and node.dprev is not None:
                depths[node.serial] = depth = depths.get(node.dprev, 0) + 1
                longest_chain = max(longest_chain, depth)
            rid = Rid(page_id, slot)
            if rid in referenced:
                report.problems.append(
                    f"payload record {rid} referenced by both "
                    f"{referenced[rid]!r} and {vid!r}"
                )
            referenced[rid] = vid
            try:
                store.materialize(vid)
            except OdeError as exc:
                report.problems.append(f"version {vid!r} unmaterializable: {exc}")
        if chain_warn_threshold and longest_chain > chain_warn_threshold:
            report.warnings.append(
                f"object {ref.oid!r}: delta chain of {longest_chain} steps "
                f"exceeds 2x keyframe interval "
                f"({store.policy.keyframe_interval}); materialization of its "
                f"deep versions will be slow until a keyframe is written"
            )

    # 3. orphan payload records.
    for rid, _payload in versions_heap.scan():
        if rid not in referenced:
            report.problems.append(f"orphan payload record at {rid}")

    # 4. cluster membership symmetric with the object table.
    cluster_oids = set()
    for rid, payload in clusters_heap.scan():
        try:
            type_name, oid = serialization.decode(payload)
        except (OdeError, ValueError) as exc:
            report.problems.append(f"cluster record {rid} undecodable: {exc}")
            continue
        if oid in cluster_oids:
            report.problems.append(f"object {oid!r} has duplicate cluster records")
        cluster_oids.add(oid)
        if not store.object_exists(oid):
            report.problems.append(
                f"cluster record {rid} names dead object {oid!r}"
            )
        elif store.type_name(oid) != type_name:
            report.problems.append(
                f"object {oid!r} clustered as {type_name!r} but typed "
                f"{store.type_name(oid)!r}"
            )
    for ref in store.all_objects():
        if ref.oid not in cluster_oids:
            report.problems.append(f"object {ref.oid!r} missing from clusters heap")

    return report
