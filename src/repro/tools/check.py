"""fsck for ode-py databases: deep integrity verification.

Checks, for an open database:

1. every version graph validates structurally (acyclic derivation,
   temporal chain consistent, parent/child symmetry);
2. every live version's payload materializes through the codec (delta
   chains reconstruct, spanning records assemble);
3. every payload record in the versions heap is referenced by exactly one
   live version (no orphans, no double-references);
4. cluster membership matches the object table in both directions;
5. the object-table heap decodes record by record.

With ``strict=True`` (used by the crash-matrix harness after every
simulated crash + recovery) it additionally cross-checks the physical
layers against each other:

6. every page owned by a registered heap has a structurally sound
   slotted layout (slot extents in bounds, no overlaps);
7. every page in the file is either unowned (zeroed/free) or tagged with
   a registered heap file id;
8. the durable object table round-trips: each record rebuilds a valid
   version graph, object ids are unique, and the result matches the
   in-memory table (oids, types, serials, record ids);
9. the ``ode.oid`` counter is at or above every live object id, so a
   recovered database can never re-issue an id.

Returns a :class:`CheckReport`; ``ok`` is True when no problems were
found.  Never mutates the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import Database
from repro.core.identity import Vid
from repro.core.vgraph import VersionGraph
from repro.errors import OdeError
from repro.storage.catalog import CATALOG_FILE_ID
from repro.storage.heap import Rid


@dataclass
class CheckReport:
    """Findings of one :func:`check_database` run."""

    objects_checked: int = 0
    versions_checked: int = 0
    problems: list[str] = field(default_factory=list)
    #: Advisory findings (performance hazards, not integrity violations);
    #: they do not affect :attr:`ok`.
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the database passed every check."""
        return not self.problems

    def render(self) -> str:
        """Human-readable report."""
        header = (
            f"checked {self.objects_checked} objects / "
            f"{self.versions_checked} versions: "
            + ("OK" if self.ok else f"{len(self.problems)} problem(s)")
        )
        lines = [header] + [f"  - {p}" for p in self.problems]
        lines.extend(f"  ! {w}" for w in self.warnings)
        return "\n".join(lines)


def check_database(db: Database, strict: bool = False) -> CheckReport:
    """Run every integrity check against an open database.

    ``strict`` adds the physical cross-consistency checks (page layouts,
    page ownership, object-table round-trip, id-counter floor) that the
    crash-matrix harness runs after every simulated crash.
    """
    report = CheckReport()
    store = db.store
    catalog = db.catalog

    versions_heap = catalog.ensure_heap("ode.versions")
    objects_heap = catalog.ensure_heap("ode.objects")
    clusters_heap = catalog.ensure_heap("ode.clusters")

    # 5. object-table heap decodes.
    from repro.storage import serialization

    table_rids = set()
    for rid, payload in objects_heap.scan():
        table_rids.add(rid)
        try:
            serialization.decode(payload)
        except OdeError as exc:
            report.problems.append(f"object-table record {rid} undecodable: {exc}")

    # Delta chains longer than 2x the keyframe interval mean the policy's
    # keyframe cadence is not bounding replay cost (deep interior deletes
    # or a migrated database) -- worth a warning, not a problem.
    chain_warn_threshold = (
        2 * store.policy.keyframe_interval if store.policy.kind == "delta" else 0
    )

    # 1+2: graphs validate, versions materialize; collect payload refs.
    referenced: dict[Rid, Vid] = {}
    for ref in store.all_objects():
        report.objects_checked += 1
        graph = store.graph(ref.oid)
        try:
            graph.validate()
        except OdeError as exc:
            report.problems.append(f"object {ref.oid!r}: graph invalid: {exc}")
            continue
        depths: dict[int, int] = {}  # serial -> delta steps back to a keyframe
        longest_chain = 0
        for node in graph.walk_temporal():
            report.versions_checked += 1
            vid = Vid(ref.oid, node.serial)
            kind, page_id, slot = node.data
            if kind == "D" and node.dprev is not None:
                depths[node.serial] = depth = depths.get(node.dprev, 0) + 1
                longest_chain = max(longest_chain, depth)
            rid = Rid(page_id, slot)
            if rid in referenced:
                report.problems.append(
                    f"payload record {rid} referenced by both "
                    f"{referenced[rid]!r} and {vid!r}"
                )
            referenced[rid] = vid
            try:
                store.materialize(vid)
            except OdeError as exc:
                report.problems.append(f"version {vid!r} unmaterializable: {exc}")
        if chain_warn_threshold and longest_chain > chain_warn_threshold:
            report.warnings.append(
                f"object {ref.oid!r}: delta chain of {longest_chain} steps "
                f"exceeds 2x keyframe interval "
                f"({store.policy.keyframe_interval}); materialization of its "
                f"deep versions will be slow until a keyframe is written"
            )

    # 3. orphan payload records.
    for rid, _payload in versions_heap.scan():
        if rid not in referenced:
            report.problems.append(f"orphan payload record at {rid}")

    # 10. content-addressed refcount audit: the blob index must agree
    # with a from-scratch recount of the payload records, live keys must
    # have their files, and counts are never negative.
    from repro.storage import blobs as blobstore

    recounted: dict[str, int] = {}
    for _rid, payload in versions_heap.scan():
        if blobstore.is_ref(payload):
            key, _size = blobstore.decode_ref(payload)
            recounted[key] = recounted.get(key, 0) + 1
    entries = store.blob_entries()
    for key, count in recounted.items():
        entry = entries.get(key)
        if entry is None:
            report.problems.append(
                f"blob {key[:12]}… referenced by {count} payload record(s) "
                "but absent from the index"
            )
        elif entry[0] != count:
            report.problems.append(
                f"blob {key[:12]}…: index refcount {entry[0]} != "
                f"{count} referencing payload record(s)"
            )
    for key, (refcount, _size) in entries.items():
        if refcount < 0:
            report.problems.append(
                f"blob {key[:12]}…: negative refcount {refcount}"
            )
        elif refcount > 0:
            if key not in recounted:
                report.problems.append(
                    f"blob {key[:12]}…: refcount {refcount} but no payload "
                    "record references it"
                )
            if not store.blobs.exists(key):
                report.problems.append(
                    f"blob {key[:12]}…: live (refcount {refcount}) but its "
                    "content file is missing"
                )

    # 4. cluster membership symmetric with the object table.
    cluster_oids = set()
    for rid, payload in clusters_heap.scan():
        try:
            type_name, oid = serialization.decode(payload)
        except (OdeError, ValueError) as exc:
            report.problems.append(f"cluster record {rid} undecodable: {exc}")
            continue
        if oid in cluster_oids:
            report.problems.append(f"object {oid!r} has duplicate cluster records")
        cluster_oids.add(oid)
        if not store.object_exists(oid):
            report.problems.append(
                f"cluster record {rid} names dead object {oid!r}"
            )
        elif store.type_name(oid) != type_name:
            report.problems.append(
                f"object {oid!r} clustered as {type_name!r} but typed "
                f"{store.type_name(oid)!r}"
            )
    for ref in store.all_objects():
        if ref.oid not in cluster_oids:
            report.problems.append(f"object {ref.oid!r} missing from clusters heap")

    if strict:
        _check_strict(db, report)

    return report


def _check_strict(db: Database, report: CheckReport) -> None:
    """Physical cross-consistency checks (crash-matrix teeth)."""
    from repro.storage import serialization

    store = db.store
    catalog = db.catalog
    pool = db._pool
    disk = db._disk

    # Registered heaps by file id (the catalog heap owns itself).
    heaps = {CATALOG_FILE_ID: catalog.heap_by_id(CATALOG_FILE_ID)}
    for name in catalog.heap_names():
        heap = catalog.ensure_heap(name)
        heaps[heap.file_id] = heap

    # 6+7: page layout soundness and page ownership.  Pages with flags 0
    # are unowned -- free-listed, or allocated by a loser transaction and
    # never claimed (a benign leak, since nothing references them).
    for page_id in range(1, disk.num_pages):
        with pool.page(page_id) as page:
            flags = page.flags
            if flags == 0:
                continue
            if flags not in heaps:
                report.problems.append(
                    f"page {page_id} tagged with unknown heap file id {flags}"
                )
                continue
            for problem in page.validate():
                report.problems.append(f"page {page_id} (heap {flags}): {problem}")

    # 8: durable object table round-trips and matches the in-memory table.
    objects_heap = catalog.ensure_heap("ode.objects")
    durable: dict = {}
    for rid, payload in objects_heap.scan():
        try:
            oid, type_name, graph_state = serialization.decode(payload)
            graph = VersionGraph.from_state(graph_state)
        except (OdeError, ValueError, TypeError) as exc:
            report.problems.append(
                f"object-table record {rid} does not round-trip: {exc}"
            )
            continue
        if oid in durable:
            report.problems.append(f"object {oid!r} has duplicate table records")
            continue
        durable[oid] = (rid, type_name, graph)
    live = {ref.oid: store.graph(ref.oid) for ref in store.all_objects()}
    for oid in sorted(set(durable) ^ set(live), key=lambda o: o.value):
        where = "durable table only" if oid in durable else "in-memory table only"
        report.problems.append(f"object {oid!r} present in {where}")
    for oid, (rid, type_name, graph) in durable.items():
        if oid not in live:
            continue
        if type_name != store.type_name(oid):
            report.problems.append(
                f"object {oid!r} typed {type_name!r} on disk but "
                f"{store.type_name(oid)!r} in memory"
            )
        if graph.serials() != live[oid].serials():
            report.problems.append(
                f"object {oid!r}: durable serials {graph.serials()} != "
                f"live serials {live[oid].serials()}"
            )

    # 9: the id counter must never re-issue a live object id.
    next_oid = catalog.peek_value("ode.oid")
    for oid in live:
        if oid.value > next_oid:
            report.problems.append(
                f"object {oid!r} is above the ode.oid counter ({next_oid}); "
                f"its id could be re-issued"
            )

    # 10 (strict): the durable blob index round-trips and matches the
    # in-memory one, and no content file lacks an index record entirely
    # (runtime sweeps cover aborts; recovery repair covers crashes).
    blobs_heap = catalog.ensure_heap("ode.blobs")
    durable_blobs: dict[str, tuple[int, int]] = {}
    for rid, payload in blobs_heap.scan():
        try:
            key, refcount, size = serialization.decode(payload)
        except (OdeError, ValueError, TypeError) as exc:
            report.problems.append(f"blob-index record {rid} undecodable: {exc}")
            continue
        if key in durable_blobs:
            report.problems.append(
                f"blob {key[:12]}… has duplicate index records"
            )
            continue
        durable_blobs[key] = (refcount, size)
    in_memory = store.blob_entries()
    if durable_blobs != in_memory:
        extra = set(durable_blobs) ^ set(in_memory)
        diff = extra or {
            k for k in durable_blobs if durable_blobs[k] != in_memory[k]
        }
        report.problems.append(
            f"blob index diverges between disk and memory for "
            f"{sorted(k[:12] for k in diff)}"
        )
    for key in store.orphan_blob_keys():
        report.problems.append(
            f"blob file {key[:12]}… has no index record (leaked content)"
        )
