"""Crash-matrix harness: deterministic fault injection x recovery verification.

For every enumerated scenario the harness runs one mixed workload
(creates, in-place writes, ``newversion``, ``pdelete``, savepoint +
``rollback_to``, a deliberately aborted transaction -- on two concurrent
worker threads) against a fresh database while exactly one fault is
armed: a crash, a torn write, a short write, or an fsync failure at a
named failpoint (see :mod:`repro.storage.faults`).  When the fault
fires, the simulated process is dead -- every subsequent failpoint
raises, so not even ``abort`` handlers can touch the files.

The harness then reopens the database (running WAL recovery) and
demands three things:

1. ``tools.check.check_database(db, strict=True)`` reports no problems:
   graphs validate, payloads materialize, pages are structurally sound,
   the durable object table round-trips, the id counter is safe;
2. every *acknowledged* operation survived: each tracked object's
   recovered state equals the last model its worker recorded as
   committed -- or, if the fault hit mid-operation, the model of that
   one in-flight operation (atomicity: nothing in between);
3. no loser effects are visible: in-flight creates either exist
   completely or not at all, and no untracked objects appear.

Fidelity notes.  The workload runs on a real filesystem, which is the
*kindest possible* page cache: ordinary writes are never lost, so loss
is modelled explicitly (torn/short writes materialize the worst-case
partial write; a "crash" freezes the files exactly as written).  Data
pages are assumed to be written atomically at page granularity -- the
classic ARIES assumption absent full-page logging -- so torn-write
scenarios target the WAL (frame CRCs detect the tear) and the meta page
(torn-safe by layout), not data pages.

Run it:

    PYTHONPATH=src python -m repro.tools.crashmatrix [--smoke] [-v]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import Database, PersistentObject, persistent
from repro.core.identity import Oid, Vid
from repro.errors import SerializationError
from repro.shard import ShardedDatabase
from repro.storage import faults, serialization
from repro.storage.faults import (
    ERROR_FAILPOINTS,
    FAILPOINTS,
    WRITE_FAILPOINTS,
    FaultPlan,
    InjectedFaultError,
    SimulatedCrash,
)
from repro.tools.check import check_database

#: Rounds of mixed operations per worker thread.
ROUNDS = 8

#: Bytes added to the blob payload per growth step; sized so later steps
#: exceed one page (forcing spanning records) and shrink-then-grow cycles
#: force in-page compaction.
BLOB_CHUNK = 1300

#: newversions per explicit-transaction batch.  Graph state costs ~25
#: bytes per node in the object table, so two batches push that record
#: past one page -- the spanning/compaction paths that inline payloads
#: used to reach before payloads moved to the content-addressed store.
HISTORY_BATCH = 85

_JOIN_TIMEOUT = 60.0


def _workload_type(name: str):
    """``@persistent`` that survives double execution of this module.

    ``python -m repro.tools.crashmatrix`` runs this module body a second
    time as ``__main__`` after ``repro.tools`` already imported it; reuse
    the canonical registered class so encode/decode stay consistent.
    """

    def wrap(cls: type) -> type:
        try:
            return persistent(name=name)(cls)
        except SerializationError:
            return serialization.lookup_type(name)

    return wrap


@_workload_type("crashmatrix.Item")
class Item(PersistentObject):
    """Small versioned record: exercises the object table + version graphs."""

    def __init__(self, tag: int = 0, val: int = 0) -> None:
        self.tag = tag
        self.val = val


@_workload_type("crashmatrix.Blob")
class Blob(PersistentObject):
    """Growing payload: exercises page growth, compaction, and spanning."""

    def __init__(self, tag: int = 0, text: str = "") -> None:
        self.tag = tag
        self.text = text


# -- scenarios ---------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One armed fault (plus an optional second fault during recovery)."""

    failpoint: str
    action: str  # "crash" | "torn_write" | "short_write" | "fsync_error"
    hit: int = 1
    keep: int = 0
    #: When set, a *second* crash is armed while recovery itself runs
    #: (the reopen), and recovery must then succeed on a third, clean open.
    recovery_failpoint: str | None = None

    @property
    def name(self) -> str:
        parts = [self.failpoint, self.action, f"hit{self.hit}"]
        if self.action in ("torn_write", "short_write"):
            parts.append(f"keep{self.keep}")
        if self.recovery_failpoint:
            parts.append(f"then-{self.recovery_failpoint}")
        return ":".join(parts)

    def plan(self) -> FaultPlan:
        plan = FaultPlan()
        if self.action == "crash":
            plan.crash(self.failpoint, hit=self.hit)
        elif self.action == "torn_write":
            plan.torn_write(self.failpoint, hit=self.hit, keep=self.keep)
        elif self.action == "short_write":
            plan.short_write(self.failpoint, hit=self.hit, keep=self.keep)
        elif self.action == "fsync_error":
            plan.fsync_error(self.failpoint, hit=self.hit)
        else:  # pragma: no cover - enumerate_scenarios only emits the above
            raise ValueError(f"unknown action {self.action!r}")
        return plan


#: hit ordinals per failpoint for plain crash scenarios.  Frequent
#: failpoints get a second, higher ordinal so the crash also lands deep
#: in the workload (mid-transaction, mid-rollback, mid-checkpoint).
_CRASH_HITS: dict[str, tuple[int, ...]] = {
    "wal.append": (1, 30),
    "wal.flush.pre_write": (1, 8),
    "wal.flush.post_write": (1, 8),
    "wal.flush.pre_fsync": (1, 8),
    "wal.flush.post_fsync": (1, 8),
    "wal.truncate.pre": (1, 2),
    "wal.truncate.post": (1, 2),
    "disk.write_page.pre": (1, 6),
    # A *crash* at the write site dies before any byte is written, which
    # respects the page-write-atomicity assumption (torn data pages are
    # out of scope -- see the module docstring).
    "disk.write_page.write": (1, 6),
    "disk.write_page.post": (1, 6),
    # hit=1 fires while the database file is being *created* (all-zero
    # meta page on reopen); hit=5 fires on a steady-state meta update.
    "disk.write_meta.pre": (1, 5),
    "disk.allocate.pre": (2, 6),
    "disk.allocate.post": (2, 6),
    # Not reached by this workload (no vacuum); kept so arming unreached
    # failpoints is exercised too.
    "disk.free_page": (1,),
    "disk.ensure_allocated": (1,),
    "disk.sync.pre": (1, 2),
    "disk.sync.fsync": (1, 2),
    "disk.sync.post": (1, 2),
    "heap.insert.pre": (1, 20),
    "heap.insert.post": (1, 20),
    "heap.update.pre": (1, 15),
    "heap.update.post": (1, 15),
    "heap.delete.pre": (1, 4),
    "heap.delete.post": (1, 4),
    "heap.span.fragment": (1, 4),
    # Fire during transaction abort / savepoint rollback in the workload
    # (undo uses the replay helpers), i.e. a crash *mid-rollback*.
    "heap.replay_insert": (1, 6),
    "heap.replay_delete": (1,),
    "page.compact": (1,),
    "page.update.grow": (1, 5),
}


def enumerate_scenarios(smoke: bool = False) -> list[Scenario]:
    """The full crash matrix (or a small smoke subset for CI)."""
    scenarios: list[Scenario] = []
    for failpoint, hits in _CRASH_HITS.items():
        assert failpoint in FAILPOINTS, failpoint
        for hit in hits:
            scenarios.append(Scenario(failpoint, "crash", hit=hit))
    # Torn writes: WAL frames (CRC detects the tear) and the meta page
    # (torn-safe by layout; hit >= 2 so creation's first meta write -- the
    # only one whose magic bytes are not a same-value overwrite -- lands).
    for hit, keep in ((2, 7), (6, -3)):
        scenarios.append(Scenario("wal.flush.write", "torn_write", hit=hit, keep=keep))
    for hit, keep in ((2, 7), (4, 12)):
        scenarios.append(
            Scenario("disk.write_meta.write", "torn_write", hit=hit, keep=keep)
        )
    # Short write: the process survives, the transaction aborts, and the
    # WAL's truncate-back repair must keep the file replayable.
    scenarios.append(Scenario("wal.flush.write", "short_write", hit=3, keep=10))
    # fsync failures: surfaced to the caller, transaction aborts cleanly.
    for failpoint in sorted(ERROR_FAILPOINTS):
        scenarios.append(Scenario(failpoint, "fsync_error", hit=1))
    # Double crash: the first recovery is itself interrupted.
    scenarios.append(
        Scenario(
            "heap.update.post", "crash", hit=10, recovery_failpoint="heap.replay_insert"
        )
    )
    scenarios.append(
        Scenario(
            "wal.flush.post_write", "crash", hit=6, recovery_failpoint="wal.truncate.pre"
        )
    )
    if smoke:
        picked: dict[tuple[str, str], Scenario] = {}
        for scenario in scenarios:
            picked.setdefault((scenario.failpoint, scenario.action), scenario)
        scenarios = list(picked.values())
    return scenarios


# -- workload ----------------------------------------------------------------


@dataclass
class _Tracked:
    """Ledger entry for one persistent object a worker owns."""

    kind: str  # "item" | "blob"
    ref: object
    oid_value: int
    committed: dict
    pending: dict | None = None


class _Worker:
    """One workload thread plus its operation ledger.

    The ledger protocol makes verification a dict compare: before issuing
    an operation the worker records the post-state as ``pending``; once
    the database call returns (the commit is acknowledged) it promotes it
    to ``committed``.  A crash can therefore leave at most one tracked
    object with a pending model, and recovery must observe either its
    committed or its pending state -- nothing else.
    """

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.item: _Tracked | None = None
        self.blob: _Tracked | None = None
        #: Set while a pnew is in flight (oid unknown until it returns).
        self.creating = False
        self.error: BaseException | None = None

    def tracked(self) -> list[_Tracked]:
        return [t for t in (self.item, self.blob) if t is not None]

    # -- ledger-protocol helpers --------------------------------------------

    @staticmethod
    def _attempt(tracked: _Tracked, new_model: dict, fn) -> None:
        tracked.pending = new_model
        fn()
        tracked.committed = new_model
        tracked.pending = None

    # -- the workload --------------------------------------------------------

    def setup(self, db: Database) -> None:
        """Create this worker's objects (runs on the main thread)."""
        self.creating = True
        ref = db.pnew(Item(tag=self.wid, val=0))
        self.item = _Tracked(
            "item", ref, ref.oid.value, {"val": 0, "versions": 1}
        )
        text = f"B{self.wid}:" + "x" * 600
        bref = db.pnew(Blob(tag=self.wid, text=text))
        self.blob = _Tracked(
            "blob", bref, bref.oid.value, {"pad": len(text), "versions": 1}
        )
        self.creating = False

    def run(self, db: Database) -> None:
        try:
            for j in range(ROUNDS):
                self._step(db, j)
            self._aborted_txn(db)
        except (SimulatedCrash, InjectedFaultError):
            pass  # expected: the armed fault fired on this thread
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised by runner
            self.error = exc

    def _step(self, db: Database, j: int) -> None:
        item, blob = self.item, self.blob
        assert item is not None and blob is not None
        op = j % 5
        if op == 0:
            # Autocommit attribute write through the generic reference.
            val = 1000 * (self.wid + 1) + 100 + j
            model = dict(item.committed, val=val)
            self._attempt(item, model, lambda: setattr(item.ref, "val", val))
        elif op == 1:
            # Explicit transaction: a *batch* of newversions + a write.
            # Version payloads are content-addressed (fixed-size heap
            # refs), so the record that grows with use is the object
            # table's graph-state entry -- the batches push it past a
            # page (forcing spanning + in-page compaction) the way big
            # inline payloads used to.
            val = 1000 * (self.wid + 1) + 200 + j
            model = dict(item.committed, val=val)
            model["versions"] += HISTORY_BATCH

            def txn_fn() -> None:
                with db.transaction():
                    for _ in range(HISTORY_BATCH):
                        db.newversion(item.ref)
                    item.ref.val = val

            self._attempt(item, model, txn_fn)
        elif op == 2:
            # Shrink then grow the blob: two autocommits.  The shrink
            # leaves a hole; the regrow forces compaction / relocation /
            # spanning once the payload outgrows a page.
            self._attempt(
                blob, dict(blob.committed, pad=1),
                lambda: setattr(blob.ref, "text", "s"),
            )
            pad = BLOB_CHUNK * (j + 2)
            self._attempt(
                blob, dict(blob.committed, pad=pad),
                lambda: setattr(blob.ref, "text", "b" * pad),
            )
        elif op == 3:
            # Savepoint dance: the rolled-back write must never surface.
            val = 1000 * (self.wid + 1) + 300 + j
            model = dict(item.committed, val=val)

            def sp_fn() -> None:
                with db.transaction():
                    item.ref.val = 777
                    sp = db.savepoint()
                    item.ref.val = 888
                    db.rollback_to(sp)
                    item.ref.val = val

            self._attempt(item, model, sp_fn)
        else:
            # Prune the two oldest versions once history is deep enough
            # (exercises heap.delete on the version-index records).
            if item.committed["versions"] > 3:
                # Each pdelete is its own autocommit, so each gets its
                # own ledger attempt (a crash between them is a valid
                # intermediate state).
                for _ in range(2):
                    model = dict(item.committed)
                    model["versions"] -= 1

                    def prune_fn() -> None:
                        versions = db.versions(item.ref)
                        db.pdelete(versions[0])

                    self._attempt(item, model, prune_fn)
            else:
                val = 1000 * (self.wid + 1) + 400 + j
                model = dict(item.committed, val=val)
                self._attempt(item, model, lambda: setattr(item.ref, "val", val))

    def _aborted_txn(self, db: Database) -> None:
        """A transaction that aborts on purpose: undo must erase it.

        The insert (``newversion``) exercises ``heap.replay_delete`` and
        the update exercises ``heap.replay_insert`` during the abort.
        """
        item = self.item
        assert item is not None
        item.pending = dict(item.committed)  # abort changes nothing
        try:
            with db.transaction():
                db.newversion(item.ref)
                item.ref.val = 999_999
                raise _DeliberateAbort()
        except _DeliberateAbort:
            pass
        item.pending = None


class _DeliberateAbort(Exception):
    pass


def _run_workload(path: Path) -> list[_Worker]:
    """Run the mixed workload until it completes or the armed fault fires.

    Always returns the workers (and their ledgers), even on a crash.
    """
    workers = [_Worker(0), _Worker(1)]
    try:
        db = Database(path, pool_size=8)
        for worker in workers:
            worker.setup(db)
        db.checkpoint()
        threads = [
            threading.Thread(
                target=worker.run, args=(db,), name=f"crashmatrix-w{worker.wid}"
            )
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=_JOIN_TIMEOUT)
            if thread.is_alive():
                raise RuntimeError(f"workload thread {thread.name} hung")
        if not faults.is_crashed():
            db.checkpoint()
            db.close()
    except (SimulatedCrash, InjectedFaultError):
        pass  # the simulated machine is dead; leave the files as they lie
    for worker in workers:
        if worker.error is not None:
            raise worker.error
    return workers


# -- verification ------------------------------------------------------------


def _observe(db: Database, tracked: _Tracked) -> dict | None:
    """The recovered state of one tracked object (None if absent)."""
    oid = Oid(tracked.oid_value)
    if not db.object_exists(oid):
        return None
    versions = db.versions(oid)
    obj = db.materialize(versions[-1].vid)
    if tracked.kind == "item":
        return {"val": obj.val, "versions": len(versions)}
    return {"pad": len(obj.text), "versions": len(versions)}


def _verify(db: Database, workers: list[_Worker], problems: list[str]) -> None:
    known_oids: set[int] = set()
    in_flight_creates = any(w.creating for w in workers)
    for worker in workers:
        for tracked in worker.tracked():
            known_oids.add(tracked.oid_value)
            state = _observe(db, tracked)
            allowed: list[dict | None] = [tracked.committed]
            if tracked.pending is not None:
                allowed.append(tracked.pending)
            if state not in allowed:
                problems.append(
                    f"worker {worker.wid} {tracked.kind} "
                    f"(oid {tracked.oid_value}): recovered {state!r}, "
                    f"expected committed {tracked.committed!r}"
                    + (
                        f" or pending {tracked.pending!r}"
                        if tracked.pending is not None
                        else ""
                    )
                )
    # Loser absence: the only admissible untracked object is a single
    # in-flight pnew (setup is sequential), and then only whole or absent
    # -- partial presence is caught by the strict check above.
    unknown = [
        ref.oid.value
        for ref in db.store.all_objects()
        if ref.oid.value not in known_oids
    ]
    budget = 1 if in_flight_creates else 0
    if len(unknown) > budget:
        problems.append(
            f"{len(unknown)} untracked object(s) {sorted(unknown)} survived "
            f"recovery (at most {budget} in-flight create admissible)"
        )


def _usability_probe(db: Database, problems: list[str]) -> None:
    """The recovered database must accept new work."""
    try:
        ref = db.pnew(Item(tag=99, val=1))
        db.newversion(ref)
        ref.val = 2
        if ref.val != 2 or db.version_count(ref) != 2:
            problems.append("post-recovery probe object read back wrong")
        db.pdelete(ref)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        problems.append(f"post-recovery write probe failed: {exc!r}")


# -- the matrix --------------------------------------------------------------


@dataclass
class ScenarioResult:
    scenario: Scenario
    fired: bool
    crashed: bool
    recovery_crashed: bool = False
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class MatrixReport:
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def fired_failpoints(self) -> set[str]:
        """Failpoints whose armed fault actually triggered in some scenario."""
        return {r.scenario.failpoint for r in self.results if r.fired}

    def render(self) -> str:
        fired = self.fired_failpoints
        lines = [
            f"crash matrix: {len(self.results)} scenarios, "
            f"{len(fired)} distinct failpoints fired, "
            + ("all OK" if self.ok else "FAILURES")
        ]
        for result in self.results:
            status = "ok" if result.ok else "FAIL"
            note = "fired" if result.fired else "not reached"
            lines.append(f"  [{status}] {result.scenario.name} ({note})")
            lines.extend(f"      - {p}" for p in result.problems)
        return "\n".join(lines)


def run_scenario(base_dir: Path, scenario: Scenario) -> ScenarioResult:
    """Run one workload under ``scenario``'s fault, then recover and verify."""
    path = base_dir / scenario.name.replace(":", "_").replace("-", "_")
    injector = faults.activate(scenario.plan())
    try:
        workers = _run_workload(path)
        fired = bool(injector.fired)
        crashed = injector.crashed
    finally:
        faults.deactivate()

    result = ScenarioResult(scenario, fired=fired, crashed=crashed)

    # Optional second crash while recovery itself runs.
    if scenario.recovery_failpoint is not None:
        plan2 = FaultPlan().crash(scenario.recovery_failpoint, hit=1)
        injector2 = faults.activate(plan2)
        try:
            db = Database(path)
            db.close()  # recovery never reached the second failpoint
        except SimulatedCrash:
            result.recovery_crashed = True
        finally:
            faults.deactivate()

    # Clean reopen: recovery must complete and the result must check out.
    try:
        db = Database(path)
    except Exception as exc:  # noqa: BLE001 - unrecoverable = the finding
        result.problems.append(f"reopen after crash failed: {exc!r}")
        return result
    try:
        check = check_database(db, strict=True)
        result.problems.extend(f"strict check: {p}" for p in check.problems)
        _verify(db, workers, result.problems)
        _usability_probe(db, result.problems)
    finally:
        db.close()
    return result


def run_matrix(
    base_dir: Path | None = None,
    scenarios: list[Scenario] | None = None,
    verbose: bool = False,
) -> MatrixReport:
    """Run every scenario; each gets a fresh database directory."""
    if scenarios is None:
        scenarios = enumerate_scenarios()
    report = MatrixReport()
    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="crashmatrix-")
        base_dir = Path(tmp.name)
    try:
        for scenario in scenarios:
            result = run_scenario(base_dir, scenario)
            report.results.append(result)
            if verbose:
                status = "ok" if result.ok else "FAIL"
                note = "fired" if result.fired else "not reached"
                print(f"[{status}] {scenario.name} ({note})", flush=True)
                for problem in result.problems:
                    print(f"    - {problem}", flush=True)
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


# -- the 2PC matrix (cross-shard transactions; repro.shard) -------------------


@_workload_type("crashmatrix.Account")
class Account(PersistentObject):
    """Transfer-workload record: the invariant is the sum of balances."""

    def __init__(self, tag: int = 0, bal: int = 0) -> None:
        self.tag = tag
        self.bal = bal


_TWOPC_NSHARDS = 3
_TWOPC_ACCOUNTS = 6
_TWOPC_BALANCE = 100
_TWOPC_ROUNDS = 6

#: The windows where the global verdict is already durable: a crash there
#: MUST resolve to commit (both account writes survive).  Everywhere
#: earlier, presumed abort MUST roll both back.
_DECIDED_WINDOWS = frozenset(
    {"shard.2pc.post_decision", "shard.2pc.post_ack", "shard.2pc.pre_forget"}
)

#: Crash hit ordinals per 2PC failpoint.  The workload is single-threaded
#: so ordinals are deterministic: a transfer touches two shards, firing
#: pre_prepare once, post_prepare twice, post_ack twice, the rest once --
#: the chosen hits land on the first transfer (one or both participants
#: prepared / acked) and again deep in the run with history behind it.
_TWOPC_CRASH_HITS: dict[str, tuple[int, ...]] = {
    "shard.2pc.pre_prepare": (1, 3),
    "shard.2pc.post_prepare": (1, 2, 5),
    "shard.2pc.pre_decision": (1, 3),
    "shard.2pc.post_decision": (1, 3),
    "shard.2pc.post_ack": (1, 2, 5),
    "shard.2pc.pre_forget": (1, 3),
}


def enumerate_twopc_scenarios(smoke: bool = False) -> list[Scenario]:
    """Crash scenarios covering every cross-shard 2PC window.

    The double-crash entries interrupt restart *resolution* itself: the
    first one mid-rollback of a presumed-abort participant, the second
    mid-flush of a resolution commit -- recovery must then succeed on a
    clean third open (undo of compensation records self-cancels, commit
    resolution is an idempotent re-append).
    """
    scenarios: list[Scenario] = []
    for failpoint, hits in _TWOPC_CRASH_HITS.items():
        assert failpoint in FAILPOINTS, failpoint
        for hit in hits:
            scenarios.append(Scenario(failpoint, "crash", hit=hit))
    scenarios.append(
        Scenario(
            "shard.2pc.post_prepare", "crash", hit=2,
            recovery_failpoint="heap.replay_insert",
        )
    )
    scenarios.append(
        Scenario(
            "shard.2pc.post_decision", "crash", hit=1,
            recovery_failpoint="wal.flush.pre_fsync",
        )
    )
    if smoke:
        picked: dict[str, Scenario] = {}
        for scenario in scenarios:
            picked.setdefault(scenario.failpoint, scenario)
        # Keep one resolution-interrupting double crash in the smoke set.
        picked["double"] = next(
            s for s in scenarios if s.recovery_failpoint is not None
        )
        scenarios = list(picked.values())
    return scenarios


@dataclass
class _Transfer:
    """Ledger entry for one cross-shard transfer."""

    src: int  # account index
    dst: int
    #: Post-transfer balances of (src, dst).
    src_bal: int
    dst_bal: int


class _TransferLedger:
    """Single-threaded transfer workload state: balances + in-flight op."""

    def __init__(self) -> None:
        self.oid_values: list[int] = []
        self.committed: list[int] = [_TWOPC_BALANCE] * _TWOPC_ACCOUNTS
        self.pending: _Transfer | None = None

    @property
    def total(self) -> int:
        return _TWOPC_BALANCE * _TWOPC_ACCOUNTS


def _run_twopc_workload(path: Path) -> _TransferLedger:
    """Cross-shard transfers until done or the armed fault fires."""
    ledger = _TransferLedger()
    try:
        router = ShardedDatabase(path, nshards=_TWOPC_NSHARDS, pool_size=8)
        refs = [
            router.pnew(Account(tag=i, bal=_TWOPC_BALANCE))
            for i in range(_TWOPC_ACCOUNTS)
        ]
        ledger.oid_values = [ref.oid.value for ref in refs]
        router.checkpoint()
        for j in range(_TWOPC_ROUNDS):
            src = j % _TWOPC_ACCOUNTS
            dst = (j + 1) % _TWOPC_ACCOUNTS  # adjacent -> different shards
            amount = j + 1
            transfer = _Transfer(
                src, dst,
                ledger.committed[src] - amount,
                ledger.committed[dst] + amount,
            )
            ledger.pending = transfer
            with router.transaction():
                refs[src].bal = transfer.src_bal
                refs[dst].bal = transfer.dst_bal
            ledger.committed[src] = transfer.src_bal
            ledger.committed[dst] = transfer.dst_bal
            ledger.pending = None
        if not faults.is_crashed():
            router.close()
    except (SimulatedCrash, InjectedFaultError):
        pass  # the simulated machine is dead; leave the files as they lie
    return ledger


def _verify_twopc(
    router: ShardedDatabase,
    ledger: _TransferLedger,
    scenario: Scenario,
    problems: list[str],
) -> None:
    """Atomicity, durability and exactness of the recovered balances."""
    observed: list[int] = []
    for value in ledger.oid_values:
        oid = Oid(value)
        if not router.object_exists(oid):
            problems.append(f"account oid {value} lost by recovery")
            return
        observed.append(router.deref(oid).bal)
    if sum(observed) != ledger.total:
        problems.append(
            f"conservation broken: balances {observed} sum to "
            f"{sum(observed)}, expected {ledger.total}"
        )
    expected = list(ledger.committed)
    transfer = ledger.pending
    if transfer is None:
        if observed != expected:
            problems.append(
                f"recovered balances {observed} != committed {expected}"
            )
        return
    # One transfer was in flight.  Both its writes survive or neither --
    # and which of the two is not a matter of luck: a durable verdict
    # (crash at/after post_decision) must commit, no verdict must abort.
    applied = list(expected)
    applied[transfer.src] = transfer.src_bal
    applied[transfer.dst] = transfer.dst_bal
    if scenario.failpoint in _DECIDED_WINDOWS:
        if observed != applied:
            problems.append(
                f"decided transfer lost: recovered {observed}, the durable "
                f"verdict demands {applied}"
            )
    else:
        if observed != expected:
            problems.append(
                f"undecided transfer not presumed-aborted: recovered "
                f"{observed}, expected rollback to {expected}"
            )


def _twopc_usability_probe(
    router: ShardedDatabase, ledger: _TransferLedger, problems: list[str]
) -> None:
    """The recovered sharded database must accept new cross-shard work."""
    try:
        a = router.deref(Oid(ledger.oid_values[0]))
        b = router.deref(Oid(ledger.oid_values[1]))
        before = (a.bal, b.bal)
        with router.transaction():
            a.bal = before[0] - 1
            b.bal = before[1] + 1
        with router.transaction():
            a.bal = before[0]
            b.bal = before[1]
        if (a.bal, b.bal) != before:
            problems.append("post-recovery transfer probe read back wrong")
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        problems.append(f"post-recovery 2PC probe failed: {exc!r}")


def run_twopc_scenario(base_dir: Path, scenario: Scenario) -> ScenarioResult:
    """One cross-shard workload under ``scenario``'s fault, then recover."""
    path = base_dir / scenario.name.replace(":", "_").replace("-", "_")
    injector = faults.activate(scenario.plan())
    try:
        ledger = _run_twopc_workload(path)
        fired = bool(injector.fired)
        crashed = injector.crashed
    finally:
        faults.deactivate()

    result = ScenarioResult(scenario, fired=fired, crashed=crashed)
    if not fired:
        result.problems.append(
            f"failpoint {scenario.failpoint} hit {scenario.hit} never fired"
        )
        return result

    # Optional second crash while restart resolution itself runs.
    if scenario.recovery_failpoint is not None:
        plan2 = FaultPlan().crash(scenario.recovery_failpoint, hit=1)
        injector2 = faults.activate(plan2)
        try:
            router = ShardedDatabase(path)
            router.close()  # resolution never reached the second failpoint
        except SimulatedCrash:
            result.recovery_crashed = True
        finally:
            faults.deactivate()

    # Clean reopen: resolution must complete and the result must check out.
    try:
        router = ShardedDatabase(path)
    except Exception as exc:  # noqa: BLE001 - unrecoverable = the finding
        result.problems.append(f"reopen after crash failed: {exc!r}")
        return result
    try:
        for idx, shard in enumerate(router.shards):
            check = check_database(shard, strict=True)
            result.problems.extend(
                f"shard {idx} strict check: {p}" for p in check.problems
            )
            if shard.in_doubt_txns():
                result.problems.append(
                    f"shard {idx} still has in-doubt transactions "
                    f"{sorted(shard.in_doubt_txns())} after resolution"
                )
            if shard.coordinator_decisions():
                result.problems.append(
                    f"shard {idx} still holds coordinator decisions "
                    f"after resolution"
                )
        _verify_twopc(router, ledger, scenario, result.problems)
        _twopc_usability_probe(router, ledger, result.problems)
    finally:
        router.close()
    return result


def run_twopc_matrix(
    base_dir: Path | None = None,
    scenarios: list[Scenario] | None = None,
    verbose: bool = False,
) -> MatrixReport:
    """Run every 2PC scenario; each gets a fresh sharded directory."""
    if scenarios is None:
        scenarios = enumerate_twopc_scenarios()
    report = MatrixReport()
    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="crashmatrix-2pc-")
        base_dir = Path(tmp.name)
    try:
        for scenario in scenarios:
            result = run_twopc_scenario(base_dir, scenario)
            report.results.append(result)
            if verbose:
                status = "ok" if result.ok else "FAIL"
                note = "fired" if result.fired else "not reached"
                print(f"[{status}] {scenario.name} ({note})", flush=True)
                for problem in result.problems:
                    print(f"    - {problem}", flush=True)
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


# -- the GC matrix (retention pruning + blob reclaim; repro.core.gc) ----------

_GC_OBJECTS = 4
_GC_VERSIONS = 10
_GC_KEEP = 3

#: Reclaim-protocol windows armed while the *workload* runs a GC.  The
#: ``gc.repair.*`` windows are deliberately absent: repair fires at every
#: database open (the orphan sweep is unconditional), so arming them here
#: would crash the workload's own setup open -- they are exercised as
#: ``recovery_failpoint`` double-crash scenarios instead.
_GC_CRASH_HITS: dict[str, tuple[int, ...]] = {
    # Once per reclaim batch: hit=2 lands on the second tombstone, i.e.
    # after one batch already committed its index deletes.
    "gc.tombstone.pre": (1, 2),
    "gc.tombstone.post": (1, 2),
    # Once per key: hit=1 is the batch's first unlink (tombstone durable,
    # nothing unlinked yet); hit=5 is deep inside a batch, files and
    # index records interleaved across the crash point.
    "gc.unlink.pre": (1, 5),
    "gc.unlink.post": (1, 5),
    "gc.index.pre": (1, 5),
    "gc.index.post": (1, 5),
}


def enumerate_gc_scenarios(smoke: bool = False) -> list[Scenario]:
    """Crash scenarios covering every blob-reclaim protocol window.

    The double-crash entries interrupt the *repair* of an interrupted
    reclaim: the first before any repair action ran, the second after
    repair finished but before its WAL truncate could persist -- a clean
    third open must repair again (repair is idempotent) and converge.
    """
    scenarios: list[Scenario] = []
    for failpoint, hits in _GC_CRASH_HITS.items():
        assert failpoint in FAILPOINTS, failpoint
        for hit in hits:
            scenarios.append(Scenario(failpoint, "crash", hit=hit))
    scenarios.append(
        Scenario(
            "gc.unlink.post", "crash", hit=3, recovery_failpoint="gc.repair.pre"
        )
    )
    scenarios.append(
        Scenario(
            "gc.index.pre", "crash", hit=3, recovery_failpoint="gc.repair.post"
        )
    )
    if smoke:
        picked: dict[str, Scenario] = {}
        for scenario in scenarios:
            picked.setdefault(scenario.failpoint, scenario)
        picked["double"] = next(
            s for s in scenarios if s.recovery_failpoint is not None
        )
        scenarios = list(picked.values())
    return scenarios


@dataclass
class _GcLedger:
    """What the GC workload promised before the fault fired.

    ``keep`` holds, per object, the serials retention must preserve (the
    latest, the last ``_GC_KEEP``, and any tagged serial); every other
    serial is *doomed* -- the collector may have deleted it, or the crash
    may have left it behind.  Recovered state is valid iff each object's
    surviving serials satisfy ``keep <= survivors <= all``.
    """

    oid_values: list[int] = field(default_factory=list)
    #: oid value -> serial -> the val written at that serial.
    vals: dict[int, dict[int, int]] = field(default_factory=dict)
    keep: dict[int, set[int]] = field(default_factory=dict)
    all_serials: dict[int, set[int]] = field(default_factory=dict)
    #: True once every write (and the retention/tag setup) is committed;
    #: the armed faults fire inside run_gc, after this point.
    setup_done: bool = False


def _run_gc_workload(path: Path) -> _GcLedger:
    """Build doomed history, then collect it until the armed fault fires."""
    from repro.core.gc import RetentionPolicy

    ledger = _GcLedger()
    try:
        db = Database(path, pool_size=8)
        refs = []
        for i in range(_GC_OBJECTS):
            ref = db.pnew(Item(tag=i, val=i * 1000))
            refs.append(ref)
            oid = ref.oid.value
            ledger.oid_values.append(oid)
            ledger.vals[oid] = {1: i * 1000}
        db.set_retention(Item, RetentionPolicy(keep_last_n=_GC_KEEP))
        for i, ref in enumerate(refs):
            oid = ref.oid.value
            for serial in range(2, _GC_VERSIONS + 1):
                db.newversion(ref)
                val = i * 1000 + serial  # distinct payload -> distinct blob
                ref.val = val
                ledger.vals[oid][serial] = val
        # One tagged version outside the keep-last window: keep_tagged
        # must shield it from the sweep.
        db.tag_version(db.versions(refs[0])[1], "pinned")
        for i, oid in enumerate(ledger.oid_values):
            serials = set(ledger.vals[oid])
            ledger.all_serials[oid] = serials
            keep = set(sorted(serials)[-_GC_KEEP:])
            if i == 0:
                keep.add(2)  # the tagged serial
            ledger.keep[oid] = keep
        db.checkpoint()
        ledger.setup_done = True
        # Small batches -> several tombstone/unlink/index rounds, so the
        # armed window is crossed with committed batches on either side.
        for _ in range(6):
            report = db.run_gc(batch_limit=5)
            if report.candidates_remaining == 0 and report.blobs_unlinked == 0:
                break
        if not faults.is_crashed():
            db.close()
    except (SimulatedCrash, InjectedFaultError):
        pass  # the simulated machine is dead; leave the files as they lie
    return ledger


def _blob_leaks(db: Database) -> list[str]:
    """Content files with no index record (must be none after repair)."""
    return [key[:12] for key in db.store.orphan_blob_keys()]


def _verify_gc(db: Database, ledger: _GcLedger, problems: list[str]) -> None:
    """Retention safety: kept versions survive with their exact payloads."""
    for oid_value in ledger.oid_values:
        oid = Oid(oid_value)
        if not db.object_exists(oid):
            problems.append(f"object oid {oid_value} lost by the collector")
            continue
        survivors = {v.vid.serial for v in db.versions(oid)}
        keep = ledger.keep[oid_value]
        if not keep <= survivors:
            problems.append(
                f"oid {oid_value}: retained serials {sorted(keep - survivors)} "
                f"deleted (survivors {sorted(survivors)})"
            )
        if not survivors <= ledger.all_serials[oid_value]:
            problems.append(
                f"oid {oid_value}: phantom serials "
                f"{sorted(survivors - ledger.all_serials[oid_value])}"
            )
        for serial in survivors & ledger.all_serials[oid_value]:
            obj = db.materialize(Vid(oid, serial))
            expected = ledger.vals[oid_value][serial]
            if obj.val != expected:
                problems.append(
                    f"oid {oid_value} serial {serial}: val {obj.val!r}, "
                    f"expected {expected!r}"
                )


def _gc_convergence_probe(
    db: Database, ledger: _GcLedger, problems: list[str]
) -> None:
    """Post-recovery GC must finish the job: exact keep set, no debris."""
    try:
        for _ in range(4):
            report = db.run_gc(batch_limit=64)
            if report.candidates_remaining == 0:
                break
        else:
            problems.append(
                f"reclaim did not drain: {report.candidates_remaining} "
                f"candidate(s) remain after 4 passes"
            )
        for oid_value in ledger.oid_values:
            survivors = {v.vid.serial for v in db.versions(Oid(oid_value))}
            if survivors != ledger.keep[oid_value]:
                problems.append(
                    f"oid {oid_value}: post-recovery GC kept "
                    f"{sorted(survivors)}, retention demands "
                    f"{sorted(ledger.keep[oid_value])}"
                )
        leaks = _blob_leaks(db)
        if leaks:
            problems.append(f"blob files leaked after converged GC: {leaks}")
        stats = db.stats()
        if stats["blobs.count"] != stats["blobs.live"]:
            problems.append(
                f"converged GC left {stats['blobs.count'] - stats['blobs.live']} "
                f"zero-ref index entries"
            )
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        problems.append(f"post-recovery GC probe failed: {exc!r}")


def run_gc_scenario(base_dir: Path, scenario: Scenario) -> ScenarioResult:
    """One GC workload under ``scenario``'s fault, then recover and verify."""
    path = base_dir / scenario.name.replace(":", "_").replace("-", "_")
    injector = faults.activate(scenario.plan())
    try:
        ledger = _run_gc_workload(path)
        fired = bool(injector.fired)
        crashed = injector.crashed
    finally:
        faults.deactivate()

    result = ScenarioResult(scenario, fired=fired, crashed=crashed)
    if not fired:
        result.problems.append(
            f"failpoint {scenario.failpoint} hit {scenario.hit} never fired"
        )
        return result
    if not ledger.setup_done:
        result.problems.append("fault fired before the GC ran (setup crashed)")
        return result

    # Optional second crash while tombstone repair itself runs.
    if scenario.recovery_failpoint is not None:
        plan2 = FaultPlan().crash(scenario.recovery_failpoint, hit=1)
        injector2 = faults.activate(plan2)
        try:
            db = Database(path)
            db.close()  # repair never reached the second failpoint
        except SimulatedCrash:
            result.recovery_crashed = True
        finally:
            faults.deactivate()

    # Clean reopen: repair must complete and the result must check out.
    try:
        db = Database(path)
    except Exception as exc:  # noqa: BLE001 - unrecoverable = the finding
        result.problems.append(f"reopen after crash failed: {exc!r}")
        return result
    try:
        check = check_database(db, strict=True)
        result.problems.extend(f"strict check: {p}" for p in check.problems)
        leaks = _blob_leaks(db)
        if leaks:
            result.problems.append(f"blob files leaked past repair: {leaks}")
        _verify_gc(db, ledger, result.problems)
        _gc_convergence_probe(db, ledger, result.problems)
        _usability_probe(db, result.problems)
    finally:
        db.close()
    return result


def run_gc_matrix(
    base_dir: Path | None = None,
    scenarios: list[Scenario] | None = None,
    verbose: bool = False,
) -> MatrixReport:
    """Run every GC scenario; each gets a fresh database directory."""
    if scenarios is None:
        scenarios = enumerate_gc_scenarios()
    report = MatrixReport()
    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="crashmatrix-gc-")
        base_dir = Path(tmp.name)
    try:
        for scenario in scenarios:
            result = run_gc_scenario(base_dir, scenario)
            report.results.append(result)
            if verbose:
                status = "ok" if result.ok else "FAIL"
                note = "fired" if result.fired else "not reached"
                print(f"[{status}] {scenario.name} ({note})", flush=True)
                for problem in result.problems:
                    print(f"    - {problem}", flush=True)
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crashmatrix", description="fault-injection crash matrix"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="one scenario per (failpoint, action) pair -- fast CI subset",
    )
    parser.add_argument(
        "--twopc", action="store_true",
        help="run the cross-shard 2PC matrix instead of the single-node one",
    )
    parser.add_argument(
        "--gc", action="store_true",
        help="run the blob-reclaim GC matrix instead of the single-node one",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument(
        "--dir", type=Path, default=None,
        help="run under this directory instead of a temp dir (kept afterwards)",
    )
    args = parser.parse_args(argv)
    if args.twopc:
        scenarios = enumerate_twopc_scenarios(smoke=args.smoke)
        report = run_twopc_matrix(args.dir, scenarios, verbose=args.verbose)
    elif args.gc:
        scenarios = enumerate_gc_scenarios(smoke=args.smoke)
        report = run_gc_matrix(args.dir, scenarios, verbose=args.verbose)
    else:
        scenarios = enumerate_scenarios(smoke=args.smoke)
        report = run_matrix(args.dir, scenarios, verbose=args.verbose)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
