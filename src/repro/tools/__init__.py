"""Operational tools: inspection, integrity checking, and vacuum.

What a downstream user reaches for when a database directory looks odd:

* :func:`repro.tools.inspect.inspect_database` / ``python -m repro.tools.inspect``
  -- human-readable summary of a database directory;
* :func:`repro.tools.check.check_database` -- fsck-style deep integrity
  verification (every version materializes, every graph validates, no
  orphan payload records);
* :func:`repro.tools.vacuum.vacuum` -- rewrite a database into a fresh
  compact directory, dropping dead pages and fragmentation;
* :func:`repro.tools.crashmatrix.run_matrix` / ``python -m
  repro.tools.crashmatrix`` -- deterministic fault-injection crash matrix:
  crash/torn-write/short-write/fsync-failure at every storage failpoint,
  then recovery verification against the strict integrity check;
* :func:`repro.tools.stress.run_stress` / ``python -m repro.tools.stress``
  -- multi-threaded contention stress with lost-update and quiescence
  invariants;
* ``python -m repro.tools.explore`` -- deterministic interleaving
  explorer: replays 2-4-transaction scenarios under the cooperative
  scheduler (:mod:`repro.verify`) and judges every interleaving with the
  model-based serializability oracle (see ``docs/TESTING.md``).

The CLI-first tools (``stress``, ``explore``) are import-on-demand rather
than re-exported here: they pull in scenario/workload machinery that the
inspection helpers above never need.
"""

from repro.tools.check import CheckReport, check_database
from repro.tools.crashmatrix import (
    MatrixReport,
    Scenario,
    ScenarioResult,
    enumerate_scenarios,
    run_matrix,
    run_scenario,
)
from repro.tools.dump import DumpError, dump_database, load_database
from repro.tools.inspect import DatabaseSummary, inspect_database
from repro.tools.migrate import (
    MigrationError,
    MigrationReport,
    add_field,
    drop_field,
    migrate_cluster,
    rename_field,
)
from repro.tools.vacuum import VacuumReport, vacuum

__all__ = [
    "CheckReport",
    "check_database",
    "MatrixReport",
    "Scenario",
    "ScenarioResult",
    "enumerate_scenarios",
    "run_matrix",
    "run_scenario",
    "DumpError",
    "dump_database",
    "load_database",
    "MigrationError",
    "MigrationReport",
    "add_field",
    "drop_field",
    "migrate_cluster",
    "rename_field",
    "DatabaseSummary",
    "inspect_database",
    "VacuumReport",
    "vacuum",
]
