"""Sequential reference model of the paper's versioning semantics.

A deliberately naive, pure in-memory re-implementation of what the kernel
*means*: generic reference => temporally latest version, version id =>
that pinned version, ``newversion`` derives from its base and becomes the
latest, ``pdelete`` of a version splices both the temporal chain and the
derivation tree (children re-parent to the deleted version's parent),
``version_as_of`` answers by creation time.  No locks, no WAL, no caches,
no threads -- every operation is a few dict/list manipulations, written
independently of :mod:`repro.core.vgraph` (linear scans instead of
bisects, no shared code) so that agreement between the two is evidence,
not tautology.

The oracle (:mod:`repro.verify.oracle`) replays recorded transaction
histories against this model to decide serializability; the property
tests (``tests/core/test_vgraph_properties.py``) drive it in lockstep
with the real kernel under random operation sequences.

Objects are keyed by arbitrary hashable names chosen by the caller
(scenario-level keys, oids, whatever).  Creation times default to a
logical op counter; pass explicit ``ctime`` values to mirror a real run
(they are clamped to the newest live version's ctime exactly as
``VersionGraph.create`` clamps a rewound wall clock).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

Key = Hashable


class ModelError(Exception):
    """An operation the reference semantics reject (unknown key/serial...)."""


class _MVersion:
    __slots__ = ("serial", "dprev", "ctime", "value")

    def __init__(self, serial: int, dprev: int | None, ctime: float, value: Any) -> None:
        self.serial = serial
        self.dprev = dprev
        self.ctime = ctime
        self.value = value


class _MObject:
    __slots__ = ("versions", "max_serial")

    def __init__(self) -> None:
        self.versions: dict[int, _MVersion] = {}
        self.max_serial = 0


class ModelStore:
    """The reference implementation.  All operations are sequential."""

    def __init__(self) -> None:
        self._objects: dict[Key, _MObject] = {}
        self._clock = 0.0

    # -- internals -------------------------------------------------------------

    def _object(self, key: Key) -> _MObject:
        try:
            return self._objects[key]
        except KeyError:
            raise ModelError(f"no object {key!r}") from None

    def _version(self, key: Key, serial: int) -> _MVersion:
        obj = self._object(key)
        try:
            return obj.versions[serial]
        except KeyError:
            raise ModelError(f"no live version {serial} of {key!r}") from None

    def _chain(self, key: Key) -> list[int]:
        """Live serials in temporal order == ascending serial order."""
        return sorted(self._object(key).versions)

    def _tick(self, ctime: float | None, obj: _MObject) -> float:
        if ctime is None:
            self._clock += 1.0
            ctime = self._clock
        chain = sorted(obj.versions)
        if chain:
            newest = obj.versions[chain[-1]].ctime
            if ctime < newest:  # rewound clock: clamp, like vgraph.create
                ctime = newest
        return ctime

    # -- kernel operations -----------------------------------------------------

    def pnew(self, key: Key, value: Any, ctime: float | None = None) -> int:
        """Create object ``key`` with one version holding ``value``."""
        if key in self._objects:
            raise ModelError(f"object {key!r} already exists")
        obj = _MObject()
        self._objects[key] = obj
        serial = 1
        obj.versions[serial] = _MVersion(serial, None, self._tick(ctime, obj), value)
        obj.max_serial = serial
        return serial

    def newversion(
        self, key: Key, base: int | None = None, ctime: float | None = None
    ) -> tuple[int, int]:
        """Derive a new version; returns ``(serial, dprev)``.

        ``base=None`` is the generic-reference case: derive from the
        temporally latest version.  An explicit base serial is the
        specific-reference case (deriving from a non-latest base creates
        an alternative).
        """
        obj = self._object(key)
        if base is None:
            base = self.latest(key)
        elif base not in obj.versions:
            raise ModelError(f"no live version {base} of {key!r}")
        serial = obj.max_serial + 1
        obj.versions[serial] = _MVersion(
            serial, base, self._tick(ctime, obj), obj.versions[base].value
        )
        obj.max_serial = serial
        return serial, base

    def write(self, key: Key, value: Any, serial: int | None = None) -> int:
        """Overwrite a version's contents (latest when ``serial`` is None)."""
        if serial is None:
            serial = self.latest(key)
        self._version(key, serial).value = value
        return serial

    def read(self, key: Key, serial: int | None = None) -> Any:
        """A version's contents (the latest when ``serial`` is None)."""
        if serial is None:
            serial = self.latest(key)
        return self._version(key, serial).value

    def vdelete(self, key: Key, serial: int) -> None:
        """Delete one version (paper §4.4): children re-parent to its parent.

        Deleting the only version deletes the object, as ``pdelete`` does.
        """
        obj = self._object(key)
        victim = self._version(key, serial)
        if len(obj.versions) == 1:
            del self._objects[key]
            return
        for other in obj.versions.values():
            if other.dprev == serial:
                other.dprev = victim.dprev
        del obj.versions[serial]

    def odelete(self, key: Key) -> None:
        """Delete the whole object (every version)."""
        self._object(key)
        del self._objects[key]

    # -- retention --------------------------------------------------------------

    def doomed(
        self,
        key: Key,
        keep_last_n: int | None = None,
        keep_days: float | None = None,
        keep_tagged: bool = True,
        tags: Iterable[int] = (),
        now: float | None = None,
    ) -> list[int]:
        """Serials a retention policy displaces, oldest first (pure).

        The reference semantics, stated independently of the kernel's
        :func:`repro.core.gc.doomed_versions`: a wholly inactive policy
        (neither ``keep_last_n`` nor ``keep_days`` set) dooms nothing;
        the temporally latest version always survives; the protection
        rules are a *union* (recent by count, recent by age, tagged --
        any one of them shields a version).
        """
        if keep_last_n is None and keep_days is None:
            return []
        obj = self._object(key)
        chain = self._chain(key)
        if len(chain) <= 1:
            return []
        if now is None:
            now = self._clock
        tagged = set(tags) if keep_tagged else set()
        out: list[int] = []
        for position, serial in enumerate(chain):
            if serial == chain[-1]:
                continue  # the latest always survives
            if keep_last_n is not None and position >= len(chain) - keep_last_n:
                continue
            if keep_days is not None:
                if obj.versions[serial].ctime >= now - keep_days * 86400.0:
                    continue
            if serial in tagged:
                continue
            out.append(serial)
        return out

    def apply_retention(
        self,
        key: Key,
        keep_last_n: int | None = None,
        keep_days: float | None = None,
        keep_tagged: bool = True,
        tags: Iterable[int] = (),
        now: float | None = None,
    ) -> list[int]:
        """Delete what :meth:`doomed` selects; returns the deleted serials."""
        doomed = self.doomed(
            key,
            keep_last_n=keep_last_n,
            keep_days=keep_days,
            keep_tagged=keep_tagged,
            tags=tags,
            now=now,
        )
        for serial in doomed:
            self.vdelete(key, serial)
        return doomed

    # -- queries ---------------------------------------------------------------

    def exists(self, key: Key) -> bool:
        return key in self._objects

    def keys(self) -> list[Key]:
        return sorted(self._objects, key=repr)

    def serials(self, key: Key) -> list[int]:
        return self._chain(key)

    def latest(self, key: Key) -> int:
        chain = self._chain(key)
        if not chain:
            raise ModelError(f"object {key!r} has no versions")
        return chain[-1]

    def version_count(self, key: Key) -> int:
        return len(self._object(key).versions)

    # -- traversals (paper §4) -------------------------------------------------

    def dprevious(self, key: Key, serial: int) -> int | None:
        return self._version(key, serial).dprev

    def dnext(self, key: Key, serial: int) -> list[int]:
        self._version(key, serial)
        obj = self._object(key)
        return sorted(s for s, v in obj.versions.items() if v.dprev == serial)

    def tprevious(self, key: Key, serial: int) -> int | None:
        self._version(key, serial)
        older = [s for s in self._chain(key) if s < serial]
        return older[-1] if older else None

    def tnext(self, key: Key, serial: int) -> int | None:
        self._version(key, serial)
        newer = [s for s in self._chain(key) if s > serial]
        return newer[0] if newer else None

    def history(self, key: Key, serial: int) -> list[int]:
        """Derivation path of ``serial``, newest first."""
        path: list[int] = []
        current: int | None = serial
        while current is not None:
            path.append(current)
            current = self._version(key, current).dprev
        return path

    def leaves(self, key: Key) -> list[int]:
        obj = self._object(key)
        parents = {v.dprev for v in obj.versions.values() if v.dprev is not None}
        return [s for s in self._chain(key) if s not in parents]

    def alternatives(self, key: Key) -> list[list[int]]:
        paths = [list(reversed(self.history(key, leaf))) for leaf in self.leaves(key)]
        paths.sort()
        return paths

    def version_as_of(self, key: Key, timestamp: float) -> int | None:
        """Newest live version created at or before ``timestamp``."""
        best: int | None = None
        obj = self._object(key)
        for serial in self._chain(key):
            if obj.versions[serial].ctime <= timestamp:
                best = serial
        return best

    # -- state -----------------------------------------------------------------

    def clone(self) -> "ModelStore":
        copy = ModelStore()
        copy._clock = self._clock
        for key, obj in self._objects.items():
            twin = _MObject()
            twin.max_serial = obj.max_serial
            for serial, v in obj.versions.items():
                twin.versions[serial] = _MVersion(v.serial, v.dprev, v.ctime, v.value)
            copy._objects[key] = twin
        return copy

    def fingerprint(self, keys: Iterable[Key] | None = None) -> tuple:
        """Canonical comparable state: per key, the live ``(serial, dprev,
        value)`` rows plus the latest serial.  Creation times are excluded
        (the real kernel stamps wall-clock time; the model a logical one).
        """
        chosen = self.keys() if keys is None else sorted(keys, key=repr)
        out = []
        for key in chosen:
            if key not in self._objects:
                out.append((key, None))
                continue
            obj = self._objects[key]
            rows = tuple(
                (s, obj.versions[s].dprev, obj.versions[s].value)
                for s in self._chain(key)
            )
            out.append((key, (rows, self.latest(key))))
        return tuple(out)
