"""Concurrency scenarios for the interleaving explorer.

Each scenario is a declarative seed (replayable against both the real
database and the reference model), a fixed set of named thread bodies,
and the object keys the final-state check compares.  Bodies record every
semantic operation and observation into their
:class:`~repro.verify.oracle.ThreadLog`; the oracle decides afterwards
whether some serial order explains what they saw.

Scenario rules:

* Every observation happens under two-phase locking (attribute reads
  inside explicit transactions S-lock the object; traversal-only
  transactions take an explicit SHARED lock first, because the facade's
  traversals are deliberately lock-free) or through a pinned snapshot.
  Bare unlocked live-store reads are *documented* to see in-flight state
  and would make any interleaving "non-serializable" by construction.
* Bodies catch only the expected concurrency-control outcomes (deadlock
  victim, lock deadline) and record them as aborts.  Anything else is a
  thread error the explorer reports as a harness failure.
* Bodies are deterministic apart from scheduling: no clocks, no RNG.

``small`` scenarios (2 transactions) are the bounded-exhaustive set; the
``mixed_*`` scenarios are for seeded random exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import PersistentObject, Vid, persistent
from repro.core.transactions import SHARED
from repro.errors import DeadlockError, LockTimeoutError, SerializationError, TransactionAborted
from repro.storage import serialization
from repro.verify.oracle import ThreadLog

#: Concurrency-control outcomes a scenario body absorbs as an abort.
CONFLICTS = (DeadlockError, LockTimeoutError, TransactionAborted)


def _scenario_type(name: str):
    """``@persistent`` that survives double execution of this module
    (``python -m repro.tools.explore`` re-runs the body as ``__main__``)."""

    def wrap(cls: type) -> type:
        try:
            return persistent(name=name)(cls)
        except SerializationError:
            return serialization.lookup_type(name)

    return wrap


@_scenario_type("verify.Cell")
class Cell(PersistentObject):
    """One versioned integer -- the smallest observable unit of state."""

    def __init__(self, value: int = 0) -> None:
        self.value = value


class _Rollback(Exception):
    """Deliberate scenario-internal abort signal."""


@dataclass(frozen=True)
class Scenario:
    name: str
    doc: str
    #: Oracle-shaped event tuples replayed against the db and the model.
    seed: tuple[tuple, ...]
    #: (thread name, body) in spawn order; body(db, refs, log).
    threads: tuple[tuple[str, Callable], ...]
    #: Object keys compared in the final-state check.
    keys: tuple[str, ...]
    #: True for the 2-txn bounded-exhaustive set.
    small: bool = True


# -- thread body builders ------------------------------------------------------


def _rmw(key: str, delta: int):
    """Read-modify-write transaction: the classic lost-update shape."""

    def body(db, refs, log: ThreadLog) -> None:
        ref = refs[key]
        log.begin()
        try:
            with db.transaction():
                value = ref.value  # S-locks, upgrades to X on the write
                log.read(key, value)
                ref.value = value + delta
                log.write(key, value + delta)
        except CONFLICTS as exc:
            log.abort(type(exc).__name__)
        else:
            log.commit()

    return body


def _derive(key: str, value: int):
    """newversion from the latest, then fill in the new version."""

    def body(db, refs, log: ThreadLog) -> None:
        ref = refs[key]
        log.begin()
        try:
            with db.transaction():
                vref = db.newversion(ref)  # X-locks the object
                serial = vref.vid.serial
                parent = db.dprevious(vref)
                log.newversion(key, serial, parent.vid.serial if parent else None)
                vref.value = value
                log.write(key, value, serial)
        except CONFLICTS as exc:
            log.abort(type(exc).__name__)
        else:
            log.commit()

    return body


def _write_then_rollback(key: str, value: int):
    """Write uncommitted state, then abort -- must be visible to no one."""

    def body(db, refs, log: ThreadLog) -> None:
        ref = refs[key]
        log.begin()
        try:
            with db.transaction():
                ref.value = value
                log.write(key, value)
                raise _Rollback()
        except _Rollback:
            log.abort("rollback")
        except CONFLICTS as exc:
            log.abort(type(exc).__name__)

    return body


def _write_pair(key_a: str, key_b: str, value: int):
    """Commit the same value into two objects -- torn views are detectable."""

    def body(db, refs, log: ThreadLog) -> None:
        log.begin()
        try:
            with db.transaction():
                refs[key_a].value = value
                log.write(key_a, value)
                refs[key_b].value = value
                log.write(key_b, value)
        except CONFLICTS as exc:
            log.abort(type(exc).__name__)
        else:
            log.commit()

    return body


def _snap_reader(keys: tuple[str, ...], pins: int):
    """Pin a snapshot ``pins`` times; each pinned view must be one prefix."""

    def body(db, refs, log: ThreadLog) -> None:
        for _ in range(pins):
            with db.snapshot() as snap:
                log.pin()
                for key in keys:
                    log.read(key, snap.deref(refs[key].oid).value)
                log.unpin()

    return body


def _vdelete(key: str, serial: int):
    """Delete one mid-chain version inside a transaction."""

    def body(db, refs, log: ThreadLog) -> None:
        oid = refs[key].oid
        log.begin()
        try:
            with db.transaction():
                db.pdelete(db.deref(Vid(oid, serial)))
                log.vdelete(key, serial)
        except CONFLICTS as exc:
            log.abort(type(exc).__name__)
        else:
            log.commit()

    return body


def _traverse(key: str, serial: int):
    """Observe the derivation/temporal shape around one version.

    The facade's traversals are lock-free by design, so the transaction
    takes an explicit SHARED lock first -- without it a concurrent
    uncommitted ``pdelete`` would be legitimately visible.
    """

    def body(db, refs, log: ThreadLog) -> None:
        oid = refs[key].oid
        log.begin()
        try:
            with db.transaction() as txn:
                txn.lock(oid, SHARED)
                vref = db.deref(Vid(oid, serial))
                log.history(
                    key, serial, [v.vid.serial for v in db.history(vref)]
                )
                tprev = db.tprevious(vref)
                log.tprevious(key, serial, tprev.vid.serial if tprev else None)
        except CONFLICTS as exc:
            log.abort(type(exc).__name__)
        else:
            log.commit()

    return body


def _mixed(read_key: str, delta: int, derive_key: str):
    """RMW one object and grow another's chain in a single transaction."""

    def body(db, refs, log: ThreadLog) -> None:
        log.begin()
        try:
            with db.transaction():
                value = refs[read_key].value
                log.read(read_key, value)
                refs[read_key].value = value + delta
                log.write(read_key, value + delta)
                vref = db.newversion(refs[derive_key])
                parent = db.dprevious(vref)
                log.newversion(
                    derive_key, vref.vid.serial, parent.vid.serial if parent else None
                )
        except CONFLICTS as exc:
            log.abort(type(exc).__name__)
        else:
            log.commit()

    return body


# -- the registry --------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> None:
    SCENARIOS[scenario.name] = scenario


_register(
    Scenario(
        name="lost_update",
        doc="Two read-modify-write transactions increment the same cell; "
        "strict 2PL must serialize them or victim one (upgrade-upgrade "
        "deadlock), never lose an increment.",
        seed=(("pnew", "x", 0),),
        threads=(("T1", _rmw("x", 1)), ("T2", _rmw("x", 1))),
        keys=("x",),
    )
)

_register(
    Scenario(
        name="newversion_race",
        doc="Two transactions race newversion on one object; serials and "
        "derivation parents must match some serial order.",
        seed=(("pnew", "x", 10),),
        threads=(("T1", _derive("x", 21)), ("T2", _derive("x", 22))),
        keys=("x",),
    )
)

_register(
    Scenario(
        name="uncommitted_read",
        doc="A transaction writes then rolls back while a reader pins "
        "snapshots; the uncommitted value must never be observable.",
        seed=(("pnew", "x", 10),),
        threads=(
            ("T1", _write_then_rollback("x", 101)),
            ("R1", _snap_reader(("x",), pins=2)),
        ),
        keys=("x",),
    )
)

_register(
    Scenario(
        name="write_vs_snapshot",
        doc="A transaction commits the same value into two cells while a "
        "reader pins snapshots; every pinned view must be untorn and "
        "visibility monotone across pins.",
        seed=(("pnew", "x", 1), ("pnew", "y", 1)),
        threads=(
            ("T1", _write_pair("x", "y", 2)),
            ("R1", _snap_reader(("x", "y"), pins=2)),
        ),
        keys=("x", "y"),
    )
)

_register(
    Scenario(
        name="delete_vs_traverse",
        doc="One transaction deletes a mid-chain version (re-parenting its "
        "child) while another observes the derivation shape under a "
        "SHARED lock; both serial orders are legal, a mix is not.",
        seed=(
            ("pnew", "x", 10),
            ("newversion", "x", None, 2, 1),
            ("write", "x", 2, 20),
            ("newversion", "x", None, 3, 2),
            ("write", "x", 3, 30),
        ),
        threads=(("T1", _vdelete("x", 2)), ("T2", _traverse("x", 3))),
        keys=("x",),
    )
)

_register(
    Scenario(
        name="mixed_3txn",
        doc="Three transactions over two objects: RMW, RMW+derive, derive. "
        "Seeded-random exploration territory.",
        seed=(("pnew", "x", 0), ("pnew", "y", 0)),
        threads=(
            ("T1", _rmw("x", 1)),
            ("T2", _mixed("y", 5, "x")),
            ("T3", _derive("y", 7)),
        ),
        keys=("x", "y"),
        small=False,
    )
)

_register(
    Scenario(
        name="mixed_4way",
        doc="Three writer transactions plus a pinned snapshot reader over "
        "two objects -- the widest random-exploration scenario.",
        seed=(("pnew", "x", 0), ("pnew", "y", 0)),
        threads=(
            ("T1", _rmw("x", 1)),
            ("T2", _mixed("y", 5, "x")),
            ("T3", _rmw("y", 3)),
            ("R1", _snap_reader(("x", "y"), pins=2)),
        ),
        keys=("x", "y"),
        small=False,
    )
)


def small_scenarios() -> list[Scenario]:
    """The 2-txn bounded-exhaustive set, registry order."""
    return [s for s in SCENARIOS.values() if s.small]
