"""Deterministic interleaving explorer and serializability oracle.

Layers (each importable on its own):

* :mod:`repro.verify.hooks` -- the ``sched_point`` / ``cond_wait`` /
  ``sched_notify`` hooks the kernel is instrumented with.  Import-light
  and zero-overhead when nothing is attached; this module is the only
  part of the package the core ever loads.
* :mod:`repro.verify.scheduler` -- the cooperative scheduler that turns
  thread interleaving into an explicit, replayable decision sequence.
* :mod:`repro.verify.model` -- the sequential reference model of the
  paper's versioning semantics.
* :mod:`repro.verify.oracle` -- history recording and the
  serializability + snapshot-visibility check.
* :mod:`repro.verify.scenarios` / :mod:`repro.verify.explorer` -- the
  concurrency scenarios and the bounded-exhaustive / seeded-random
  schedule explorer (CLI: ``python -m repro.tools.explore``).

Heavier submodules load lazily so that the core's ``hooks`` import does
not drag the whole database package in a circle.
"""

from repro.verify import hooks

_LAZY = ("scheduler", "model", "oracle", "scenarios", "explorer")

__all__ = ["hooks", *_LAZY]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return importlib.import_module(f"repro.verify.{name}")
    raise AttributeError(f"module 'repro.verify' has no attribute {name!r}")
