"""Scheduling hooks for deterministic interleaving exploration.

The kernel's concurrency-sensitive paths call :func:`sched_point` at named
yield points (lock acquire, commit publish, snapshot pin, WAL flush, ...).
With no scheduler attached -- the production case and every ordinary test
run -- a hook is one global load plus a ``None`` check, the same shape as
:mod:`repro.storage.faults` failpoints, so instrumentation costs nothing
measurable.  With a scheduler attached (see
:class:`repro.verify.scheduler.CooperativeScheduler`) each hook becomes a
cooperative yield: the calling thread parks until the scheduler grants it
the next step, which makes every interleaving of the registered threads a
deterministic function of the scheduler's decision sequence.

Three hook shapes exist:

``sched_point(name)``
    A plain yield point.  Registered threads park here awaiting a grant;
    everything else (unregistered threads, no scheduler) falls through.

``cond_wait(cond, timeout)``
    Replaces ``cond.wait(timeout)`` inside the lock manager.  Under a
    scheduler the thread releases ``cond``, parks as *blocked* (not
    runnable until some release event wakes it), and re-acquires ``cond``
    before returning -- the caller's wait loop then re-checks its
    condition exactly as after a real wait.

``sched_notify()``
    Placed after each ``cond.notify_all()`` / lock release.  Marks blocked
    threads wake-pending so the scheduler may grant them a retry.

This module must stay import-light (no other ``repro`` imports): the core
modules import it, and it is loaded on every database open.
"""

from __future__ import annotations

import threading
from typing import Any

#: The attached scheduler, or None.  Process-global, like faults._active.
_scheduler: Any = None


def sched_point(name: str) -> None:
    """Named yield point.  No-op unless a scheduler is attached."""
    sched = _scheduler
    if sched is not None:
        sched.on_point(name)


def cond_wait(cond: threading.Condition, timeout: float | None) -> bool:
    """``cond.wait(timeout)``, made schedulable.

    Without a scheduler this *is* ``cond.wait(timeout)``.  With one, the
    calling thread (if registered) parks as blocked and only resumes when
    granted a retry after a wake event; the condition lock is released
    while parked and re-acquired before returning, so the caller's
    re-check loop sees the same protocol as a native wait.
    """
    sched = _scheduler
    if sched is None:
        return cond.wait(timeout)
    return sched.on_cond_wait(cond, timeout)


def sched_notify() -> None:
    """Signal that blocked threads may now make progress."""
    sched = _scheduler
    if sched is not None:
        sched.on_notify()


def attach(scheduler: Any) -> None:
    """Install ``scheduler`` as the process-global schedule authority."""
    global _scheduler
    if _scheduler is not None and _scheduler is not scheduler:
        raise RuntimeError("a scheduler is already attached")
    _scheduler = scheduler


def detach() -> None:
    """Remove the attached scheduler (idempotent)."""
    global _scheduler
    _scheduler = None


def attached() -> Any:
    """The currently attached scheduler, or None."""
    return _scheduler
