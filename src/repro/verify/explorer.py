"""Drive scenarios through the cooperative scheduler and judge them.

One *run* = fresh database in a temp directory, seed applied, scenario
threads executed under a :class:`CooperativeScheduler` with a given
decision schedule (explicit prefix, seeded random tail, or default
first-runnable), then the oracle's serializability check over the
recorded histories and the real final state.

Exploration modes:

* **bounded exhaustive** -- depth-first over the decision tree: run with
  the current prefix (default choices beyond it), then backtrack to the
  rightmost decision with an untried alternative and increment it.  The
  tree is finite because every run terminates; ``max_runs`` bounds the
  walk for scenarios whose trees are large (the result says whether the
  walk was complete).
* **seeded random** -- independent runs whose decisions are drawn from a
  per-run seed derived deterministically from the base seed.

A failing run is **minimized** by repeatedly zeroing non-default decision
choices while the failure persists (the default choice 0 is "first
runnable thread", so zeros are the quiet baseline), then trimming
trailing zeros -- the result is the shortest deviation-from-default
prefix that still reproduces the problem, small enough to read.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any

from repro.core.database import Database
from repro.core.identity import Vid
from repro.core.pointers import Ref
from repro.verify import hooks
from repro.verify.oracle import ThreadLog, Verdict, check
from repro.verify.scenarios import Cell, Scenario
from repro.verify.scheduler import CooperativeScheduler, SchedulerStuck


@dataclass
class RunOutcome:
    """Everything one scheduled run produced."""

    scenario: str
    mutation: str | None
    schedule: list[int]
    branching: list[int]
    trace: list[tuple[str, str]]
    verdict: Verdict | None = None
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None or (
            self.verdict is not None and not self.verdict.serializable
        )

    @property
    def reason(self) -> str:
        if self.error is not None:
            return self.error
        if self.verdict is not None and not self.verdict.serializable:
            return self.verdict.reason or "not serializable"
        return "ok"

    def to_repro(self) -> dict[str, Any]:
        """JSON-serializable repro record (the CI artifact payload)."""
        out: dict[str, Any] = {
            "scenario": self.scenario,
            "mutation": self.mutation,
            "schedule": self.schedule,
            "branching": self.branching,
            "reason": self.reason,
            "trace": [list(step) for step in self.trace],
        }
        if self.verdict is not None:
            out["permutations_checked"] = self.verdict.permutations_checked
            out["details"] = self.verdict.details[:8]
        return out


@dataclass
class ExploreResult:
    scenario: str
    mode: str
    runs: int = 0
    complete: bool = False
    failures: list[RunOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _apply_seed(db: Database, seed: tuple[tuple, ...]) -> dict[str, Ref]:
    """Build the pre-run state; mirrors the oracle's model seed replay."""
    refs: dict[str, Ref] = {}
    for event in seed:
        kind = event[0]
        if kind == "pnew":
            _, key, value = event
            refs[key] = db.pnew(Cell(value))
        elif kind == "newversion":
            _, key, base, serial, dprev = event
            target = refs[key] if base is None else db.deref(Vid(refs[key].oid, base))
            vref = db.newversion(target)
            assert vref.vid.serial == serial, "seed out of step with the kernel"
            parent = db.dprevious(vref)
            assert (parent.vid.serial if parent else None) == dprev
        elif kind == "write":
            _, key, serial, value = event
            if serial is None:
                refs[key].value = value
            else:
                db.deref(Vid(refs[key].oid, serial)).value = value
        else:
            raise ValueError(f"unsupported seed event {event!r}")
    return refs


def _real_fingerprint(db: Database, refs: dict[str, Ref], keys: tuple[str, ...]) -> tuple:
    """The real database's final state, in ``ModelStore.fingerprint`` shape."""
    out = []
    for key in sorted(keys, key=repr):
        ref = refs[key]
        if not ref.is_alive():
            out.append((key, None))
            continue
        rows = []
        for vref in db.versions(ref):
            parent = db.dprevious(vref)
            rows.append(
                (vref.vid.serial, parent.vid.serial if parent else None, vref.value)
            )
        out.append((key, (tuple(rows), db.latest_vid(ref.oid).serial)))
    return tuple(out)


MUTATIONS = ("publish-exclusion",)


def run_schedule(
    scenario: Scenario,
    schedule: list[int] | None = None,
    seed: int | None = None,
    mutate: str | None = None,
    wall_timeout: float = 30.0,
) -> RunOutcome:
    """Execute one scheduled run of ``scenario`` and judge it."""
    if mutate is not None and mutate not in MUTATIONS:
        raise ValueError(f"unknown mutation {mutate!r} (known: {MUTATIONS})")
    tmp = tempfile.mkdtemp(prefix="repro-explore-")
    outcome = RunOutcome(scenario.name, mutate, [], [], [])
    try:
        db = Database(tmp, checkpoint_threshold=0)
        try:
            refs = _apply_seed(db, scenario.seed)
            if mutate == "publish-exclusion":
                db.publish_exclusion = False
            logs = {name: ThreadLog(name) for name, _ in scenario.threads}
            sched = CooperativeScheduler(
                schedule=schedule, seed=seed, wall_timeout=wall_timeout
            )
            restore = sched.instrument(db)
            hooks.attach(sched)
            stuck: str | None = None
            try:
                for name, body in scenario.threads:
                    sched.spawn(name, body, db, refs, logs[name])
                sched.run()
            except SchedulerStuck as exc:
                stuck = f"scheduler stuck: {exc}"
            finally:
                hooks.detach()
                restore()
            outcome.schedule = [c for c, _ in sched.decisions]
            outcome.branching = [n for _, n in sched.decisions]
            outcome.trace = list(sched.trace)
            if stuck is not None:
                outcome.error = stuck
                return outcome
            errors = sched.errors
            if errors:
                outcome.error = "; ".join(
                    f"{name}: {type(exc).__name__}: {exc}"
                    for name, exc in sorted(errors.items())
                )
                return outcome
            try:
                db.locks.assert_quiescent()
            except AssertionError as exc:
                outcome.error = str(exc)
                return outcome
            final = _real_fingerprint(db, refs, scenario.keys)
            outcome.verdict = check(
                list(scenario.seed), logs, final, list(scenario.keys)
            )
            return outcome
        finally:
            db.publish_exclusion = True
            try:
                db.close()
            except Exception:
                # A stuck run can leave parked daemon threads holding
                # transaction state; the directory is discarded anyway.
                pass
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def explore(
    scenario: Scenario,
    mode: str = "exhaustive",
    max_runs: int = 200,
    seed: int = 0,
    mutate: str | None = None,
    stop_on_failure: bool = True,
) -> ExploreResult:
    """Walk the schedule space; see the module docstring for the modes."""
    result = ExploreResult(scenario.name, mode)
    if mode == "exhaustive":
        prefix: list[int] = []
        while True:
            outcome = run_schedule(scenario, schedule=prefix, mutate=mutate)
            result.runs += 1
            if outcome.failed:
                result.failures.append(outcome)
                if stop_on_failure:
                    return result
            # Backtrack: rightmost decision with an untried alternative.
            stack = [
                [choice, branch]
                for choice, branch in zip(outcome.schedule, outcome.branching)
            ]
            while stack and stack[-1][0] + 1 >= stack[-1][1]:
                stack.pop()
            if not stack:
                result.complete = True
                return result
            if result.runs >= max_runs:
                return result
            stack[-1][0] += 1
            prefix = [choice for choice, _ in stack]
    elif mode == "random":
        for i in range(max_runs):
            outcome = run_schedule(scenario, seed=seed + i, mutate=mutate)
            result.runs += 1
            if outcome.failed:
                result.failures.append(outcome)
                if stop_on_failure:
                    return result
        result.complete = True  # the requested budget, fully spent
        return result
    else:
        raise ValueError(f"unknown mode {mode!r}")


def minimize(
    scenario: Scenario,
    failing: RunOutcome,
    max_attempts: int = 200,
) -> RunOutcome:
    """Shrink a failing schedule to its shortest still-failing form.

    Greedily zero each non-default choice (left to right, restarting on
    success) while the run keeps failing, then trim trailing zeros.  The
    returned outcome re-ran the minimized schedule, so its trace and
    verdict describe exactly the repro being reported.
    """

    def trim(schedule: list[int]) -> list[int]:
        end = len(schedule)
        while end > 0 and schedule[end - 1] == 0:
            end -= 1
        return schedule[:end]

    best_schedule = trim(list(failing.schedule))
    best = failing
    attempts = 0
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for i, choice in enumerate(best_schedule):
            if choice == 0:
                continue
            trial = list(best_schedule)
            trial[i] = 0
            outcome = run_schedule(scenario, schedule=trial, mutate=failing.mutation)
            attempts += 1
            if outcome.failed:
                best_schedule = trim(trial)
                best = outcome
                changed = True
                break
            if attempts >= max_attempts:
                break
    final = run_schedule(scenario, schedule=best_schedule, mutate=failing.mutation)
    out = final if final.failed else best
    # Decisions past the last non-zero are the default choice anyway;
    # dropping them leaves the shortest prefix that still replays.
    out.schedule = trim(out.schedule)
    return out


def write_repro(outcome: RunOutcome, out_dir: str) -> str:
    """Write a minimized-failure repro file; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, f"{outcome.scenario}-{outcome.mutation or 'clean'}.json"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(outcome.to_repro(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_repro(path: str) -> tuple[str, list[int], str | None]:
    """Read a repro file back: (scenario name, schedule, mutation)."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return data["scenario"], list(data["schedule"]), data.get("mutation")
