"""Cooperative scheduler: one runnable thread at a time, chosen explicitly.

The explorer (see :mod:`repro.verify.explorer`) runs a concurrency
scenario under this scheduler to make thread interleaving a pure function
of a *decision sequence*: at every step exactly one registered thread
runs, and whenever more than one is runnable the scheduler consults its
schedule (an explicit list of choice indices, a seeded RNG, or the
default "always pick the first") to decide which.  Replaying the same
decision sequence against the same scenario reproduces the same
interleaving byte for byte.

Thread lifecycle (states of :class:`_ThreadState`):

``new``
    Spawned, not yet arrived at its start point.
``parked``
    Stopped at a :func:`~repro.verify.hooks.sched_point`, runnable --
    waiting for the scheduler's grant.
``blocked``
    Inside a lock wait (:func:`~repro.verify.hooks.cond_wait` or the
    scheduler-aware storage mutex).  Not runnable: granting it would just
    spin.  A wake event (:func:`~repro.verify.hooks.sched_notify`, fired
    after lock releases) promotes it to ``wake``.
``wake``
    Blocked but wake-pending: runnable.  When granted it retries its
    acquisition; if still blocked it re-parks as ``blocked`` -- at most
    one retry per wake event, so there is no spinning and the candidate
    set stays deterministic.
``running`` / ``finished``
    Exactly one thread runs at a time; the controller waits for it to
    yield (park, block, or finish) before taking the next decision.

The *candidate set* at each decision is the parked + wake threads in
spawn order; a decision is an index into that list.  The recorded
``decisions`` list of ``(choice, branching)`` pairs is what the explorer
enumerates (exhaustive DFS) or minimizes (failure repro).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable

NEW = "new"
PARKED = "parked"
BLOCKED = "blocked"
WAKE = "wake"
RUNNING = "running"
FINISHED = "finished"

_RUNNABLE = (PARKED, WAKE)


class SchedulerStuck(RuntimeError):
    """The scheduled run cannot make progress (harness-level deadlock)."""


class _ThreadState:
    __slots__ = ("name", "thread", "state", "point", "grant", "result", "error")

    def __init__(self, name: str) -> None:
        self.name = name
        self.thread: threading.Thread | None = None
        self.state = NEW
        self.point = "<new>"
        self.grant = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class _SchedulerMutex:
    """Storage-mutex stand-in installed while a scheduler is attached.

    The real storage mutex is a C-level RLock: a registered thread parked
    at a sched point *inside* a storage-mutex region would hold it natively
    and any other granted thread touching storage would block the whole
    harness.  This wrapper turns contention into a cooperative ``blocked``
    park instead, and turns release into a wake event.  Re-entrancy comes
    from the inner RLock (a non-blocking acquire by the owner succeeds).
    Unregistered threads (scenario setup/teardown) fall through to native
    blocking.
    """

    def __init__(self, scheduler: "CooperativeScheduler") -> None:
        self._inner = threading.RLock()
        self._sched = scheduler

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._inner.acquire(blocking=False):
            return True
        if not blocking:
            return False
        if self._sched._current() is None:
            return self._inner.acquire(True, timeout)
        while not self._inner.acquire(blocking=False):
            self._sched._yield_blocked("storage-mutex")
        return True

    def release(self) -> None:
        self._inner.release()
        self._sched.on_notify()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


class CooperativeScheduler:
    """Serialize registered threads at named yield points.

    Parameters
    ----------
    schedule:
        Explicit choice indices consumed decision by decision.  Positions
        beyond the list fall back to the RNG (if seeded) or to choice 0.
        Out-of-range indices clamp to the last candidate, so a schedule
        recorded against one run shape replays safely against another.
    seed:
        Seed for random choices beyond the explicit schedule prefix.
    max_steps:
        Backstop against runaway scenarios.
    wall_timeout:
        Wall-clock bound on the whole run; expiry raises
        :class:`SchedulerStuck` (a reportable harness finding, not a
        scenario verdict).
    """

    def __init__(
        self,
        schedule: list[int] | None = None,
        seed: int | None = None,
        max_steps: int = 20000,
        wall_timeout: float = 30.0,
    ) -> None:
        self._mon = threading.Condition()
        self._order: list[_ThreadState] = []
        self._by_ident: dict[int, _ThreadState] = {}
        self._schedule = list(schedule or ())
        self._rng = random.Random(seed) if seed is not None else None
        self._max_steps = max_steps
        self._wall_timeout = wall_timeout
        self._running: _ThreadState | None = None
        self._forced_wakes = 0
        self._finished_seen = 0
        #: (thread name, yield point) per granted step, in order.
        self.trace: list[tuple[str, str]] = []
        #: (chosen index, candidate count) per decision, in order.
        self.decisions: list[tuple[int, int]] = []

    # -- registration ----------------------------------------------------------

    def spawn(self, name: str, fn: Callable[..., Any], *args: Any) -> None:
        """Register and start a scenario thread; it parks until granted."""
        st = _ThreadState(name)
        self._order.append(st)

        def body() -> None:
            with self._mon:
                self._by_ident[threading.get_ident()] = st
            self._park(st, "start", PARKED)
            try:
                st.result = fn(*args)
            except BaseException as exc:  # collected, reported by run()
                st.error = exc
            finally:
                with self._mon:
                    st.state = FINISHED
                    self._mon.notify_all()

        st.thread = threading.Thread(target=body, name=f"sched-{name}", daemon=True)
        st.thread.start()

    def _current(self) -> _ThreadState | None:
        return self._by_ident.get(threading.get_ident())

    # -- hook entry points (called from instrumented kernel code) --------------

    def on_point(self, name: str) -> None:
        st = self._current()
        if st is None:
            return
        self._park(st, name, PARKED)

    def on_cond_wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        st = self._current()
        if st is None:
            return cond.wait(timeout)
        cond.release()
        try:
            self._park(st, "lock-wait", BLOCKED)
        finally:
            cond.acquire()
        return True

    def on_notify(self) -> None:
        with self._mon:
            for st in self._order:
                if st.state == BLOCKED:
                    st.state = WAKE

    def _yield_blocked(self, what: str) -> None:
        st = self._current()
        assert st is not None
        self._park(st, what, BLOCKED)

    def _park(self, st: _ThreadState, point: str, state: str) -> None:
        with self._mon:
            st.point = point
            st.state = state
            self._mon.notify_all()
        st.grant.wait()
        st.grant.clear()

    # -- instrumentation -------------------------------------------------------

    def instrument(self, db: Any) -> Callable[[], None]:
        """Swap ``db``'s storage mutex for a scheduler-aware one.

        Returns a restore callable; call it (after :meth:`run`, before any
        further use of ``db``) to put the original RLock back so detached
        operation keeps its zero-overhead native mutex.
        """
        original = db._storage_mutex
        db._storage_mutex = _SchedulerMutex(self)

        def restore() -> None:
            db._storage_mutex = original

        return restore

    # -- the controller --------------------------------------------------------

    def run(self) -> None:
        """Drive all spawned threads to completion, one grant at a time.

        Call from the controlling (unregistered) thread after
        ``hooks.attach(self)`` and all :meth:`spawn` calls.  Scenario
        thread exceptions are captured on their ``_ThreadState`` (see
        :attr:`errors`), not raised here; :class:`SchedulerStuck` is
        raised for harness-level deadlock or timeout.
        """
        deadline = time.monotonic() + self._wall_timeout
        self._await(deadline, lambda: all(st.state != NEW for st in self._order))
        while True:
            chosen = self._next_grant(deadline)
            if chosen is None:
                break
            chosen.grant.set()
        for st in self._order:
            assert st.thread is not None
            st.thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)

    def _next_grant(self, deadline: float) -> _ThreadState | None:
        with self._mon:
            self._await_locked(
                deadline,
                lambda: self._running is None or self._running.state != RUNNING,
            )
            self._running = None
            live = [st for st in self._order if st.state != FINISHED]
            if not live:
                return None
            # Progress = a thread parked at a real sched point or finished;
            # WAKE threads that merely re-block do not count, so a true
            # cross-thread deadlock (not resolved by the lock manager)
            # surfaces as SchedulerStuck instead of spinning to the step
            # limit on forced retries.
            finished = sum(1 for st in self._order if st.state == FINISHED)
            if finished > self._finished_seen or any(
                st.state == PARKED for st in self._order
            ):
                self._forced_wakes = 0
                self._finished_seen = finished
            runnable = [st for st in self._order if st.state in _RUNNABLE]
            if not runnable:
                self._forced_wakes += 1
                if self._forced_wakes > 4 * len(self._order) + 8:
                    raise SchedulerStuck(
                        "no runnable threads: "
                        + ", ".join(f"{st.name}={st.state}@{st.point}" for st in live)
                    )
                for st in live:
                    if st.state == BLOCKED:
                        st.state = WAKE
                runnable = [st for st in self._order if st.state in _RUNNABLE]
                if not runnable:
                    raise SchedulerStuck(
                        "threads neither runnable nor wakeable: "
                        + ", ".join(f"{st.name}={st.state}@{st.point}" for st in live)
                    )
            if len(self.trace) >= self._max_steps:
                raise SchedulerStuck(f"step limit {self._max_steps} exceeded")
            chosen = runnable[self._choose(len(runnable))]
            self.trace.append((chosen.name, chosen.point))
            chosen.state = RUNNING
            self._running = chosen
            return chosen

    def _choose(self, n: int) -> int:
        i = len(self.decisions)
        if i < len(self._schedule):
            choice = min(self._schedule[i], n - 1)
        elif self._rng is not None:
            choice = self._rng.randrange(n)
        else:
            choice = 0
        self.decisions.append((choice, n))
        return choice

    def _await(self, deadline: float, pred: Callable[[], bool]) -> None:
        with self._mon:
            self._await_locked(deadline, pred)

    def _await_locked(self, deadline: float, pred: Callable[[], bool]) -> None:
        while not pred():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                states = ", ".join(
                    f"{st.name}={st.state}@{st.point}" for st in self._order
                )
                raise SchedulerStuck(f"wall-clock timeout ({states})")
            self._mon.wait(min(remaining, 0.5))

    # -- results ---------------------------------------------------------------

    @property
    def errors(self) -> dict[str, BaseException]:
        """Uncaught exceptions per scenario thread (empty on clean runs)."""
        return {st.name: st.error for st in self._order if st.error is not None}

    @property
    def results(self) -> dict[str, Any]:
        """Return values per scenario thread."""
        return {st.name: st.result for st in self._order}
