"""Model-based serializability oracle for recorded concurrent histories.

Scenario threads record *semantic* operations and observations into a
:class:`ThreadLog` -- reads with the value they saw, ``newversion`` with
the serial/dprev it got, commits and aborts, snapshot pins.  After the
scheduled run the oracle searches for a **serial order** of the committed
transactions that the sequential reference model
(:class:`repro.verify.model.ModelStore`) reproduces exactly:

* every committed transaction, replayed atomically at its position,
  observes precisely what it observed in the real run;
* the real database's final state equals the model's final state;
* every *aborted* transaction observed some committed prefix plus its own
  ops (its effects must appear nowhere else -- the final-state check and
  the committed replays enforce that);
* non-transactional reads each match some committed prefix, prefixes
  non-decreasing in program order (a thread never travels back in time);
* reads inside one snapshot pin all match a *single* prefix (pinned views
  are frozen), and prefixes are monotone across successive pins.

A history passes if at least one order satisfies everything; with at most
four transactions the 4! search is trivially cheap.  The snapshot rules
above subsume the paper-level guarantee that a generic reference never
observes uncommitted or rolled-back versions: an uncommitted value
matches no committed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Any, Hashable

from repro.verify.model import ModelError, ModelStore

Key = Hashable


class ThreadLog:
    """Per-thread recorder handed to scenario bodies.

    Events are plain tuples; the first element names the op.  Observation
    events carry what the real run returned, replay compares them against
    the model.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.events: list[tuple] = []

    # transaction boundaries
    def begin(self) -> None:
        self.events.append(("begin",))

    def commit(self) -> None:
        self.events.append(("commit",))

    def abort(self, reason: str = "") -> None:
        self.events.append(("abort", reason))

    # snapshot boundaries
    def pin(self) -> None:
        self.events.append(("pin",))

    def unpin(self) -> None:
        self.events.append(("unpin",))

    # operations and observations
    def read(self, key: Key, value: Any, serial: int | None = None) -> None:
        self.events.append(("read", key, serial, value))

    def write(self, key: Key, value: Any, serial: int | None = None) -> None:
        self.events.append(("write", key, serial, value))

    def pnew(self, key: Key, value: Any) -> None:
        self.events.append(("pnew", key, value))

    def newversion(
        self, key: Key, serial: int, dprev: int | None, base: int | None = None
    ) -> None:
        self.events.append(("newversion", key, base, serial, dprev))

    def vdelete(self, key: Key, serial: int) -> None:
        self.events.append(("vdelete", key, serial))

    def odelete(self, key: Key) -> None:
        self.events.append(("odelete", key))

    def latest(self, key: Key, serial: int) -> None:
        self.events.append(("latest", key, serial))

    def history(self, key: Key, serial: int, path: list[int]) -> None:
        self.events.append(("history", key, serial, tuple(path)))

    def tprevious(self, key: Key, serial: int, observed: int | None) -> None:
        self.events.append(("tprevious", key, serial, observed))

    def dnext(self, key: Key, serial: int, observed: list[int]) -> None:
        self.events.append(("dnext", key, serial, tuple(observed)))


@dataclass
class _TxnUnit:
    label: str
    thread: str
    order: int  # program order within its thread
    events: list[tuple]
    outcome: str  # "committed" | "aborted"


@dataclass
class _ReadGroup:
    thread: str
    pinned: bool
    events: list[tuple]


@dataclass
class Verdict:
    serializable: bool
    witness: tuple[str, ...] | None = None
    reason: str | None = None
    permutations_checked: int = 0
    details: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.serializable


def _apply(model: ModelStore, event: tuple) -> str | None:
    """Replay one event; returns a mismatch description or None."""
    kind = event[0]
    try:
        if kind == "read":
            _, key, serial, observed = event
            got = model.read(key, serial)
            if got != observed:
                return f"read({key!r}, {serial}) saw {observed!r}, model has {got!r}"
        elif kind == "write":
            _, key, serial, value = event
            model.write(key, value, serial)
        elif kind == "pnew":
            _, key, value = event
            model.pnew(key, value)
        elif kind == "newversion":
            _, key, base, serial, dprev = event
            got_serial, got_dprev = model.newversion(key, base)
            if (got_serial, got_dprev) != (serial, dprev):
                return (
                    f"newversion({key!r}, base={base}) got serial {serial} "
                    f"dprev {dprev}, model gives {got_serial}/{got_dprev}"
                )
        elif kind == "vdelete":
            _, key, serial = event
            model.vdelete(key, serial)
        elif kind == "odelete":
            model.odelete(event[1])
        elif kind == "latest":
            _, key, serial = event
            got = model.latest(key)
            if got != serial:
                return f"latest({key!r}) saw {serial}, model has {got}"
        elif kind == "history":
            _, key, serial, path = event
            got = tuple(model.history(key, serial))
            if got != path:
                return f"history({key!r}, {serial}) saw {path}, model has {got}"
        elif kind == "tprevious":
            _, key, serial, observed = event
            got = model.tprevious(key, serial)
            if got != observed:
                return f"tprevious({key!r}, {serial}) saw {observed}, model has {got}"
        elif kind == "dnext":
            _, key, serial, observed = event
            got = tuple(model.dnext(key, serial))
            if got != observed:
                return f"dnext({key!r}, {serial}) saw {observed}, model has {got}"
        else:
            return f"unknown event {event!r}"
    except ModelError as exc:
        return f"{kind} on {event[1:]!r}: {exc}"
    return None


def _replay(model: ModelStore, events: list[tuple]) -> str | None:
    for event in events:
        mismatch = _apply(model, event)
        if mismatch is not None:
            return mismatch
    return None


def _split(name: str, events: list[tuple]) -> tuple[list[_TxnUnit], list[_ReadGroup]]:
    """Partition a thread's events into transaction units and read groups."""
    txns: list[_TxnUnit] = []
    groups: list[_ReadGroup] = []
    i = 0
    order = 0
    n = len(events)
    while i < n:
        kind = events[i][0]
        if kind == "begin":
            j = i + 1
            while j < n and events[j][0] not in ("commit", "abort"):
                j += 1
            if j >= n:
                raise ValueError(f"thread {name}: unterminated transaction")
            outcome = "committed" if events[j][0] == "commit" else "aborted"
            txns.append(
                _TxnUnit(f"{name}#{order}", name, order, events[i + 1 : j], outcome)
            )
            order += 1
            i = j + 1
        elif kind == "pin":
            j = i + 1
            while j < n and events[j][0] != "unpin":
                j += 1
            if j >= n:
                raise ValueError(f"thread {name}: unterminated snapshot pin")
            groups.append(_ReadGroup(name, True, events[i + 1 : j]))
            i = j + 1
        else:
            groups.append(_ReadGroup(name, False, [events[i]]))
            i += 1
    return txns, groups


def check(
    seed_events: list[tuple],
    logs: dict[str, ThreadLog],
    final_state: tuple,
    keys: list[Key],
) -> Verdict:
    """Search for a reproducing serial order; see the module docstring.

    ``seed_events`` build the pre-run state (same event tuples as recorded
    ops).  ``final_state`` is the real database's post-run fingerprint in
    :meth:`ModelStore.fingerprint` shape over ``keys``.
    """
    all_txns: list[_TxnUnit] = []
    reader_groups: dict[str, list[_ReadGroup]] = {}
    for name in sorted(logs):
        txns, groups = _split(name, logs[name].events)
        all_txns.extend(txns)
        if groups:
            reader_groups[name] = groups

    base = ModelStore()
    seed_problem = _replay(base, seed_events)
    if seed_problem is not None:
        raise ValueError(f"seed replay failed: {seed_problem}")

    committed = [t for t in all_txns if t.outcome == "committed"]
    aborted = [t for t in all_txns if t.outcome == "aborted"]

    details: list[str] = []
    checked = 0
    for perm in permutations(committed):
        # Same-thread transactions happen sequentially in real time: the
        # serial order must respect program order.
        seen: dict[str, int] = {}
        ok_order = True
        for t in perm:
            if seen.get(t.thread, -1) > t.order:
                ok_order = False
                break
            seen[t.thread] = t.order
        if not ok_order:
            continue
        checked += 1
        label = "->".join(t.label for t in perm) or "<empty>"

        # Committed prefix states: states[i] == model after first i txns.
        states = [base.clone()]
        mismatch = None
        for t in perm:
            nxt = states[-1].clone()
            mismatch = _replay(nxt, t.events)
            if mismatch is not None:
                mismatch = f"txn {t.label}: {mismatch}"
                break
            states.append(nxt)
        if mismatch is None and states[-1].fingerprint(keys) != final_state:
            mismatch = (
                f"final state mismatch: model {states[-1].fingerprint(keys)!r} "
                f"vs real {final_state!r}"
            )
        if mismatch is None:
            for t in aborted:
                if not any(
                    _replay(states[i].clone(), t.events) is None
                    for i in range(len(states))
                ):
                    mismatch = (
                        f"aborted txn {t.label}: no committed prefix "
                        f"reproduces its observations"
                    )
                    break
        if mismatch is None:
            for name, groups in reader_groups.items():
                floor = 0
                for gi, group in enumerate(groups):
                    # Greedy smallest feasible prefix >= floor is optimal
                    # for the existence of a monotone assignment.
                    match = next(
                        (
                            i
                            for i in range(floor, len(states))
                            if _replay(states[i].clone(), group.events) is None
                        ),
                        None,
                    )
                    if match is None:
                        what = "pinned reads" if group.pinned else "read"
                        mismatch = (
                            f"reader {name} group {gi}: {what} match no "
                            f"committed prefix >= {floor}"
                        )
                        break
                    floor = match
                if mismatch is not None:
                    break
        if mismatch is None:
            return Verdict(True, tuple(t.label for t in perm), None, checked)
        details.append(f"[{label}] {mismatch}")

    reason = (
        "no serial order of committed transactions reproduces the history"
        if checked
        else "no valid serial order (program-order constraints unsatisfiable)"
    )
    return Verdict(False, None, reason, checked, details)
