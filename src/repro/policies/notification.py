"""Change notification built entirely on triggers.

Paper §2: "we decided against a built-in change notification facility [13]
because users can implement such a facility using O++ triggers."  This
module is that implementation, with the two delivery modes the ORION
change-notification design [13] distinguishes:

* **message** (immediate) notification -- the subscriber's callback runs
  synchronously inside the mutating operation;
* **flag** (deferred) notification -- changes accumulate per subscriber
  and are observed when the subscriber polls.

Both ride on :class:`~repro.core.triggers.TriggerManager`; no kernel
support is used beyond the event stream that triggers already consume,
which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref
from repro.core.triggers import PERPETUAL, Trigger

#: Events that constitute a "change" for notification purposes.
CHANGE_EVENTS = ("update", "newversion", "delete_version", "delete_object")


@dataclass(frozen=True)
class Notification:
    """One observed change."""

    event: str
    oid: Oid
    vid: Vid | None


class Subscription:
    """A deferred (flag-style) subscription: poll with :meth:`drain`."""

    def __init__(self, notifier: "ChangeNotifier", trigger: Trigger) -> None:
        self._notifier = notifier
        self._trigger = trigger
        self._queue: list[Notification] = []

    def _deliver(self, event: str, oid: Oid, vid: Vid | None) -> None:
        self._queue.append(Notification(event, oid, vid))

    def pending(self) -> int:
        """Number of undrained notifications."""
        return len(self._queue)

    def drain(self) -> list[Notification]:
        """Return and clear the accumulated notifications."""
        out = list(self._queue)
        self._queue.clear()
        return out

    def process(
        self,
        handler: Callable[[Notification], None],
        *,
        max_attempts: int = 5,
        backoff: float = 0.01,
    ) -> int:
        """Drain the queue through ``handler``, one transaction each.

        Every notification is handled inside
        :meth:`~repro.core.database.Database.run_transaction`, so a
        handler that reads or mutates the database survives deadlocks
        and lock timeouts by re-running.  If a notification's handler
        still fails after ``max_attempts``, the notification (and
        everything behind it, preserving order) is put back at the head
        of the queue and the error propagates -- nothing is dropped.

        Returns the number of notifications successfully handled.
        """
        pending = self.drain()
        handled = 0
        while pending:
            note = pending[0]
            try:
                self._notifier._db.run_transaction(
                    lambda: handler(note),
                    max_attempts=max_attempts,
                    backoff=backoff,
                )
            except BaseException:
                # Requeue in order, ahead of anything delivered meanwhile.
                self._queue[:0] = pending
                raise
            pending.pop(0)
            handled += 1
        return handled

    def cancel(self) -> None:
        """Stop receiving notifications."""
        self._notifier._triggers.remove(self._trigger)


class ChangeNotifier:
    """Subscribe to changes of one object or a whole cluster.

    Built on the database's trigger manager -- construct one per database
    and subscribe::

        notifier = ChangeNotifier(db)
        sub = notifier.subscribe(part_ref)
        ...
        for note in sub.drain(): ...
    """

    def __init__(self, db: Database) -> None:
        self._db = db
        self._triggers = db.triggers

    def subscribe(
        self,
        target: Ref | Oid | None = None,
        events: tuple[str, ...] = CHANGE_EVENTS,
    ) -> Subscription:
        """Deferred notification for ``target`` (None = every object)."""
        oid = target.oid if isinstance(target, Ref) else target
        holder: list[Subscription] = []

        def action(event: str, ev_oid: Oid, vid: Vid | None) -> None:
            holder[0]._deliver(event, ev_oid, vid)

        trigger = self._triggers.register(
            action, events=list(events), oid=oid, mode=PERPETUAL
        )
        subscription = Subscription(self, trigger)
        holder.append(subscription)
        return subscription

    def on_change(
        self,
        callback: Callable[[Notification], None],
        target: Ref | Oid | None = None,
        events: tuple[str, ...] = CHANGE_EVENTS,
    ) -> Trigger:
        """Immediate (message-style) notification via ``callback``."""
        oid = target.oid if isinstance(target, Ref) else target

        def action(event: str, ev_oid: Oid, vid: Vid | None) -> None:
            callback(Notification(event, ev_oid, vid))

        return self._triggers.register(
            action, events=list(events), oid=oid, mode=PERPETUAL
        )
