"""Version percolation as an opt-in policy.

Paper §3, under "small changes should have small impact": "we do not
provide version percolation [5, 13, 34] because creating a new version can
lead to the automatic creation of a large number of versions of other
objects.  Users may implement version percolation as a policy by using
other O++ facilities."

This module is that user-level implementation, and experiment E8 measures
exactly the fan-out cost the paper avoids by keeping percolation out of
the kernel.

Percolation semantics (following ORION [13] and Atwood [5]): when a new
version of object ``X`` is created, every object whose current version
*references* ``X`` gets a new version too, transitively up the composition
graph.  If a referencing object held a **specific** reference (a Vid of
the base version), the percolated version is updated to reference the new
version; **generic** references (Oids) need no rewrite -- which is itself
a nice demonstration of why the paper prefers generic references for
composite structures.

Referencers are found either through an explicitly registered composite
registry (fast) or by scanning all latest versions for id references
(complete).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef


def ids_in_state(value: Any) -> set[Oid | Vid]:
    """Collect every Oid/Vid reachable in a decoded state value."""
    found: set[Oid | Vid] = set()
    _collect(value, found)
    return found


def _collect(value: Any, found: set[Oid | Vid]) -> None:
    if isinstance(value, (Oid, Vid)):
        found.add(value)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            _collect(item, found)
    elif isinstance(value, dict):
        for key, val in value.items():
            _collect(key, found)
            _collect(val, found)
    elif hasattr(value, "__dict__"):
        _collect(dict(value.__dict__), found)


def find_referencers(db: Database, target: Oid) -> list[Oid]:
    """Objects whose *latest* version references ``target`` (by Oid or Vid).

    Complete but O(database): scans every object's latest state.  The
    composite registry below avoids the scan when the application declares
    its composition links.
    """
    referencers: list[Oid] = []
    for ref in db.store.all_objects():
        if ref.oid == target:
            continue
        state = db.materialize(db.latest_vid(ref.oid))
        ids = ids_in_state(state)
        if any(
            (isinstance(i, Oid) and i == target)
            or (isinstance(i, Vid) and i.oid == target)
            for i in ids
        ):
            referencers.append(ref.oid)
    return sorted(referencers)


@dataclass
class PercolationResult:
    """What one percolation pass did (asserted on by tests and E8)."""

    trigger: Vid
    created: list[Vid] = field(default_factory=list)
    rewritten_pins: int = 0

    @property
    def fan_out(self) -> int:
        """Number of extra versions created beyond the triggering one."""
        return len(self.created)


class CompositeRegistry:
    """Explicit composition links: component oid -> parent oids.

    Applications that know their composite structure register links once;
    percolation then follows them instead of scanning the database.
    """

    def __init__(self) -> None:
        self._parents: dict[Oid, set[Oid]] = {}

    def link(self, parent: Ref | Oid, component: Ref | Oid) -> None:
        """Declare that ``parent`` references ``component``."""
        parent_oid = parent.oid if isinstance(parent, Ref) else parent
        component_oid = component.oid if isinstance(component, Ref) else component
        self._parents.setdefault(component_oid, set()).add(parent_oid)

    def unlink(self, parent: Ref | Oid, component: Ref | Oid) -> None:
        """Remove a declared link (missing links are ignored)."""
        parent_oid = parent.oid if isinstance(parent, Ref) else parent
        component_oid = component.oid if isinstance(component, Ref) else component
        self._parents.get(component_oid, set()).discard(parent_oid)

    def parents_of(self, component: Oid) -> list[Oid]:
        """Declared parents of ``component``, sorted."""
        return sorted(self._parents.get(component, set()))


def percolate(
    db: Database,
    new_version: VersionRef | Vid,
    registry: CompositeRegistry | None = None,
    max_depth: int | None = None,
) -> PercolationResult:
    """Propagate a new version up the composition graph.

    ``new_version`` is the version whose creation should percolate.  For
    every (transitive) referencer a new version is created; specific
    references to the old version are re-pinned to the corresponding new
    version.  ``max_depth`` bounds the propagation (None = unbounded).

    The whole pass runs as one retried transaction
    (:meth:`~repro.core.database.Database.run_transaction`): percolation
    touches many objects and is precisely the fan-out shape that deadlocks
    against concurrent mutators, and a half-percolated graph (some parents
    versioned, some not) must never be observable.  Each retry rebuilds
    the result from scratch, so partial results from a lost attempt never
    leak into the returned record.

    Returns a :class:`PercolationResult` recording every version created
    -- the paper's argument is precisely that this list can get long.
    """
    return db.run_transaction(
        lambda: _percolate_once(db, new_version, registry, max_depth)
    )


def _percolate_once(
    db: Database,
    new_version: VersionRef | Vid,
    registry: CompositeRegistry | None,
    max_depth: int | None,
) -> PercolationResult:
    vid = new_version.vid if isinstance(new_version, VersionRef) else new_version
    result = PercolationResult(trigger=vid)
    # old vid -> new vid, so pins can be rewritten at any depth.
    replacement: dict[Vid, Vid] = {}
    base = db.dprevious(vid)
    if base is not None:
        replacement[base.vid] = vid
    frontier = [vid.oid]
    visited = {vid.oid}
    depth = 0
    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        depth += 1
        next_frontier: list[Oid] = []
        for component in frontier:
            if registry is not None:
                parents = registry.parents_of(component)
            else:
                parents = find_referencers(db, component)
            for parent in parents:
                if parent in visited:
                    continue
                visited.add(parent)
                old_latest = db.latest_vid(parent)
                new_parent = db.newversion(db.deref(parent))
                replacement[old_latest] = new_parent.vid
                result.created.append(new_parent.vid)
                result.rewritten_pins += _rewrite_pins(db, new_parent, replacement)
                next_frontier.append(parent)
        frontier = next_frontier
    return result


def _rewrite_pins(
    db: Database, version: VersionRef, replacement: dict[Vid, Vid]
) -> int:
    """Replace pinned Vids per ``replacement`` in one version's state."""
    state = db.materialize(version.vid)
    count, new_state = _substitute(state, replacement)
    if count:
        db.write_version(version.vid, new_state)
    return count


def _substitute(value: Any, replacement: dict[Vid, Vid]) -> tuple[int, Any]:
    if isinstance(value, Vid):
        new = replacement.get(value)
        return (1, new) if new is not None else (0, value)
    if isinstance(value, list):
        total = 0
        out = []
        for item in value:
            n, new_item = _substitute(item, replacement)
            total += n
            out.append(new_item)
        return total, out
    if isinstance(value, tuple):
        total = 0
        out_t = []
        for item in value:
            n, new_item = _substitute(item, replacement)
            total += n
            out_t.append(new_item)
        return total, tuple(out_t)
    if isinstance(value, (set, frozenset)):
        total = 0
        out_s = []
        for item in value:
            n, new_item = _substitute(item, replacement)
            total += n
            out_s.append(new_item)
        rebuilt = set(out_s) if isinstance(value, set) else frozenset(out_s)
        return total, rebuilt
    if isinstance(value, dict):
        total = 0
        out_d = {}
        for key, val in value.items():
            nk, new_key = _substitute(key, replacement)
            nv, new_val = _substitute(val, replacement)
            total += nk + nv
            out_d[new_key] = new_val
        return total, out_d
    if hasattr(value, "__dict__"):
        total = 0
        for attr, val in list(value.__dict__.items()):
            n, new_val = _substitute(val, replacement)
            if n:
                setattr(value, attr, new_val)
            total += n
        return total, value
    return 0, value
