"""Configurations and contexts as *policies* over the kernel primitives.

Paper §5 models each chip representation as a **configuration** -- "a
composition of specific versions of component objects of a complex object"
(Katz et al. [21]) -- and shows that O++ needs no new construct for it: a
configuration is just an ordinary object whose fields hold object ids
(dynamic binding) or version ids (static binding).  **Contexts** [5, 8, 13,
16, 21] name default versions: "contexts may also be created to specify
default versions" (paper §5).

This module implements both as ordinary persistent objects, which is
itself the demonstration: configurations are versionable, queryable, and
transactional *for free* because they are nothing special.

* :class:`Configuration` -- named component bindings.  A *dynamic* binding
  stores an :class:`~repro.core.identity.Oid` and always resolves to the
  component's latest version; a *static* binding stores a
  :class:`~repro.core.identity.Vid` and is pinned forever.
* :func:`freeze` -- create a *new version* of a configuration in which all
  dynamic bindings are pinned to the components' current latest versions
  (a release).  The pre-freeze configuration survives as the derivation
  parent, so release history is a version history.
* :class:`Context` -- a mapping from objects to their default versions;
  :func:`resolve_in_context` dereferences an object id through a context
  before falling back to latest.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef
from repro.core.persistent import persistent

#: Binding kinds (stored alongside each binding for introspection).
DYNAMIC = "dynamic"
STATIC = "static"


@persistent(name="ode.policies.Configuration")
class Configuration:
    """A named composition of component bindings.

    State is plain codec data (a dict of component name -> Oid or Vid), so
    a Configuration is an ordinary persistent object: create it with
    ``db.pnew(Configuration("timing"))`` and manipulate it through the
    returned reference.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.bindings: dict[str, Any] = {}

    # The methods below run through the reference write-back proxy, so
    # Ref/VersionRef arguments arrive already unwrapped to Oid/Vid.

    def bind_dynamic(self, component: str, target: Any) -> None:
        """Bind ``component`` generically: it will resolve to the latest version."""
        if isinstance(target, Vid):
            target = target.oid
        if not isinstance(target, Oid):
            raise ConfigurationError(
                f"dynamic binding needs an object reference, got {type(target).__qualname__}"
            )
        self.bindings[component] = target

    def bind_static(self, component: str, target: Any) -> None:
        """Bind ``component`` specifically: pinned to one version forever."""
        if not isinstance(target, Vid):
            raise ConfigurationError(
                f"static binding needs a version reference, got {type(target).__qualname__}"
            )
        self.bindings[component] = target

    def unbind(self, component: str) -> None:
        """Remove a binding."""
        if component not in self.bindings:
            raise ConfigurationError(f"no binding for component {component!r}")
        del self.bindings[component]

    def binding_kind(self, component: str) -> str:
        """``"dynamic"`` or ``"static"`` for the named component."""
        target = self.binding(component)
        return STATIC if isinstance(target, Vid) else DYNAMIC

    def binding(self, component: str) -> Any:
        """The raw Oid/Vid bound to ``component``."""
        try:
            return self.bindings[component]
        except KeyError:
            raise ConfigurationError(f"no binding for component {component!r}") from None

    def components(self) -> list[str]:
        """Bound component names, sorted."""
        return sorted(self.bindings)


def resolve(db: Database, config: Ref | VersionRef, component: str) -> VersionRef:
    """Resolve one component binding to a specific version reference.

    Dynamic bindings resolve to the component's **latest** version at call
    time (paper §3's late binding); static bindings resolve to their pinned
    version.
    """
    target = config.binding(component)
    # Read through a reference proxy, bound ids come back re-wrapped.
    if isinstance(target, VersionRef):
        ident: Any = target.vid
    elif isinstance(target, Ref):
        ident = target.oid
    else:
        ident = target
    if isinstance(ident, Oid):
        return db.deref(db.latest_vid(ident))
    if isinstance(ident, Vid):
        return db.deref(ident)
    raise ConfigurationError(
        f"binding for {component!r} is not a reference: {ident!r}"
    )


def materialize(db: Database, config: Ref | VersionRef) -> dict[str, Any]:
    """Materialize every component of a configuration: name -> object copy."""
    return {
        component: resolve(db, config, component).deref()
        for component in config.components()
    }


def freeze(db: Database, config: Ref) -> VersionRef:
    """Release a configuration: a pinned version, with development continuing.

    Two versions are created from the configuration's current latest
    version ``v``:

    * the **release** -- derived from ``v``, with every dynamic binding
      converted to a static binding to the component's current latest
      version (immutable composition, the paper's §5 released
      representation).  Each dynamically-bound component is also rolled
      forward with ``newversion`` so that future edits -- including
      in-place mutation -- land on the component's *new* latest version
      and can never disturb the pinned one;
    * a new **development head** -- a variant also derived from ``v``,
      keeping the dynamic bindings.  Being created last it is the
      temporally latest version, so generic references to the
      configuration keep seeing live (late-bound) components.

    Returns the release's specific reference; the release stays reachable
    forever through it and through the derivation tree.
    """
    base = db.latest_vid(config.oid)
    release = db.newversion(base)
    with release.modify() as cfg:
        for component, target in list(cfg.bindings.items()):
            if isinstance(target, Oid):
                pinned = db.latest_vid(target)
                cfg.bindings[component] = pinned
                # Roll the component forward: development continues on a
                # fresh version, leaving the pinned one immutable.
                db.newversion(pinned)
    db.newversion(base)  # the new development head (dynamic bindings intact)
    return release


@persistent(name="ode.policies.Context")
class Context:
    """Default versions for a set of objects (paper §5's contexts).

    A context maps object ids to the version id that should be used when
    dereferencing within the context -- e.g. "the last validated version"
    -- while objects outside the context fall back to latest.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.defaults: dict[Oid, Vid] = {}

    def set_default(self, target: Any) -> None:
        """Make ``target`` (a Vid) its object's default version here."""
        if not isinstance(target, Vid):
            raise ConfigurationError(
                f"context defaults are specific versions, got {type(target).__qualname__}"
            )
        self.defaults[target.oid] = target

    def clear_default(self, target: Any) -> None:
        """Drop the default for an object (falls back to latest)."""
        oid = target.oid if isinstance(target, Vid) else target
        self.defaults.pop(oid, None)

    def default_for(self, oid: Oid) -> Vid | None:
        """The default version for ``oid`` in this context, if any."""
        return self.defaults.get(oid)


def resolve_in_context(
    db: Database, context: Ref | VersionRef, target: Ref | Oid
) -> VersionRef:
    """Dereference ``target`` through a context's defaults.

    Returns the context's default version when one is set, the latest
    version otherwise.
    """
    oid = target.oid if isinstance(target, Ref) else target
    default = context.default_for(oid)
    vid = default.vid if isinstance(default, VersionRef) else default
    if vid is not None:
        return db.deref(vid)
    return db.deref(db.latest_vid(oid))
