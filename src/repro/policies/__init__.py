"""Policies built from the kernel primitives.

The paper's design principle is "primitives, not policies": configurations
and contexts (paper §5), change notification (§2), and version percolation
(§3) are all deliberately *excluded* from the kernel because users can
build them.  This package builds them, as the existence proof.
"""

from repro.policies.checkout import (
    OrionOnOde,
    RELEASED,
    TRANSIENT,
    WORKING,
)
from repro.policies.composites import (
    CascadeReport,
    CompositeManager,
    OwnershipRegistry,
)
from repro.policies.configuration import (
    Configuration,
    Context,
    DYNAMIC,
    STATIC,
    freeze,
    materialize,
    resolve,
    resolve_in_context,
)
from repro.policies.notification import (
    CHANGE_EVENTS,
    ChangeNotifier,
    Notification,
    Subscription,
)
from repro.policies.environments import (
    DEFAULT_STATES,
    DEFAULT_TRANSITIONS,
    VersionEnvironment,
    alternatives_in_state,
    effective_version,
    latest_in_state,
    partition,
    promote_pipeline,
    sweep_dead_assignments,
    versions_in_state,
)
from repro.policies.percolation import (
    CompositeRegistry,
    PercolationResult,
    find_referencers,
    ids_in_state,
    percolate,
)

__all__ = [
    "CascadeReport",
    "CompositeManager",
    "OwnershipRegistry",
    "OrionOnOde",
    "RELEASED",
    "TRANSIENT",
    "WORKING",
    "DEFAULT_STATES",
    "DEFAULT_TRANSITIONS",
    "VersionEnvironment",
    "alternatives_in_state",
    "effective_version",
    "latest_in_state",
    "partition",
    "promote_pipeline",
    "sweep_dead_assignments",
    "versions_in_state",
    "Configuration",
    "Context",
    "DYNAMIC",
    "STATIC",
    "freeze",
    "materialize",
    "resolve",
    "resolve_in_context",
    "CHANGE_EVENTS",
    "ChangeNotifier",
    "Notification",
    "Subscription",
    "CompositeRegistry",
    "PercolationResult",
    "find_referencers",
    "ids_in_state",
    "percolate",
]
