"""Composite objects with owned components, as a policy (paper §2).

Paper §2: "we consciously decided not to introduce new pointer types (such
as own ref in [12]) to model composite objects [23] with 'local objects'
which are deleted when the composite object is deleted because this can be
simulated using C++ destructors."

The Python analogue of "simulate it with destructors" is this policy: an
ownership registry plus a ``delete_object`` trigger.  Declaring
``own(parent, component)`` makes the component a *local object* of the
parent; deleting the parent cascades ``pdelete`` to every owned component,
transitively -- exactly the ORION composite-object semantics [23], rebuilt
from the kernel's public surface (one persistent registry object + one
trigger), with none of it in the kernel.

Shared ownership is rejected (a local object has exactly one owner, as in
[23]); cycles are therefore impossible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.errors import PolicyError
from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.persistent import persistent
from repro.core.pointers import Ref


@persistent(name="ode.policies.OwnershipRegistry")
class OwnershipRegistry:
    """Durable ownership links: component oid -> owner oid."""

    def __init__(self) -> None:
        self.owner_of: dict[Oid, Oid] = {}


@dataclass
class CascadeReport:
    """What one cascade did."""

    root: Oid
    deleted: list[Oid] = field(default_factory=list)


class CompositeManager:
    """Ownership declaration + cascading deletion for one database.

    Construct once per database (it registers a ``delete_object``
    trigger).  The registry is an ordinary persistent object, so
    ownership links survive restarts; reconstruct the manager after
    reopening with ``CompositeManager(db, registry_oid=...)``.
    """

    def __init__(self, db: Database, registry_oid: Oid | None = None) -> None:
        self._db = db
        if registry_oid is None:
            self._registry: Ref = db.pnew(OwnershipRegistry())
        else:
            self._registry = db.deref(registry_oid)
        self.last_cascade: CascadeReport | None = None
        self._cascading = False
        db.triggers.register(self._on_delete, events="delete_object")

    @property
    def registry_oid(self) -> Oid:
        """Persist this to reconstruct the manager after reopen."""
        return self._registry.oid

    # -- declaration ---------------------------------------------------------

    def own(self, parent: Ref | Oid, component: Ref | Oid) -> None:
        """Declare ``component`` a local object of ``parent``.

        A component has at most one owner; re-owning raises.  Ownership of
        an ancestor by a descendant would require the descendant to be
        owned already, so cycles cannot be declared.
        """
        parent_oid = parent.oid if isinstance(parent, Ref) else parent
        component_oid = component.oid if isinstance(component, Ref) else component
        if parent_oid == component_oid:
            raise PolicyError("an object cannot own itself")
        owners = self._owners()
        if component_oid in owners:
            raise PolicyError(
                f"{component_oid!r} already has owner {owners[component_oid]!r}"
            )
        # Reject ownership that would close a cycle through existing links.
        cursor: Oid | None = parent_oid
        while cursor is not None:
            if cursor == component_oid:
                raise PolicyError("ownership cycle rejected")
            cursor = owners.get(cursor)
        with self._registry.modify() as registry:
            registry.owner_of[component_oid] = parent_oid

    def disown(self, component: Ref | Oid) -> None:
        """Remove a component's ownership link (it becomes independent)."""
        component_oid = component.oid if isinstance(component, Ref) else component
        with self._registry.modify() as registry:
            registry.owner_of.pop(component_oid, None)

    def owner(self, component: Ref | Oid) -> Oid | None:
        """The owner of ``component``, if any."""
        component_oid = component.oid if isinstance(component, Ref) else component
        return self._owners().get(component_oid)

    def components_of(self, parent: Ref | Oid) -> list[Oid]:
        """Directly owned components of ``parent``, sorted."""
        parent_oid = parent.oid if isinstance(parent, Ref) else parent
        return sorted(
            comp for comp, owner in self._owners().items() if owner == parent_oid
        )

    def _owners(self) -> dict[Oid, Oid]:
        # deref() gives raw ids (no proxy re-binding of dict keys).
        return dict(self._registry.deref().owner_of)

    # -- the destructor ------------------------------------------------------

    def _on_delete(self, event: str, oid: Oid, vid: Vid | None) -> None:
        if self._cascading:
            # Nested deletions are part of the ongoing cascade.
            self._collect(oid)
            return
        owners = self._owners()
        victims = [comp for comp, owner in owners.items() if owner == oid]
        if not victims and oid not in owners:
            return
        self.last_cascade = CascadeReport(root=oid)
        self._cascading = True
        try:
            for component in victims:
                if self._db.object_exists(component):
                    self._db.pdelete(self._db.deref(component))
            with self._registry.modify() as registry:
                registry.owner_of.pop(oid, None)
                for component in list(registry.owner_of):
                    if not self._db.object_exists(component):
                        registry.owner_of.pop(component, None)
        finally:
            self._cascading = False

    def _collect(self, oid: Oid) -> None:
        if self.last_cascade is not None:
            self.last_cascade.deleted.append(oid)
        # Cascade transitively: deleting a component deletes ITS components.
        for component in self.components_of(oid):
            if self._db.object_exists(component):
                self._db.pdelete(self._db.deref(component))
