"""The ORION checkout/checkin model, implemented *on* the Ode kernel.

Paper §7: "O++ culls out kernel features from these proposals and provides
primitives within the framework of an object-oriented language for
implementing a variety of versioning models and application-specific
systems."  This module is the proof for the flagship rival: the ORION
version model [13] -- transient/working/released statuses, three database
tiers, checkout/checkin/promotion -- expressed entirely through public
kernel primitives:

* versions: the kernel's `newversion` (ORION's derivation);
* statuses: a :class:`~repro.policies.environments.VersionEnvironment`
  with the ORION state machine (transient -> working -> released);
* database tiers: *derived* from status, exactly as ORION ties residency
  to status (private=transient, project=working, public=released);
* mutability rules: transient versions are editable, working/released are
  not -- enforced by this policy before it touches the kernel;
* generic-reference default: ORION resolves a generic reference through a
  header's default version; here the policy tracks the default explicitly
  (the kernel's own object id keeps denoting the temporally latest
  version, which the policy deliberately does not use).

Because this runs on the same disk substrate as the kernel, experiment
E10 can compare the checkout/checkin discipline against raw ``newversion``
*fairly* -- same pages, same WAL, same codec.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CheckoutError, PolicyError
from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.persistent import persistent
from repro.core.pointers import Ref, VersionRef
from repro.policies.environments import VersionEnvironment

#: ORION statuses.
TRANSIENT = "transient"
WORKING = "working"
RELEASED = "released"

#: Database tiers, derived from status.
_TIER_OF = {TRANSIENT: "private", WORKING: "project", RELEASED: "public"}

_ORION_STATES = (TRANSIENT, WORKING, RELEASED)
_ORION_TRANSITIONS = {
    TRANSIENT: (WORKING,),
    WORKING: (RELEASED,),
    RELEASED: (),
}


@persistent(name="ode.policies.CheckoutControl")
class CheckoutControl:
    """Per-model bookkeeping: defaults per object (the 'generic header').

    Plain codec state: ``defaults`` maps Oid -> Vid, standing in for
    ORION's generic-header default-version pointer.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.defaults: dict[Oid, Vid] = {}


class OrionOnOde:
    """The ORION versioning discipline over an open Ode database.

    Construct once per database::

        model = OrionOnOde(db)
        oid   = model.create(Design(...)).oid
        model.checkin(first)                  # transient -> working
        edit  = model.checkout(oid)           # copy-derive a transient
        edit.field = ...                      # only transients are editable
        model.checkin(edit)
        model.promote(edit)                   # working -> released
    """

    def __init__(self, db: Database, name: str = "orion") -> None:
        self._db = db
        self._env: Ref = db.pnew(
            VersionEnvironment(
                f"{name}.status",
                states=_ORION_STATES,
                transitions=_ORION_TRANSITIONS,
            )
        )
        self._control: Ref = db.pnew(CheckoutControl(name))

    # -- object lifecycle ---------------------------------------------------

    def create(self, obj: Any) -> VersionRef:
        """Create an object; its first version is transient (private DB).

        Runs as one retried transaction (``run_transaction``): the pnew
        and the default-pointer update land atomically, and a deadlock
        with a concurrent model operation re-runs the whole step.
        """

        def step() -> VersionRef:
            ref = self._db.pnew(obj)
            first = ref.pin()
            with self._control.modify() as control:
                control.defaults[ref.oid] = first.vid
            return first

        return self._db.run_transaction(step)

    # -- status queries ----------------------------------------------------------

    def status(self, vref: VersionRef | Vid) -> str:
        """transient / working / released."""
        vid = vref.vid if isinstance(vref, VersionRef) else vref
        return self._env.state_of(vid)

    def database_of(self, vref: VersionRef | Vid) -> str:
        """private / project / public -- derived from status, as in ORION."""
        return _TIER_OF[self.status(vref)]

    def default_version(self, target: Ref | Oid) -> VersionRef:
        """What a generic reference denotes under this model."""
        oid = target.oid if isinstance(target, Ref) else target
        # deref() yields the raw state (ids unwrapped), unlike attribute
        # reads through the proxy which re-bind ids to references.
        vid = self._control.deref().defaults.get(oid)
        if vid is None:
            raise PolicyError(f"object {oid!r} is not managed by this model")
        return self._db.deref(vid)

    def deref_generic(self, target: Ref | Oid) -> Any:
        """Resolve generic reference -> default version -> object copy."""
        return self.default_version(target).deref()

    # -- the edit cycle -----------------------------------------------------------

    def update(self, vref: VersionRef, **fields: Any) -> None:
        """Edit a version in place; only transient versions are mutable.

        The status check and the write run in one retried transaction, so
        a concurrent checkin cannot slip between them.
        """

        def step() -> None:
            if self.status(vref) != TRANSIENT:
                raise CheckoutError(
                    f"{vref!r} is {self.status(vref)}; only transient versions "
                    "are editable -- checkout first"
                )
            with vref.modify() as obj:
                for key, value in fields.items():
                    setattr(obj, key, value)

        self._db.run_transaction(step)

    def checkout(self, target: Ref | Oid, version: VersionRef | None = None) -> VersionRef:
        """Derive a new transient version from a working/released one.

        ORION's checkout copies into the private database; here the copy
        is the kernel's ``newversion`` (which starts as a copy of its
        base) -- one call, same semantics, no cross-database transfer.
        Status check + derive run as one retried transaction.
        """

        def step() -> VersionRef:
            base = version if version is not None else self.default_version(target)
            if self.status(base) == TRANSIENT:
                raise CheckoutError("transient versions are already checked out")
            return self._db.newversion(base)

        return self._db.run_transaction(step)

    def checkin(self, vref: VersionRef) -> None:
        """Promote transient -> working and make it the generic default.

        The status transition and the default-pointer update land in one
        retried transaction -- a deadlock victim re-runs both or neither.
        """

        def step() -> None:
            if self.status(vref) != TRANSIENT:
                raise CheckoutError(f"{vref!r} is not checked out")
            self._env.set_state(vref, WORKING)
            with self._control.modify() as control:
                control.defaults[vref.oid] = vref.vid

        self._db.run_transaction(step)

    def promote(self, vref: VersionRef) -> None:
        """Promote working -> released (public database; immutable forever)."""
        if self.status(vref) != WORKING:
            raise CheckoutError(f"{vref!r} is not working")
        self._env.set_state(vref, RELEASED)

    def set_default(self, vref: VersionRef) -> None:
        """Point the generic default at a specific (non-transient) version."""

        def step() -> None:
            if self.status(vref) == TRANSIENT:
                raise CheckoutError(
                    "the generic default cannot be a transient version"
                )
            with self._control.modify() as control:
                control.defaults[vref.oid] = vref.vid

        self._db.run_transaction(step)

    # -- reporting --------------------------------------------------------------

    def versions_by_tier(self, target: Ref | Oid) -> dict[str, list[VersionRef]]:
        """Versions of one object grouped by database tier."""
        oid = target.oid if isinstance(target, Ref) else target
        tiers: dict[str, list[VersionRef]] = {"private": [], "project": [], "public": []}
        for vref in self._db.versions(self._db.deref(oid)):
            tiers[self.database_of(vref)].append(vref)
        return tiers
