"""Version environments (Klahold, Schlageter & Wilkes [24]) as a policy.

Paper §7: "A version management model based on the concept of version
environments has been proposed in [24].  A version environment offers
mechanisms for ordering versions by various relationships (time,
derived-from, etc.) and partitioning versions according to specific
properties (valid, invalid, in-progress, alternative, effective, ...)."

Like configurations and contexts, a version environment here is an
ordinary persistent object built only from the kernel's public surface --
the paper's primitives suffice for yet another published model:

* a configurable **state machine** over version states with an initial
  state and allowed transitions;
* **partitioning**: every version of an object is in exactly one state
  (unassigned versions sit in the initial state);
* **ordering** queries delegate to the kernel's temporal and derived-from
  relationships, restricted to a partition;
* the **effective version** of an object: the temporally latest version
  in a designated state -- which is precisely what a
  :class:`~repro.policies.configuration.Context` default generalizes.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PolicyError
from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.persistent import persistent
from repro.core.pointers import Ref, VersionRef

#: The default state set from the paper's quote.
DEFAULT_STATES = ("in-progress", "valid", "invalid", "effective")

#: Default transitions: a designer's review pipeline.
DEFAULT_TRANSITIONS = {
    "in-progress": ("valid", "invalid"),
    "valid": ("effective", "invalid"),
    "invalid": ("in-progress",),
    "effective": ("invalid",),
}


@persistent(name="ode.policies.VersionEnvironment")
class VersionEnvironment:
    """A named environment: version states, transitions, and assignments.

    State is plain codec data; environments persist, version, and recover
    like any object.
    """

    def __init__(
        self,
        name: str,
        states: tuple[str, ...] = DEFAULT_STATES,
        transitions: dict[str, tuple[str, ...]] | None = None,
        initial: str | None = None,
    ) -> None:
        if not states:
            raise PolicyError("an environment needs at least one state")
        self.name = name
        self.states = list(states)
        self.transitions = {
            k: list(v)
            for k, v in (transitions if transitions is not None else DEFAULT_TRANSITIONS).items()
            if k in states
        }
        self.initial = initial if initial is not None else states[0]
        if self.initial not in states:
            raise PolicyError(f"initial state {self.initial!r} not in states")
        self.assignments: dict[Vid, str] = {}

    # These run through the reference write-back proxy; Vid arguments
    # arrive unwrapped.

    def state_of(self, vid: Any) -> str:
        """The state a version is in (initial when never assigned)."""
        key = vid.vid if isinstance(vid, VersionRef) else vid
        return self.assignments.get(key, self.initial)

    def set_state(self, vid: Any, state: str) -> None:
        """Move a version to ``state``, enforcing the transition relation."""
        key = vid.vid if isinstance(vid, VersionRef) else vid
        if state not in self.states:
            raise PolicyError(f"unknown state {state!r} in environment {self.name!r}")
        current = self.assignments.get(key, self.initial)
        if state == current:
            return
        allowed = self.transitions.get(current, [])
        if state not in allowed:
            raise PolicyError(
                f"environment {self.name!r}: transition {current!r} -> {state!r} "
                f"not allowed (allowed: {sorted(allowed)})"
            )
        self.assignments[key] = state

    def drop(self, vid: Any) -> None:
        """Forget a version's assignment (e.g. after pdelete)."""
        key = vid.vid if isinstance(vid, VersionRef) else vid
        self.assignments.pop(key, None)


def partition(db: Database, env: Ref, target: Ref | Oid) -> dict[str, list[VersionRef]]:
    """All live versions of ``target`` grouped by state, temporal order."""
    oid = target.oid if isinstance(target, Ref) else target
    states: dict[str, list[VersionRef]] = {s: [] for s in env.states}
    for vref in db.versions(oid):
        states[env.state_of(vref.vid)].append(vref)
    return states


def versions_in_state(
    db: Database, env: Ref, target: Ref | Oid, state: str
) -> list[VersionRef]:
    """The versions of ``target`` currently in ``state`` (temporal order)."""
    return partition(db, env, target).get(state, [])


def effective_version(db: Database, env: Ref, target: Ref | Oid) -> VersionRef | None:
    """The temporally latest version in the ``effective`` state, if any."""
    effective = versions_in_state(db, env, target, "effective")
    return effective[-1] if effective else None


def latest_in_state(
    db: Database, env: Ref, target: Ref | Oid, state: str
) -> VersionRef | None:
    """The temporally latest version of ``target`` in ``state``."""
    matching = versions_in_state(db, env, target, state)
    return matching[-1] if matching else None


def alternatives_in_state(
    db: Database, env: Ref, target: Ref | Oid, state: str
) -> list[VersionRef]:
    """Derivation leaves of ``target`` restricted to ``state``.

    The [24] notion of the current alternatives of a design, filtered by
    review status -- ordering by derived-from composed with partitioning.
    """
    wanted = {v.vid for v in versions_in_state(db, env, target, state)}
    return [leaf for leaf in db.leaves(target) if leaf.vid in wanted]


def promote_pipeline(db: Database, env: Ref, vref: VersionRef, path: list[str]) -> None:
    """Walk a version through several transitions in order."""
    for state in path:
        env.set_state(vref, state)


def sweep_dead_assignments(db: Database, env: Ref) -> int:
    """Drop assignments whose versions no longer exist; returns the count.

    Environments reference versions by Vid; after ``pdelete`` those ids
    dangle.  This is the policy-level garbage collection the kernel does
    not (and should not) know about.
    """
    # Keys read through the proxy come back as bound VersionRefs; unwrap.
    keys = [
        key.vid if isinstance(key, VersionRef) else key
        for key in env.assignments
    ]
    dead = [vid for vid in keys if not db.version_exists(vid)]
    if dead:
        with env.modify() as e:
            for vid in dead:
                e.assignments.pop(vid, None)
    return len(dead)
