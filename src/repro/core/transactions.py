"""Transactions and locking for the versioning kernel.

The paper defers concurrency control ("We do not discuss concurrency
control issues in this paper", §4 fn. 3), but its persistence model demands
atomic, durable updates -- a ``newversion`` touches the versions heap, the
object table, and the id counter, and either all of it survives a crash or
none of it does.  This module provides:

* :class:`LockManager` -- strict two-phase locking at object granularity
  with shared/exclusive modes, lock upgrade, and timeout-based deadlock
  resolution (a waiter that times out aborts, wound-free and simple).
* :class:`Transaction` -- collects WAL records for its heap operations,
  commits by flushing the log through its ``COMMIT`` record, and aborts by
  applying undo images in reverse while logging the compensation ops so
  that crash recovery repeats them (see :mod:`repro.storage.wal`).

In-memory rollback after abort is coarse: the store and catalog caches are
rebuilt from the (restored) heaps by the database facade.  Aborts are rare
in the paper's workloads; simplicity wins.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.errors import LockTimeoutError, TransactionStateError
from repro.storage.wal import (
    ABORT_END,
    BEGIN,
    COMMIT,
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    LogManager,
    LogRecord,
)

if TYPE_CHECKING:
    from repro.storage.heap import HeapFile

#: Lock modes.
SHARED = "S"
EXCLUSIVE = "X"

#: Transaction states.
ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class LockManager:
    """Strict 2PL lock table keyed by arbitrary hashable resources.

    Compatible requests: any number of SHARED holders, or exactly one
    EXCLUSIVE holder.  A holder of SHARED may upgrade to EXCLUSIVE when it
    is the only holder.  Waits time out after ``timeout`` seconds and raise
    :class:`LockTimeoutError` -- the caller is expected to abort, which
    resolves deadlocks.

    Fairness: a *waiting* EXCLUSIVE request blocks freshly arriving SHARED
    requests on the same resource.  Without this, steady read traffic
    starves writers -- each new reader is compatible with the current
    SHARED holders, so the writer only ever acquires via the timeout path.
    SHARED requests by a transaction already waiting nowhere behind the
    writer are still granted when they already hold the lock (re-entry),
    and upgrades get the same anti-starvation benefit since they register
    as waiting-EXCLUSIVE too.
    """

    def __init__(self, timeout: float = 2.0) -> None:
        self._timeout = timeout
        self._cond = threading.Condition()
        # resource -> {txid: mode}
        self._holders: dict[object, dict[int, str]] = {}
        # resource -> set of txids currently waiting for EXCLUSIVE
        self._waiting_x: dict[object, set[int]] = {}

    def acquire(self, txid: int, resource: object, mode: str) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``txid``."""
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        deadline = time.monotonic() + self._timeout
        with self._cond:
            waiting_registered = False
            try:
                while True:
                    holders = self._holders.setdefault(resource, {})
                    held = holders.get(txid)
                    if held == EXCLUSIVE or held == mode:
                        return
                    if mode == SHARED:
                        compatible = all(
                            m == SHARED for t, m in holders.items() if t != txid
                        )
                        blocked_by_writer = any(
                            t != txid for t in self._waiting_x.get(resource, ())
                        )
                        if compatible and not blocked_by_writer:
                            holders[txid] = SHARED
                            return
                    else:  # EXCLUSIVE (fresh or upgrade)
                        others = [t for t in holders if t != txid]
                        if not others:
                            holders[txid] = EXCLUSIVE
                            return
                        if not waiting_registered:
                            self._waiting_x.setdefault(resource, set()).add(txid)
                            waiting_registered = True
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        if not holders:
                            del self._holders[resource]
                        raise LockTimeoutError(
                            f"txn {txid} timed out waiting for {mode} on {resource!r}"
                        )
                    self._cond.wait(remaining)
            finally:
                if waiting_registered:
                    waiters = self._waiting_x.get(resource)
                    if waiters is not None:
                        waiters.discard(txid)
                        if not waiters:
                            del self._waiting_x[resource]
                    # Readers held back by this writer must re-check, both
                    # when the writer acquired and when it timed out.
                    self._cond.notify_all()

    def release_all(self, txid: int) -> None:
        """Release every lock held by ``txid`` (commit/abort time)."""
        with self._cond:
            empty = []
            for resource, holders in self._holders.items():
                holders.pop(txid, None)
                if not holders:
                    empty.append(resource)
            for resource in empty:
                del self._holders[resource]
            self._cond.notify_all()

    def held(self, txid: int) -> dict[object, str]:
        """Snapshot of the locks held by ``txid`` (testing aid)."""
        with self._cond:
            return {
                resource: holders[txid]
                for resource, holders in self._holders.items()
                if txid in holders
            }


class Transaction:
    """One atomic unit of work against the database.

    Created by the database facade, which passes ``heap_resolver`` (file id
    -> :class:`HeapFile`) for abort-time undo and ``on_finish`` for cache
    invalidation and lock release.  The transaction's :meth:`log_op` is the
    callback threaded through every heap mutation it performs.
    """

    def __init__(
        self,
        txid: int,
        log: LogManager,
        lock_manager: LockManager,
        heap_resolver: Callable[[int], "HeapFile"],
        on_finish: Callable[["Transaction"], None],
        storage_mutex: "threading.RLock | None" = None,
    ) -> None:
        self.txid = txid
        self.state = ACTIVE
        #: Object ids this transaction may have mutated (X-locked targets
        #: plus objects it created).  On abort the database facade uses the
        #: set to invalidate caches precisely instead of clearing them.
        self.touched_oids: set = set()
        #: Set when an operation failed partway through -- the touched set
        #: can no longer be trusted, so abort falls back to a full reload.
        self.cache_taint = False
        self._log = log
        self._locks = lock_manager
        self._heap_resolver = heap_resolver
        self._on_finish = on_finish
        self._storage_mutex = storage_mutex
        self._ops: list[LogRecord] = []
        self._log.append(LogRecord(BEGIN, txid))

    # -- the heap callback ----------------------------------------------------

    def log_op(
        self,
        kind: int,
        file_id: int,
        page_id: int,
        slot: int,
        payload: bytes,
        undo_payload: bytes,
    ) -> None:
        """Record one heap mutation (appended to the WAL, buffered)."""
        self._require_active()
        record = LogRecord(kind, self.txid, file_id, page_id, slot, payload, undo_payload)
        self._log.append(record)
        self._ops.append(record)

    # -- locking ------------------------------------------------------------

    def lock(self, resource: object, mode: str = EXCLUSIVE) -> None:
        """Acquire a lock held until commit/abort (strict 2PL)."""
        self._require_active()
        self._locks.acquire(self.txid, resource, mode)

    # -- savepoints ------------------------------------------------------------

    def savepoint(self) -> int:
        """Mark the current position; :meth:`rollback_to` returns here.

        Savepoints are plain op-counts: cheap, nestable, and invalidated
        by rolling back past them.
        """
        self._require_active()
        return len(self._ops)

    def rollback_to(self, savepoint: int) -> int:
        """Undo every operation after ``savepoint``; the txn stays active.

        Compensation ops are logged (as in abort) so crash recovery agrees
        with the in-memory undo.  Returns the number of ops undone.
        The caller (the database facade) must refresh derived caches.
        """
        self._require_active()
        if not 0 <= savepoint <= len(self._ops):
            raise TransactionStateError(
                f"invalid savepoint {savepoint} (transaction has {len(self._ops)} ops)"
            )
        victims = self._ops[savepoint:]
        del self._ops[savepoint:]
        if self._storage_mutex is not None:
            with self._storage_mutex:
                self._undo_records(victims)
        else:
            self._undo_records(victims)
        return len(victims)

    # -- outcome --------------------------------------------------------------

    def commit(self) -> None:
        """Make every logged operation durable, then release locks."""
        self._require_active()
        self._log.append(LogRecord(COMMIT, self.txid))
        self._log.flush()
        self.state = COMMITTED
        self._finish()

    def abort(self) -> None:
        """Undo every operation (in reverse), log the compensations, finish."""
        self._require_active()
        if self._storage_mutex is not None:
            with self._storage_mutex:
                self._undo_all()
        else:
            self._undo_all()
        self._log.append(LogRecord(ABORT_END, self.txid))
        self._log.flush()
        self.state = ABORTED
        self._finish()

    def _undo_all(self) -> None:
        self._undo_records(self._ops)

    def _undo_records(self, records: list[LogRecord]) -> None:
        for record in reversed(records):
            heap = self._heap_resolver(record.file_id)
            if record.kind == OP_INSERT:
                heap.replay_delete(record.page_id, record.slot)
                self._log.append(
                    LogRecord(
                        OP_DELETE,
                        self.txid,
                        record.file_id,
                        record.page_id,
                        record.slot,
                        b"",
                        record.payload,
                    )
                )
            elif record.kind == OP_UPDATE:
                heap.replay_update(record.page_id, record.slot, record.undo_payload)
                self._log.append(
                    LogRecord(
                        OP_UPDATE,
                        self.txid,
                        record.file_id,
                        record.page_id,
                        record.slot,
                        record.undo_payload,
                        record.payload,
                    )
                )
            else:  # OP_DELETE
                heap.replay_insert(record.page_id, record.slot, record.undo_payload)
                self._log.append(
                    LogRecord(
                        OP_INSERT,
                        self.txid,
                        record.file_id,
                        record.page_id,
                        record.slot,
                        record.undo_payload,
                        b"",
                    )
                )

    def _finish(self) -> None:
        self._locks.release_all(self.txid)
        self._on_finish(self)

    def _require_active(self) -> None:
        if self.state != ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txid} is {self.state}, not active"
            )

    @property
    def op_count(self) -> int:
        """Number of heap operations logged so far."""
        return len(self._ops)

    def __repr__(self) -> str:
        return f"Transaction(txid={self.txid}, state={self.state}, ops={len(self._ops)})"
