"""Transactions and locking for the versioning kernel.

The paper defers concurrency control ("We do not discuss concurrency
control issues in this paper", §4 fn. 3), but its persistence model demands
atomic, durable updates -- a ``newversion`` touches the versions heap, the
object table, and the id counter, and either all of it survives a crash or
none of it does.  This module provides:

* :class:`LockManager` -- strict two-phase locking at object granularity
  with shared/exclusive modes, lock upgrade, and a **wait-for graph**
  deadlock detector: every blocked request records which transactions it
  waits for, a cycle is detected the moment it forms, and one member of
  the cycle (least work done, then youngest) is chosen as the victim and
  raises :class:`~repro.errors.DeadlockError` immediately instead of
  stalling.  The acquire timeout remains as a per-transaction *deadline*
  backstop for non-deadlock stalls (a holder that simply never releases).
* :class:`Transaction` -- collects WAL records for its heap operations,
  commits by flushing the log through its ``COMMIT`` record, and aborts by
  applying undo images in reverse while logging the compensation ops so
  that crash recovery repeats them (see :mod:`repro.storage.wal`).

In-memory rollback after abort is coarse: the store and catalog caches are
rebuilt from the (restored) heaps by the database facade.  Aborts are rare
in the paper's workloads; simplicity wins.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import DeadlockError, LockTimeoutError, TransactionStateError
from repro.storage import faults
from repro.verify import hooks
from repro.storage.wal import (
    ABORT_END,
    BEGIN,
    COMMIT,
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    PREPARE,
    LogManager,
    LogRecord,
)

if TYPE_CHECKING:
    from repro.storage.heap import HeapFile

#: Lock modes.
SHARED = "S"
EXCLUSIVE = "X"

#: Transaction states.
ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


#: Number of recent lock-wait durations kept for latency percentiles.
_WAIT_SAMPLE_CAP = 8192


class LockManager:
    """Strict 2PL lock table keyed by arbitrary hashable resources.

    Compatible requests: any number of SHARED holders, or exactly one
    EXCLUSIVE holder.  A holder of SHARED may upgrade to EXCLUSIVE when it
    is the only holder.

    Deadlock handling is a live **wait-for graph**: every blocked request
    registers itself as a waiter, and the set of transactions blocking a
    waiter (its outgoing wait-for edges) is always *derived fresh* from
    the current holder and waiter tables -- edges can never go stale.  A
    new waiter immediately runs cycle detection from itself; if its
    request closed a cycle, one member is chosen as the **victim** --
    least work done first (via the pluggable :attr:`work_of` callback),
    youngest (largest txid) on ties -- flagged, and woken.  The victim's
    ``acquire`` raises :class:`~repro.errors.DeadlockError` carrying the
    cycle; aborting it releases its locks and breaks the cycle for the
    survivors.  The acquire ``timeout`` (overridable per call, so each
    transaction can carry its own deadline) remains as a backstop for
    stalls that are not deadlocks at all -- a holder that simply never
    releases -- and raises :class:`LockTimeoutError` as before.

    Upgrades are modelled as ordinary EXCLUSIVE waits whose blockers are
    the *other* holders, so the classic upgrade-upgrade deadlock (two
    SHARED holders both requesting EXCLUSIVE) is a two-edge cycle and is
    detected the instant the second upgrader blocks.

    Fairness: a *waiting* EXCLUSIVE request blocks freshly arriving SHARED
    requests on the same resource.  Without this, steady read traffic
    starves writers -- each new reader is compatible with the current
    SHARED holders, so the writer only ever acquires via the timeout path.
    Re-entrant requests by existing holders are still granted immediately,
    and upgrades get the same anti-starvation benefit since they wait as
    EXCLUSIVE too.
    """

    def __init__(self, timeout: float = 2.0, detect_deadlocks: bool = True) -> None:
        self._timeout = timeout
        self._detect_enabled = detect_deadlocks
        self._cond = threading.Condition()
        # resource -> {txid: held mode}
        self._holders: dict[object, dict[int, str]] = {}
        # resource -> {txid: requested mode} for every blocked request.
        self._waiters: dict[object, dict[int, str]] = {}
        # txid -> detected cycle; set by the detector, consumed (raised)
        # by the victim's own acquire loop.
        self._victims: dict[int, tuple[int, ...]] = {}
        #: Optional callback txid -> work done (e.g. ops logged); the
        #: victim choice prefers the transaction with the least work.
        self.work_of: Callable[[int], int] | None = None
        #: Recent wait durations (seconds), for p99 latency assertions.
        self.wait_samples: deque[float] = deque(maxlen=_WAIT_SAMPLE_CAP)
        self.deadlocks_detected = 0
        self.victims_aborted = 0
        self.timeouts = 0
        self.acquires = 0
        self.waits = 0
        self.wait_time_total = 0.0

    # -- wait-for graph ------------------------------------------------------

    def _blockers(self, txid: int, resource: object, mode: str) -> set[int]:
        """Transactions currently preventing this request (fresh, not cached)."""
        holders = self._holders.get(resource, {})
        if mode == SHARED:
            blocked = {t for t, m in holders.items() if t != txid and m != SHARED}
            # Writer priority: fresh SHARED requests queue behind waiting
            # EXCLUSIVE requests, so those writers are blockers too.
            blocked.update(
                t
                for t, m in self._waiters.get(resource, {}).items()
                if t != txid and m == EXCLUSIVE
            )
            return blocked
        return {t for t in holders if t != txid}

    def _edges_of(self, txid: int) -> set[int]:
        """All outgoing wait-for edges of ``txid`` (over every resource)."""
        edges: set[int] = set()
        for resource, waiters in self._waiters.items():
            mode = waiters.get(txid)
            if mode is not None:
                edges.update(self._blockers(txid, resource, mode))
        return edges

    def _find_cycle(self, start: int) -> tuple[int, ...] | None:
        """A wait-for cycle through ``start``, or None.  Caller holds _cond.

        Transactions already flagged as victims are treated as absent:
        they are guaranteed to abort and release everything they hold, so
        any wait that goes through one resolves on its own.  Skipping
        them also keeps :meth:`_detect_and_resolve`'s loop from re-finding
        a cycle it has already broken.
        """
        path: list[int] = [start]
        on_path = {start}
        stack = [iter(self._edges_of(start))]
        while stack:
            advanced = False
            for nxt in stack[-1]:
                if nxt == start:
                    return tuple(path)
                if nxt in on_path or nxt in self._victims:
                    continue
                on_path.add(nxt)
                path.append(nxt)
                stack.append(iter(self._edges_of(nxt)))
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_path.discard(path.pop())
        return None

    def _choose_victim(self, cycle: tuple[int, ...]) -> int:
        """Least work done, then youngest (largest txid)."""
        work = self.work_of

        def key(txid: int) -> tuple[int, int]:
            return (work(txid) if work is not None else 0, -txid)

        return min(cycle, key=key)

    def _detect_and_resolve(self, txid: int) -> None:
        """Resolve every cycle through a freshly blocked ``txid``.

        One blocking request can close several cycles at once (two other
        holders of the contended resource may already be upgrading, say),
        and breaking one does not break the rest -- no further block event
        will come to re-trigger detection, so stopping at the first cycle
        would leave the survivors deadlocked until their deadline.  Loop
        until no cycle through ``txid`` remains; each round flags one
        victim, which :meth:`_find_cycle` then treats as gone.
        """
        if not self._detect_enabled:
            return
        while True:
            cycle = self._find_cycle(txid)
            if cycle is None:
                return
            self.deadlocks_detected += 1
            victim = self._choose_victim(cycle)
            self._victims[victim] = cycle
            self._cond.notify_all()
            hooks.sched_notify()
            if victim == txid:
                return  # the caller itself is dying; its edges die with it

    # -- acquisition -----------------------------------------------------------

    def acquire(
        self,
        txid: int,
        resource: object,
        mode: str,
        timeout: float | None = None,
    ) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``txid``.

        ``timeout`` overrides the manager default for this call (the
        per-transaction deadline backstop).  Raises
        :class:`~repro.errors.DeadlockError` if this request completes a
        wait-for cycle and ``txid`` is chosen as the victim, or
        :class:`~repro.errors.LockTimeoutError` on deadline expiry.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        budget = self._timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        with self._cond:
            self.acquires += 1
            holders = self._holders.setdefault(resource, {})
            held = holders.get(txid)
            if held == EXCLUSIVE or held == mode:
                return
            if not self._blockers(txid, resource, mode):
                holders[txid] = mode
                return
            # Blocked: join the wait-for graph and look for a cycle.
            wait_start = time.monotonic()
            self.waits += 1
            self._waiters.setdefault(resource, {})[txid] = mode
            try:
                self._detect_and_resolve(txid)
                while True:
                    cycle = self._victims.pop(txid, None)
                    if cycle is not None:
                        self.victims_aborted += 1
                        raise DeadlockError(
                            f"txn {txid} chosen as deadlock victim waiting for "
                            f"{mode} on {resource!r} (cycle {' -> '.join(map(str, cycle + (cycle[0],)))})",
                            cycle=cycle,
                            victim=txid,
                        )
                    holders = self._holders.setdefault(resource, {})
                    if not self._blockers(txid, resource, mode):
                        holders[txid] = mode
                        return
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.timeouts += 1
                        raise LockTimeoutError(
                            f"txn {txid} timed out waiting for {mode} on {resource!r}"
                        )
                    hooks.cond_wait(self._cond, remaining)
            finally:
                waited = time.monotonic() - wait_start
                self.wait_time_total += waited
                self.wait_samples.append(waited)
                waiters = self._waiters.get(resource)
                if waiters is not None:
                    waiters.pop(txid, None)
                    if not waiters:
                        del self._waiters[resource]
                self._victims.pop(txid, None)
                if not self._holders.get(resource):
                    self._holders.pop(resource, None)
                # Readers held back by this waiter (writer priority) and
                # detectors must re-check, whether we acquired or failed.
                self._cond.notify_all()
                hooks.sched_notify()

    def release_all(self, txid: int) -> None:
        """Release every lock held by ``txid`` (commit/abort time)."""
        with self._cond:
            empty = []
            for resource, holders in self._holders.items():
                holders.pop(txid, None)
                if not holders:
                    empty.append(resource)
            for resource in empty:
                del self._holders[resource]
            self._victims.pop(txid, None)
            self._cond.notify_all()
        hooks.sched_notify()

    def covers(self, txid: int, resource: object, mode: str) -> bool:
        """True if the lock ``txid`` already holds satisfies ``mode``."""
        with self._cond:
            held = self._holders.get(resource, {}).get(txid)
            return held == EXCLUSIVE or held == mode

    def held(self, txid: int) -> dict[object, str]:
        """Snapshot of the locks held by ``txid`` (testing aid)."""
        with self._cond:
            return {
                resource: holders[txid]
                for resource, holders in self._holders.items()
                if txid in holders
            }

    # -- introspection ---------------------------------------------------------

    def assert_quiescent(self) -> None:
        """Raise AssertionError unless no locks are held, waited on, or flagged.

        Test teardowns call this to prove that no code path can leak a
        lock: every holder entry, waiter registration, and victim flag
        must have been cleaned up by commit/abort/error paths.
        """
        with self._cond:
            if self._holders or self._waiters or self._victims:
                raise AssertionError(
                    "lock manager not quiescent: "
                    f"holders={self._holders!r} waiters={self._waiters!r} "
                    f"victims={sorted(self._victims)!r}"
                )

    def wait_p99(self) -> float:
        """99th-percentile recent lock-wait latency in seconds (0.0 if none)."""
        with self._cond:
            samples = sorted(self.wait_samples)
        if not samples:
            return 0.0
        return samples[min(len(samples) - 1, int(len(samples) * 0.99))]

    def stats(self) -> dict[str, object]:
        """Namespaced counters for ``Database.stats()`` (``locks.*``)."""
        with self._cond:
            return {
                "locks.deadlocks": self.deadlocks_detected,
                "locks.victims": self.victims_aborted,
                "locks.timeouts": self.timeouts,
                "locks.acquires": self.acquires,
                "locks.waits": self.waits,
                "locks.wait_time": self.wait_time_total,
                "locks.held": sum(len(h) for h in self._holders.values()),
            }


def undo_operations(
    records: "list[LogRecord] | tuple[LogRecord, ...]",
    heap_resolver: Callable[[int], "HeapFile"],
    log: LogManager,
    txid: int,
) -> None:
    """Apply undo images for ``records`` in reverse, logging compensations.

    The compensation ops are ordinary ``OP_*`` records under ``txid``, so
    crash recovery repeats the rollback instead of re-deriving it.  Used
    by :meth:`Transaction.abort`/:meth:`Transaction.rollback_to` and by
    presumed-abort resolution of in-doubt 2PC participants (which rolls
    back a transaction recovered from the WAL, not a live one).
    """
    for record in reversed(records):
        heap = heap_resolver(record.file_id)
        if record.kind == OP_INSERT:
            heap.replay_delete(record.page_id, record.slot)
            log.append(
                LogRecord(
                    OP_DELETE,
                    txid,
                    record.file_id,
                    record.page_id,
                    record.slot,
                    b"",
                    record.payload,
                )
            )
        elif record.kind == OP_UPDATE:
            heap.replay_update(record.page_id, record.slot, record.undo_payload)
            log.append(
                LogRecord(
                    OP_UPDATE,
                    txid,
                    record.file_id,
                    record.page_id,
                    record.slot,
                    record.undo_payload,
                    record.payload,
                )
            )
        else:  # OP_DELETE
            heap.replay_insert(record.page_id, record.slot, record.undo_payload)
            log.append(
                LogRecord(
                    OP_INSERT,
                    txid,
                    record.file_id,
                    record.page_id,
                    record.slot,
                    record.undo_payload,
                    b"",
                )
            )


class Transaction:
    """One atomic unit of work against the database.

    Created by the database facade, which passes ``heap_resolver`` (file id
    -> :class:`HeapFile`) for abort-time undo and ``on_finish`` for cache
    invalidation and lock release.  The transaction's :meth:`log_op` is the
    callback threaded through every heap mutation it performs.
    """

    def __init__(
        self,
        txid: int,
        log: LogManager,
        lock_manager: LockManager,
        heap_resolver: Callable[[int], "HeapFile"],
        on_finish: Callable[["Transaction"], None],
        storage_mutex: "threading.RLock | None" = None,
        lock_timeout: float | None = None,
    ) -> None:
        self.txid = txid
        self.state = ACTIVE
        #: Per-transaction lock deadline (None = the manager's default);
        #: the timeout backstop of the wait-for-graph deadlock detector.
        self.lock_timeout = lock_timeout
        #: Object ids this transaction may have mutated (X-locked targets
        #: plus objects it created).  On abort the database facade uses the
        #: set to invalidate caches precisely instead of clearing them.
        self.touched_oids: set = set()
        #: Set when an operation failed partway through -- the touched set
        #: can no longer be trusted, so abort falls back to a full reload.
        self.cache_taint = False
        #: Pinned snapshot for snapshot-read transactions (set by the
        #: database facade); reads route through it, lock-free.
        self.snapshot = None
        #: True for snapshot-read transactions: every mutation fails fast
        #: with :class:`~repro.errors.ReadOnlySnapshotError`.
        self.read_only = False
        #: True once :meth:`prepare` has made the prepare promise durable;
        #: from then on the transaction never aborts itself on a failed
        #: commit (the coordinator or restart recovery owns its fate).
        self.prepared = False
        #: The owning :class:`~repro.core.session.Session` (set by the
        #: database facade); the transaction's operations may execute on
        #: any thread that has the session activated.
        self.session = None
        #: Content-addressed blob keys this transaction put (appended by
        #: the version store).  On abort/rollback the database sweeps the
        #: ones whose index records the undo removed.
        self.blob_puts: list = []
        self._log = log
        self._locks = lock_manager
        self._heap_resolver = heap_resolver
        self._on_finish = on_finish
        self._storage_mutex = storage_mutex
        self._ops: list[LogRecord] = []
        self._log.append(LogRecord(BEGIN, txid))

    # -- the heap callback ----------------------------------------------------

    def log_op(
        self,
        kind: int,
        file_id: int,
        page_id: int,
        slot: int,
        payload: bytes,
        undo_payload: bytes,
    ) -> None:
        """Record one heap mutation (appended to the WAL, buffered)."""
        self._require_active()
        record = LogRecord(kind, self.txid, file_id, page_id, slot, payload, undo_payload)
        self._log.append(record)
        self._ops.append(record)

    # -- locking ------------------------------------------------------------

    def lock(self, resource: object, mode: str = EXCLUSIVE) -> None:
        """Acquire a lock held until commit/abort (strict 2PL)."""
        self._require_active()
        # Yield only on acquisitions that could change the lock table --
        # re-acquires of covered locks are invisible to other threads and
        # would only blow up the explorer's decision tree.
        if hooks.attached() is not None and not self._locks.covers(
            self.txid, resource, mode
        ):
            hooks.sched_point("txn.lock")
        self._locks.acquire(self.txid, resource, mode, timeout=self.lock_timeout)

    # -- savepoints ------------------------------------------------------------

    def savepoint(self) -> int:
        """Mark the current position; :meth:`rollback_to` returns here.

        Savepoints are plain op-counts: cheap, nestable, and invalidated
        by rolling back past them.
        """
        self._require_active()
        return len(self._ops)

    def rollback_to(self, savepoint: int) -> int:
        """Undo every operation after ``savepoint``; the txn stays active.

        Compensation ops are logged (as in abort) so crash recovery agrees
        with the in-memory undo.  Returns the number of ops undone.
        The caller (the database facade) must refresh derived caches.
        """
        self._require_active()
        if not 0 <= savepoint <= len(self._ops):
            raise TransactionStateError(
                f"invalid savepoint {savepoint} (transaction has {len(self._ops)} ops)"
            )
        victims = self._ops[savepoint:]
        del self._ops[savepoint:]
        if self._storage_mutex is not None:
            with self._storage_mutex:
                self._undo_records(victims)
        else:
            self._undo_records(victims)
        return len(victims)

    # -- outcome --------------------------------------------------------------

    def prepare(self, meta: bytes) -> None:
        """Phase one of two-phase commit: promise that commit cannot fail.

        Appends a ``PREPARE`` record carrying ``meta`` (the coordinator's
        encoded ``(gtxid, coordinator, participants)``) and flushes through
        it.  After this returns, the transaction's ops and the promise are
        durable: a crash before the decision leaves it *in-doubt*, and
        restart recovery keeps its effects until the coordinator's verdict
        is known.  The transaction stays active and keeps its locks; the
        owner must follow with :meth:`commit` or :meth:`abort`.
        """
        self._require_active()
        if self.prepared:
            raise TransactionStateError(
                f"transaction {self.txid} is already prepared"
            )
        hooks.sched_point("txn.prepare")
        self._log.append(LogRecord(PREPARE, self.txid, payload=meta))
        self._log.flush()
        self.prepared = True

    def commit(self) -> None:
        """Make every logged operation durable, then release locks.

        A failed commit (the WAL flush raised) is *not* acknowledged: the
        transaction aborts itself -- the WAL kept the unwritten tail, so
        the abort's own flush retries the I/O -- and the original error
        propagates.  Whatever happens, the locks are released: a
        transaction must never exit this method still holding locks, or
        every other transaction contending on them stalls until timeout.

        Exception: a *prepared* participant must never abort unilaterally
        -- by the time phase two runs, the global decision may already be
        durable in the coordinator's WAL, and a self-abort here would
        contradict it.  A prepared commit that fails keeps the transaction
        active (locks held, effects in place) so the caller can retry or
        leave resolution to restart recovery.
        """
        self._require_active()
        hooks.sched_point("txn.commit")
        try:
            self._log.append(LogRecord(COMMIT, self.txid))
            self._log.flush()
        except BaseException:
            if self.prepared:
                raise
            try:
                if not faults.is_crashed():
                    self.abort()
            except BaseException:
                pass  # the commit's own error is the one to surface
            finally:
                if self.state == ACTIVE:
                    # The abort failed too (dead disk / simulated crash):
                    # durable repair is recovery's job, but the locks and
                    # the wait-for edges must not outlive the corpse.
                    self.cache_taint = True
                    self.state = ABORTED
                    self._finish()
            raise
        hooks.sched_point("txn.commit.durable")
        self.state = COMMITTED
        self._finish()

    def abort(self, *, release_prepared: bool = False) -> None:
        """Undo every operation (in reverse), log the compensations, finish.

        Locks are released even when the undo itself fails partway (I/O
        error mid-rollback): the heaps are then repaired by WAL recovery
        on reopen, but no other transaction is left waiting on a corpse.

        A *prepared* participant refuses a unilateral abort: the global
        commit verdict may already be durable in the coordinator's WAL,
        and rolling back here would contradict it.  ``release_prepared=
        True`` is the coordinator's presumed-abort override -- legal only
        while it knows no decision record exists.
        """
        self._require_active()
        if self.prepared and not release_prepared:
            raise TransactionStateError(
                f"transaction {self.txid} is prepared; only its coordinator "
                "(or restart recovery) may decide its fate"
            )
        hooks.sched_point("txn.abort")
        try:
            if self._storage_mutex is not None:
                with self._storage_mutex:
                    self._undo_all()
            else:
                self._undo_all()
            self._log.append(LogRecord(ABORT_END, self.txid))
            self._log.flush()
        except BaseException:
            # Partial undo: the touched set no longer bounds the damage.
            self.cache_taint = True
            raise
        finally:
            self.state = ABORTED
            self._finish()

    def _undo_all(self) -> None:
        self._undo_records(self._ops)

    def _undo_records(self, records: list[LogRecord]) -> None:
        undo_operations(records, self._heap_resolver, self._log, self.txid)

    def _finish(self) -> None:
        hooks.sched_point("txn.release")
        self._locks.release_all(self.txid)
        self._on_finish(self)

    def _require_active(self) -> None:
        if self.state != ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txid} is {self.state}, not active"
            )

    @property
    def op_count(self) -> int:
        """Number of heap operations logged so far."""
        return len(self._ops)

    def __repr__(self) -> str:
        return f"Transaction(txid={self.txid}, state={self.state}, ops={len(self._ops)})"
