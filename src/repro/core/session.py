"""Sessions: per-client state, decoupled from the database kernel.

The embedded API binds client state to *threads*: ``db.begin()`` parks
the transaction in a thread-local, so "one client" and "one thread" are
the same thing.  A network service breaks that identification -- one
connection's requests may execute on many worker threads, and one worker
thread serves many connections -- so the client-side state has to become
an explicit object.  A :class:`Session` is that object:

* the client's **open transaction** (at most one; strict 2PL is per
  transaction, not per thread, so any thread may execute its operations
  while the session is activated there);
* the client's **pinned snapshot** -- the default read context.  While a
  session holds a pin, its reads outside a transaction resolve against
  the pinned publication epoch through the PR-4 lock-free path: no
  SHARED locks, no storage mutex.  :meth:`Session.reader` re-pins when
  the published epoch has advanced, so a read-mostly client tracks
  committed state without ever taking a lock;
* a free-form **context** dict for client-scoped defaults (the network
  layer stores per-connection settings here).

The :class:`~repro.core.database.Database` facade keeps its embedded
ergonomics by giving every thread an *implicit* session lazily -- the
pre-session behaviour is exactly "each thread uses its own implicit
session, never activated elsewhere".  Explicit sessions come from
:meth:`Database.session` and are activated around each request with
:meth:`Session.activate`, which temporarily binds the session to the
calling thread (and refuses to be active on two threads at once -- a
session is one client, and one client's requests are serialized).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import SessionStateError

if TYPE_CHECKING:
    from repro.core.database import Database
    from repro.core.snapshot import Snapshot
    from repro.core.transactions import Transaction

_session_ids = itertools.count(1)


class Session:
    """One client's state against a database: txn, snapshot pin, context."""

    def __init__(self, db: "Database", name: str | None = None) -> None:
        self.id = next(_session_ids)
        self.name = name or f"session-{self.id}"
        self._db = db
        #: The session's open transaction, or None.  Set by
        #: ``Database.begin`` while this session is active; cleared when
        #: the transaction finishes (on whatever thread that happens).
        self.txn: "Transaction | None" = None
        #: Client-scoped defaults (the network layer keeps per-connection
        #: settings -- peer address, default-version context -- here).
        self.context: dict[str, Any] = {}
        self.closed = False
        #: Pinned snapshot serving as the default read context, or None.
        self._snapshot: "Snapshot | None" = None
        # Guards pin/unpin/refresh against concurrent readers.
        self._pin_mutex = threading.Lock()
        # The thread the session is currently activated on, or None.
        self._active_thread: int | None = None

    # -- activation ---------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Session"]:
        """Bind the session to the calling thread for one request.

        While active, ``db.begin()`` / ``db.current_transaction()`` and
        every read resolve against *this* session instead of the thread's
        implicit one.  Activation nests on the same thread (re-entrant)
        but refuses to span two threads at once: a session is a single
        client, and its requests must be serialized by the caller.
        """
        if self.closed:
            raise SessionStateError(f"{self.name} is closed")
        me = threading.get_ident()
        with self._pin_mutex:
            if self._active_thread is not None and self._active_thread != me:
                raise SessionStateError(
                    f"{self.name} is already active on another thread"
                )
            nested = self._active_thread == me
            self._active_thread = me
        prev = self._db._swap_active_session(self)
        try:
            yield self
        finally:
            self._db._swap_active_session(prev)
            if not nested:
                with self._pin_mutex:
                    self._active_thread = None

    # -- the snapshot read context -----------------------------------------

    @property
    def snapshot(self) -> "Snapshot | None":
        """The pinned default read context, or None."""
        return self._snapshot

    def pin(self) -> "Snapshot":
        """Pin (or refresh) the session's snapshot read context.

        Subsequent reads outside a transaction resolve against the pinned
        epoch, lock-free.  Returns the pinned snapshot.
        """
        if self.closed:
            raise SessionStateError(f"{self.name} is closed")
        snap = self._db.snapshot()
        with self._pin_mutex:
            old, self._snapshot = self._snapshot, snap
        if old is not None:
            old.close()
        return snap

    def adopt_pin(self, snap: "Snapshot") -> "Snapshot":
        """Install an *externally pinned* snapshot as the read context.

        The sharded router uses this to make every shard session's pin a
        part of one global cut (see :mod:`repro.shard.snapshot`): the
        cut pins each shard under the cut latch, then hands the parts to
        the shard sessions so reads routed through them resolve against
        the same consistent point as the fanned-out reader.  Ownership
        is shared -- ``Snapshot.close`` is idempotent, so whichever of
        the cut or the session unpins last is harmless.
        """
        if self.closed:
            raise SessionStateError(f"{self.name} is closed")
        with self._pin_mutex:
            old, self._snapshot = self._snapshot, snap
        if old is not None and old is not snap:
            old.close()
        return snap

    def unpin(self) -> None:
        """Drop the snapshot read context; reads see live state again."""
        with self._pin_mutex:
            old, self._snapshot = self._snapshot, None
        if old is not None:
            old.close()

    def reader(self) -> "Snapshot":
        """The pinned snapshot, re-pinned if publication has advanced.

        The staleness probe is one integer compare against the store's
        epoch counter; the common no-new-commits case costs nothing and
        takes no locks.  Pins the session if it was not pinned yet.
        """
        snap = self._snapshot
        if snap is None or snap.epoch < self._db.store.snapshots.epoch:
            return self.pin()
        return snap

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Tear the session down: abort its open transaction, unpin.

        Idempotent, callable from any thread -- the network layer calls it
        when a connection drops, which may race the session's own worker.
        """
        if self.closed:
            return
        self.closed = True
        txn = self.txn
        if txn is not None and txn.state == "active":
            if getattr(txn, "prepared", False):
                # A prepared participant's fate belongs to its coordinator
                # (or restart recovery): detach it, never roll it back.
                pass
            else:
                with self.activate_for_teardown():
                    txn.abort()
        self.txn = None
        self.unpin()
        self._db._forget_session(self)

    @contextmanager
    def activate_for_teardown(self) -> Iterator[None]:
        """Activation that bypasses the closed/other-thread checks.

        ``close()`` must be able to abort the open transaction even when
        the session's last request died mid-flight on another thread.
        """
        prev = self._db._swap_active_session(self)
        try:
            yield
        finally:
            self._db._swap_active_session(prev)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("txn" if self.txn else "idle")
        return f"Session({self.name!r}, {state})"
