"""Object ids and version ids -- the paper's two kinds of identity.

Paper §4: "O++ supports both object ids and version ids.  However, an
object id does not refer to a generic object header as in [6, 8]; rather,
it logically refers to the latest version of the object."

:class:`Oid` is the identity of a persistent *object* across all its
versions -- dereferencing it yields the **latest** version (generic /
dynamic / late binding).  :class:`Vid` names one specific version (specific
/ static binding).  Both are small immutable value types, hashable, totally
ordered, and registered with the stable codec so they can be embedded in
any persistent state (that is how inter-object references are stored).

A Vid carries the Oid of its object: given a specific version you can
always recover the object it belongs to (paper §4's ``version_of`` walk in
the other direction is the store's job).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.storage import serialization

_OID = struct.Struct("<Q")
_VID = struct.Struct("<QQ")


@dataclass(frozen=True, order=True)
class Oid:
    """Identity of a persistent object (denotes its latest version)."""

    value: int

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"object ids are positive, got {self.value}")

    def __repr__(self) -> str:
        return f"Oid({self.value})"

    def pack(self) -> bytes:
        """8-byte little-endian encoding."""
        return _OID.pack(self.value)

    @staticmethod
    def unpack(raw: bytes) -> Oid:
        """Inverse of :meth:`pack`."""
        return Oid(_OID.unpack(raw)[0])


@dataclass(frozen=True, order=True)
class Vid:
    """Identity of one specific version of a persistent object.

    Ordering is ``(oid, serial)``; within one object the serial increases
    with creation time, so Vid order equals temporal order per object.
    """

    oid: Oid
    serial: int

    def __post_init__(self) -> None:
        if self.serial <= 0:
            raise ValueError(f"version serials are positive, got {self.serial}")

    def __repr__(self) -> str:
        return f"Vid({self.oid.value}:{self.serial})"

    def pack(self) -> bytes:
        """16-byte little-endian encoding."""
        return _VID.pack(self.oid.value, self.serial)

    @staticmethod
    def unpack(raw: bytes) -> Vid:
        """Inverse of :meth:`pack`."""
        oid_value, serial = _VID.unpack(raw)
        return Vid(Oid(oid_value), serial)


# Wire Oid/Vid into the stable codec (see repro.storage.serialization).
serialization.install_identity_codec(
    Oid, Oid.pack, Oid.unpack, Vid, Vid.pack, Vid.unpack
)
