"""Generic and specific references with native pointer semantics.

Paper §6: "By overloading the definitions of the ``->`` and ``*`` operators
we were able to define class VersionPtr in such a way that its objects
could be manipulated just like normal pointers."  This module is the Python
analogue: :class:`Ref` (a *generic* reference through an object id, always
denoting the **latest** version -- dynamic/late binding) and
:class:`VersionRef` (a *specific* reference through a version id -- static
binding), both forwarding attribute access to the referenced persistent
state via ``__getattr__`` / ``__setattr__``.

Pointer behaviours reproduced:

* ``ref.field`` reads a field of the referenced version (``p->field``);
* ``ref.field = v`` updates that field *in place* -- mutating a version is
  not the same as creating one; ``newversion`` is always explicit (paper
  §4.2);
* ``ref.method(...)`` calls a method on the referenced object and persists
  any state the method mutated (the C++ original gets this for free because
  ``->`` yields the real object);
* stored references: an attribute holding an :class:`Oid` (or
  :class:`Vid`) is returned through a Ref as another bound Ref
  (VersionRef), so chains like ``book.owner.address`` follow generic
  references exactly like the paper's address-book example -- the *latest*
  address is always read.  Assigning a Ref/VersionRef to an attribute
  stores the underlying id.

The ``with ref.modify() as obj: ...`` form is the explicit alternative for
multi-field updates (one materialize + one write-back).
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from typing import Any, Iterator

from repro.core.cache import READ_MISS
from repro.core.identity import Oid, Vid
from repro.storage import serialization

# Internal slots accessed via object.__getattribute__ to dodge forwarding.
_REF_SLOTS = frozenset({"_store", "_oid", "_vid"})


def _store_key(ref: "_BaseRef") -> Any:
    """The identity that decides whether two refs point into the same store.

    A ref may be bound to a database facade or directly to its version
    store; both views of one database must compare equal, so the facade
    normalizes to its underlying store.
    """
    store = object.__getattribute__(ref, "_store")
    return getattr(store, "store", store)


def unwrap_ids(value: Any) -> Any:
    """Replace Refs/VersionRefs with their ids, recursing into containers.

    Applied to every value stored through a reference so that persistent
    state only ever contains codec values (ids, not live proxies).
    """
    if isinstance(value, Ref):
        return value.oid
    if isinstance(value, VersionRef):
        return value.vid
    if type(value) is list:
        return [unwrap_ids(v) for v in value]
    if type(value) is tuple:
        return tuple(unwrap_ids(v) for v in value)
    if type(value) is dict:
        return {unwrap_ids(k): unwrap_ids(v) for k, v in value.items()}
    if type(value) is set:
        return {unwrap_ids(v) for v in value}
    if type(value) is frozenset:
        return frozenset(unwrap_ids(v) for v in value)
    return value


def wrap_ids(store: Any, value: Any) -> Any:
    """Replace Oids/Vids with bound Refs/VersionRefs, recursing into containers.

    Applied to every value read through a reference, which is what makes
    reference chains (``a.b.c``) dereference like pointers.
    """
    if isinstance(value, Oid):
        return Ref(store, value)
    if isinstance(value, Vid):
        return VersionRef(store, value)
    if type(value) is list:
        return [wrap_ids(store, v) for v in value]
    if type(value) is tuple:
        return tuple(wrap_ids(store, v) for v in value)
    if type(value) is dict:
        return {wrap_ids(store, k): wrap_ids(store, v) for k, v in value.items()}
    if type(value) is set:
        return {wrap_ids(store, v) for v in value}
    if type(value) is frozenset:
        return frozenset(wrap_ids(store, v) for v in value)
    return value


class _BaseRef:
    """Shared forwarding machinery for Ref and VersionRef."""

    __slots__ = ("_store", "_oid", "_vid")

    # Subclasses define _target_vid() (which version to read) and
    # _writable_vid() (which version an in-place write lands on).

    def _target_vid(self) -> Vid:
        raise NotImplementedError

    def _writable_vid(self) -> Vid:
        raise NotImplementedError

    def deref(self) -> Any:
        """Materialize and return the referenced version's object (a copy).

        The Python analogue of the paper's ``*`` operator.  Mutating the
        returned object does not touch the database; use attribute
        assignment, method calls, or :meth:`modify` for that.
        """
        store = object.__getattribute__(self, "_store")
        return store.materialize(self._target_vid())

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        store = object.__getattribute__(self, "_store")
        vid = self._target_vid()
        # Fast path: serve immutable attribute values from the store's
        # shared decoded cache instead of materializing a private copy per
        # access.  READ_MISS means the value cannot be shared safely
        # (methods need a private receiver for write-back) -- fall through.
        read_attr = getattr(store, "read_attr", None)
        if read_attr is not None:
            value = read_attr(vid, name)
            if value is not READ_MISS:
                return wrap_ids(store, value)
        obj = store.materialize(vid)
        value = getattr(obj, name)
        if inspect.ismethod(value) and value.__self__ is obj:
            return _WritebackMethod(self, obj, value)
        return wrap_ids(store, value)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _REF_SLOTS:
            object.__setattr__(self, name, value)
            return
        store = object.__getattribute__(self, "_store")
        vid = self._writable_vid()
        obj = store.materialize(vid)
        setattr(obj, name, unwrap_ids(value))
        store.write_version(vid, obj)

    @contextmanager
    def modify(self) -> Iterator[Any]:
        """Materialize once, let the body mutate, write back once."""
        store = object.__getattribute__(self, "_store")
        vid = self._writable_vid()
        obj = store.materialize(vid)
        yield obj
        store.write_version(vid, obj)

    def type_name(self) -> str:
        """Stable type name of the referenced object."""
        store = object.__getattribute__(self, "_store")
        return store.type_name(self._target_vid().oid)


class _WritebackMethod:
    """A bound method proxy that persists the receiver's state after the call.

    This is what lets ``ref.push(item)`` behave like ``p->push(item)`` in
    O++: the method runs against the materialized object and any mutation
    of it is written back to the referenced version.
    """

    __slots__ = ("_ref", "_obj", "_method")

    def __init__(self, ref: _BaseRef, obj: Any, method: Any) -> None:
        self._ref = ref
        self._obj = obj
        self._method = method

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        result = self._method(*unwrap_ids(list(args)), **unwrap_ids(kwargs))
        store = object.__getattribute__(self._ref, "_store")
        vid = self._ref._writable_vid()
        # Pure reader methods (``ref.total()``) mutate nothing; writing the
        # receiver back anyway would cost a WAL commit, a heap update, and
        # cache invalidations per call.  Stores that can compare the
        # re-encoded receiver against the stored payload skip the no-op.
        writer = getattr(store, "write_version_if_changed", None)
        if writer is not None:
            writer(vid, self._obj)
        else:
            store.write_version(vid, self._obj)
        return wrap_ids(store, result)

    def __repr__(self) -> str:
        return f"<writeback method {self._method.__name__} of {self._ref!r}>"


class Ref(_BaseRef):
    """A *generic* reference: denotes the latest version of an object.

    Paper §3: generic references give "dynamic or late binding" -- an
    address book holding generic references to person objects always reads
    their latest addresses.
    """

    __slots__ = ()

    def __init__(self, store: Any, oid: Oid) -> None:
        object.__setattr__(self, "_store", store)
        object.__setattr__(self, "_oid", oid)

    @property
    def oid(self) -> Oid:
        """The object id this reference carries."""
        return object.__getattribute__(self, "_oid")

    def _target_vid(self) -> Vid:
        store = object.__getattribute__(self, "_store")
        return store.latest_vid(self.oid)

    def _writable_vid(self) -> Vid:
        return self._target_vid()

    def pin(self) -> VersionRef:
        """A *specific* reference to the current latest version.

        Later ``newversion`` calls will not move the pinned reference --
        this is the paper's static binding.
        """
        store = object.__getattribute__(self, "_store")
        return VersionRef(store, self._target_vid())

    def is_alive(self) -> bool:
        """True while the object (any version of it) still exists."""
        store = object.__getattribute__(self, "_store")
        return store.object_exists(self.oid)

    def __eq__(self, other: object) -> bool:
        # Oids are plain value types, so two open databases can hand out
        # refs with equal-looking oids; store identity keeps them distinct.
        return (
            isinstance(other, Ref)
            and other.oid == self.oid
            and _store_key(other) is _store_key(self)
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        # Store identity is deliberately not hashed: equal refs must hash
        # equal, and same-store refs dominate real usage.
        return hash(("Ref", self.oid))

    def __repr__(self) -> str:
        return f"Ref({self.oid.value})"


class VersionRef(_BaseRef):
    """A *specific* reference: denotes one particular version, forever.

    Paper §3: specific references give "static binding", needed when a
    configuration must keep using the exact component version it was
    released with.
    """

    __slots__ = ()

    def __init__(self, store: Any, vid: Vid) -> None:
        object.__setattr__(self, "_store", store)
        object.__setattr__(self, "_vid", vid)

    @property
    def vid(self) -> Vid:
        """The version id this reference carries."""
        return object.__getattribute__(self, "_vid")

    @property
    def oid(self) -> Oid:
        """The id of the object this version belongs to."""
        return self.vid.oid

    def _target_vid(self) -> Vid:
        return self.vid

    def _writable_vid(self) -> Vid:
        return self.vid

    def ref(self) -> Ref:
        """The generic reference to this version's object (latest-tracking)."""
        store = object.__getattribute__(self, "_store")
        return Ref(store, self.vid.oid)

    def is_alive(self) -> bool:
        """True while this specific version still exists."""
        store = object.__getattribute__(self, "_store")
        return store.version_exists(self.vid)

    def is_latest(self) -> bool:
        """True if this version is currently the object's latest."""
        store = object.__getattribute__(self, "_store")
        return store.object_exists(self.vid.oid) and store.latest_vid(self.vid.oid) == self.vid

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VersionRef)
            and other.vid == self.vid
            and _store_key(other) is _store_key(self)
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("VersionRef", self.vid))

    def __repr__(self) -> str:
        return f"VersionRef({self.vid.oid.value}:{self.vid.serial})"


# References nested in persistent state are stored as their ids: a Ref
# persists as its Oid (generic -- stays late-bound on every read) and a
# VersionRef as its Vid (specific -- pinned forever).
serialization.install_reference_unwrapper(Ref, lambda ref: ref.oid)
serialization.install_reference_unwrapper(VersionRef, lambda vref: vref.vid)
