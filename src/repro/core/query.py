"""Associative queries over clusters -- O++'s ``for ... suchthat`` loops.

Ode groups persistent objects of one type into a *cluster* and O++ iterates
them with ``for p in persons suchthat (p->age > 65)``.  The Python analogue
is a small fluent query object over the store's clusters:

    for p in db.query(Person).suchthat(lambda p: p.age > 65):
        ...

The iteration variable is a generic :class:`~repro.core.pointers.Ref`, so
predicates read through the *latest* version of each object -- exactly the
binding an O++ cluster loop sees.  ``over_versions()`` switches the
iteration domain to every live version of every object (specific
references), which is how historical queries (experiment E12) scan the
past states the paper's §3 motivates.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core.indexes import AttrEquals, AttrRange
from repro.core.pointers import Ref, VersionRef

Predicate = Callable[[Any], bool]

#: Sentinel: the query has not resolved its indexed domain yet.
_UNRESOLVED = object()


class Query:
    """A lazily evaluated filtered iteration over one cluster."""

    def __init__(self, store: Any, type_or_name: type | str) -> None:
        self._store = store
        self._type = type_or_name
        self._predicates: list[Predicate] = []
        self._versions = False
        #: Memoized index resolution -- only used when the store is an
        #: immutable snapshot (it exposes ``epoch``), where the answer
        #: cannot change between iterations of the same query.
        self._domain_memo: Any = _UNRESOLVED

    def suchthat(self, predicate: Predicate) -> "Query":
        """Add a filter (predicates conjoin).  Returns a new query."""
        query = self._clone()
        query._predicates.append(predicate)
        return query

    def over_versions(self) -> "Query":
        """Iterate every live *version* (VersionRefs) instead of objects."""
        query = self._clone()
        query._versions = True
        return query

    def _clone(self) -> "Query":
        query = Query(self._store, self._type)
        query._predicates = list(self._predicates)
        query._versions = self._versions
        return query

    def _domain(self) -> Iterator[Ref | VersionRef]:
        refs = self._indexed_domain()
        if refs is None:
            refs = self._store.cluster(self._type)
        if not self._versions:
            yield from refs
            return
        for ref in refs:
            yield from self._store.versions(ref.oid)

    def _indexed_domain(self) -> list[Ref] | None:
        """Narrow the domain through a hash index when one applies.

        Requires a latest-version (non-``over_versions``) query with an
        :class:`AttrEquals` predicate over an attribute the database has
        an index for.  The index may over-approximate (unindexable
        values); the predicate still runs on every candidate.

        Bound to a pinned snapshot, the resolution is memoized on the
        query: the snapshot never changes, so re-iterating the same query
        must not re-walk the index.
        """
        if self._domain_memo is not _UNRESOLVED:
            return self._domain_memo
        result = self._resolve_indexed_domain()
        if hasattr(self._store, "epoch"):
            self._domain_memo = result
        return result

    def _resolve_indexed_domain(self) -> list[Ref] | None:
        if self._versions:
            return None
        lookup = getattr(self._store, "index_lookup", None)
        if lookup is None:
            return None
        type_name = self._type
        if not isinstance(type_name, str):
            from repro.storage.serialization import registered_name

            resolved = registered_name(type_name)
            type_name = resolved if resolved is not None else (
                f"{type_name.__module__}.{type_name.__qualname__}"
            )
        for predicate in self._predicates:
            if isinstance(predicate, AttrEquals):
                oids = lookup(type_name, predicate.attr, predicate.value)
                if oids is not None:
                    return [Ref(self._store, oid) for oid in oids]
        range_lookup = getattr(self._store, "index_lookup_range", None)
        if range_lookup is not None:
            for predicate in self._predicates:
                if isinstance(predicate, AttrRange):
                    oids = range_lookup(
                        type_name, predicate.attr, predicate.lo, predicate.hi
                    )
                    if oids is not None:
                        return [Ref(self._store, oid) for oid in oids]
        return None

    def __iter__(self) -> Iterator[Ref | VersionRef]:
        for ref in self._domain():
            if all(pred(ref) for pred in self._predicates):
                yield ref

    # -- terminals ----------------------------------------------------------

    def all(self) -> list[Ref | VersionRef]:
        """Materialize the result list."""
        return list(self)

    def first(self) -> Ref | VersionRef | None:
        """The first match, or None."""
        for ref in self:
            return ref
        return None

    def count(self) -> int:
        """Number of matches."""
        return sum(1 for _ in self)

    def exists(self) -> bool:
        """True if any object matches."""
        return self.first() is not None

    def select(self, projector: Callable[[Any], Any]) -> list[Any]:
        """Apply ``projector`` to each match and collect the results."""
        return [projector(ref) for ref in self]

    def order_by(self, key: Callable[[Any], Any], reverse: bool = False) -> list[Ref | VersionRef]:
        """Materialize the matches sorted by ``key(ref)``."""
        return sorted(self, key=key, reverse=reverse)

    def limit(self, n: int) -> list[Ref | VersionRef]:
        """At most the first ``n`` matches, in iteration order."""
        if n < 0:
            raise ValueError("limit must be non-negative")
        out: list[Ref | VersionRef] = []
        for ref in self:
            if len(out) == n:
                break
            out.append(ref)
        return out
