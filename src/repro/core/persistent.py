"""Persistent type declaration -- the O++ ``persistent`` storage class.

O++ marks objects persistent at allocation (``pnew``), not in the type:
persistence, like versionability, is orthogonal to type (paper §2, [2]).
In Python the only thing a type needs in order to persist is a stable
name in the codec registry; the :func:`persistent` decorator provides it,
and :class:`PersistentObject` is an optional convenience base class with
keyword construction, structural equality, and a readable repr -- nothing
in the kernel requires it.

Example::

    @persistent
    class Person:
        def __init__(self, name, age):
            self.name = name
            self.age = age

    ref = db.pnew(Person("ann", 41))
"""

from __future__ import annotations

from typing import Any, TypeVar

from repro.storage.serialization import register_type

T = TypeVar("T", bound=type)


def persistent(cls: T | None = None, *, name: str | None = None) -> Any:
    """Class decorator registering a type for persistence.

    Usable bare (``@persistent``) or with an explicit stable name
    (``@persistent(name="dms.Chip")``).  The stable name defaults to the
    class's module-qualified name; pass one explicitly if the class might
    move between modules while databases referencing it live on.
    """
    if cls is None:
        def apply(klass: T) -> T:
            return register_type(klass, name)
        return apply
    return register_type(cls, name)


class PersistentObject:
    """Optional base class for persistent types.

    Provides keyword-argument construction into ``__dict__``, structural
    equality (same type, same state), and a compact repr.  Subclasses that
    define their own ``__init__`` still get the equality and repr.
    """

    def __init__(self, **fields: Any) -> None:
        self.__dict__.update(fields)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in sorted(self.__dict__.items()))
        return f"{type(self).__name__}({fields})"
