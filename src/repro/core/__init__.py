"""The versioning kernel: the paper's primary contribution.

Object ids and version ids, the version graph (temporal chain +
derived-from tree), the version store (``pnew`` / ``newversion`` /
``pdelete``), pointer-semantics references, transactions, triggers,
clusters, and the database facade tying it together.
"""

from repro.core.database import Database
from repro.core.identity import Oid, Vid
from repro.core.indexes import (
    AttrEquals,
    AttrRange,
    HashIndex,
    IndexManager,
    OrderedIndex,
    attr_between,
    attr_equals,
)
from repro.core.persistent import PersistentObject, persistent
from repro.core.pointers import Ref, VersionRef, unwrap_ids, wrap_ids
from repro.core.query import Query
from repro.core.session import Session
from repro.core.store import StoragePolicy, VersionStore
from repro.core.transactions import EXCLUSIVE, SHARED, LockManager, Transaction
from repro.core.triggers import ONCE, PERPETUAL, Trigger, TriggerManager
from repro.core.vgraph import VersionGraph, VersionNode

__all__ = [
    "Database",
    "Session",
    "AttrEquals",
    "AttrRange",
    "HashIndex",
    "IndexManager",
    "OrderedIndex",
    "attr_between",
    "attr_equals",
    "Oid",
    "Vid",
    "PersistentObject",
    "persistent",
    "Ref",
    "VersionRef",
    "unwrap_ids",
    "wrap_ids",
    "Query",
    "StoragePolicy",
    "VersionStore",
    "EXCLUSIVE",
    "SHARED",
    "LockManager",
    "Transaction",
    "ONCE",
    "PERPETUAL",
    "Trigger",
    "TriggerManager",
    "VersionGraph",
    "VersionNode",
]
