"""Budgeted LRU caching for the version store's hot read path.

The materialization surface (generic deref -> ``latest_vid`` -> payload
bytes -> decode) is the hottest path in the kernel: the paper's promise
that generic references and delta chains are cheap enough to use
everywhere (§3, §4.3) only holds if repeated reads do not re-pay the
chain replay and decode cost.  This module provides the shared cache
machinery:

* :class:`BudgetedLRU` -- an LRU mapping bounded by a *cost budget*
  (payload bytes for the bytes cache, entry count for the decoded-object
  cache), with an optional group index so every entry of one object can
  be invalidated precisely (``pdelete`` of an object, transaction
  rollback) without scanning the whole cache.
* :class:`CacheStats` -- the counter block the store exposes through
  ``Database.stats()`` and ``tools/inspect`` so cache behaviour is
  measurable rather than assumed (experiment E11 asserts on it).

Invalidation correctness is the store's job; the cache only promises
that ``pop``/``pop_group``/``clear`` remove entries and that the budget
is enforced on every ``put``.

Every operation is guarded by an internal lock: the snapshot read path
(``repro.core.snapshot``) consults the shared bytes/decoded caches
without holding the database's storage mutex, so the cache itself must
tolerate concurrent readers and writers.  The lock is never held across
user code (``sizeof``/``group_of`` are called on plain keys/payloads),
so it cannot participate in a deadlock cycle.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

#: Default byte budget for the materialized-bytes cache (per store).
DEFAULT_BYTES_BUDGET = 16 * 1024 * 1024

#: Default entry budget for the decoded-object cache (per store).
DEFAULT_DECODED_ENTRIES = 1024

#: Sentinel returned by ``VersionStore.read_attr`` when the fast path
#: cannot serve the attribute and the caller must materialize a fresh
#: copy.  Lives here (not in the store) so the pointer layer can import
#: it without a circular import.
READ_MISS = object()


@dataclass
class CacheStats:
    """Counters for one store's caching layer (consumed by E11).

    ``chain_prefix_hits`` counts cache misses that were served from a
    cached *ancestor* in the delta chain instead of replaying from the
    keyframe; ``deltas_applied`` and ``bytes_decoded`` measure the work
    that remained.
    """

    bytes_hits: int = 0
    bytes_misses: int = 0
    bytes_invalidations: int = 0
    chain_prefix_hits: int = 0
    deltas_applied: int = 0
    bytes_decoded: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0
    latest_hits: int = 0
    latest_misses: int = 0
    writebacks_skipped: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for ``Database.stats()`` / inspect."""
        return {
            "bytes_hits": self.bytes_hits,
            "bytes_misses": self.bytes_misses,
            "bytes_invalidations": self.bytes_invalidations,
            "chain_prefix_hits": self.chain_prefix_hits,
            "deltas_applied": self.deltas_applied,
            "bytes_decoded": self.bytes_decoded,
            "decoded_hits": self.decoded_hits,
            "decoded_misses": self.decoded_misses,
            "latest_hits": self.latest_hits,
            "latest_misses": self.latest_misses,
            "writebacks_skipped": self.writebacks_skipped,
        }


class BudgetedLRU:
    """An LRU mapping bounded by a cost budget instead of an entry count.

    ``sizeof(value)`` prices each entry (``len`` for byte payloads; a
    constant 1 turns the budget into an entry count).  A single entry
    larger than the whole budget is still admitted -- the budget bounds
    the *steady state*, not a single oversized payload -- but it becomes
    the next eviction victim.

    ``group_of(key)`` (optional) maintains a reverse index so
    :meth:`pop_group` can drop every entry belonging to one group (one
    object id) in O(group size).
    """

    __slots__ = ("_budget", "_sizeof", "_group_of", "_entries", "_sizes",
                 "_groups", "_used", "_lock", "evictions")

    def __init__(
        self,
        budget: int,
        sizeof: Callable[[Any], int],
        group_of: Callable[[Hashable], Hashable] | None = None,
    ) -> None:
        if budget < 1:
            raise ValueError("cache budget must be >= 1")
        self._budget = budget
        self._sizeof = sizeof
        self._group_of = group_of
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._groups: dict[Hashable, set[Hashable]] = {}
        self._used = 0
        self._lock = threading.Lock()
        #: Entries dropped to stay within budget (not invalidations).
        self.evictions = 0

    # -- mapping surface -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries))

    @property
    def used(self) -> int:
        """Total cost of resident entries."""
        return self._used

    @property
    def budget(self) -> int:
        """The configured cost budget."""
        return self._budget

    def __getitem__(self, key: Hashable) -> Any:
        with self._lock:
            entry = self._entries[key]
            self._entries.move_to_end(key)
            return entry

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return default
            self._entries.move_to_end(key)
            return entry

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value *without* refreshing recency."""
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/replace an entry, evicting LRU entries to fit the budget."""
        size = self._sizeof(value)
        with self._lock:
            if key in self._entries:
                self._used -= self._sizes[key]
                self._entries[key] = value
                self._entries.move_to_end(key)
            else:
                self._entries[key] = value
                if self._group_of is not None:
                    self._groups.setdefault(self._group_of(key), set()).add(key)
            self._sizes[key] = size
            self._used += size
            while self._used > self._budget and len(self._entries) > 1:
                victim, _ = self._entries.popitem(last=False)
                self._used -= self._sizes.pop(victim)
                self._drop_group_member(victim)
                self.evictions += 1

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return one entry (an invalidation, not an eviction)."""
        with self._lock:
            entry = self._entries.pop(key, _MISSING)
            if entry is _MISSING:
                return default
            self._used -= self._sizes.pop(key)
            self._drop_group_member(key)
            return entry

    def pop_group(self, group: Hashable) -> int:
        """Remove every entry whose key belongs to ``group``; returns count."""
        if self._group_of is None:
            raise TypeError("cache was built without a group function")
        with self._lock:
            keys = self._groups.pop(group, None)
            if not keys:
                return 0
            for key in keys:
                del self._entries[key]
                self._used -= self._sizes.pop(key)
            return len(keys)

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._groups.clear()
            self._used = 0

    def _drop_group_member(self, key: Hashable) -> None:
        if self._group_of is None:
            return
        group = self._group_of(key)
        members = self._groups.get(group)
        if members is not None:
            members.discard(key)
            if not members:
                del self._groups[group]


_MISSING = object()
