"""The Ode database facade: the public entry point of the reproduction.

A :class:`Database` is a directory holding a data file and a write-ahead
log.  It assembles the whole stack -- disk manager, buffer pool, WAL,
catalog, version store, lock manager, trigger manager -- and exposes the
paper's programming surface:

* ``pnew(obj)`` -> generic :class:`~repro.core.pointers.Ref`
* ``newversion(ref | vref)`` -> specific :class:`~repro.core.pointers.VersionRef`
* ``pdelete(ref | vref)``
* traversal: ``dprevious``, ``dnext``, ``tprevious``, ``tnext``,
  ``history``, ``versions``, ``leaves``, ``alternatives``
* clusters and ``query(...).suchthat(...)`` iteration
* triggers via :attr:`Database.triggers`
* transactions: ``with db.transaction(): ...`` (atomic, durable); every
  operation outside an explicit transaction autocommits.

Opening a database replays the WAL (redo committed work, undo losers),
then checkpoints, so a process crash never loses acknowledged commits --
the property the paper's persistence model promises ("such objects
automatically persist across program invocations", §2).

References returned by a Database are bound to it, so attribute writes
through them are transactional and locked like any other mutation.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.errors import (
    DatabaseDegradedError,
    DeadlockError,
    LockTimeoutError,
    ReadOnlySnapshotError,
    TransactionAborted,
    TransactionStateError,
    UnknownVersionError,
)
from repro.core.cache import DEFAULT_BYTES_BUDGET
from repro.core.identity import Oid, Vid
from repro.core.indexes import HashIndex, IndexManager, OrderedIndex
from repro.core.pointers import Ref, VersionRef
from repro.core.query import Query
from repro.core.session import Session
from repro.core.snapshot import Snapshot
from repro.core.store import StoragePolicy, VersionStore
from repro.core.transactions import (
    EXCLUSIVE,
    SHARED,
    LockManager,
    Transaction,
    undo_operations,
)
from repro.core.triggers import TriggerManager
from repro.core.vgraph import VersionGraph
from repro.storage import faults
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskManager
from repro.storage.heap import HeapFile
from repro.storage.stripes import StripedLock
from repro.storage import serialization
from repro.storage.wal import (
    ABORT_END,
    COMMIT,
    COORD_COMMIT,
    COORD_END,
    GC_TOMBSTONE,
    InDoubtTransaction,
    LogManager,
    LogRecord,
    RecoveryReport,
    recover,
)
from repro.verify import hooks

_DATA_FILE = "data.odb"
_WAL_FILE = "wal.log"

#: Default WAL size (bytes) that triggers an automatic checkpoint at commit.
DEFAULT_CHECKPOINT_THRESHOLD = 8 * 1024 * 1024

#: Errors ``run_transaction`` retries by default: transient concurrency
#: conflicts that a fresh attempt can win.  Everything else (invariant
#: violations, user exceptions, degraded mode) propagates immediately.
RETRYABLE_ERRORS: tuple[type[BaseException], ...] = (
    DeadlockError,
    LockTimeoutError,
    TransactionAborted,
)


class _ResilienceCounters:
    """``run_transaction`` bookkeeping, surfaced under ``txn.*`` in stats."""

    __slots__ = ("attempts", "commits", "conflicts", "retries", "giveups",
                 "backoff_seconds")

    def __init__(self) -> None:
        self.attempts = 0
        self.commits = 0
        self.conflicts = 0
        self.retries = 0
        self.giveups = 0
        self.backoff_seconds = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "txn.attempts": self.attempts,
            "txn.commits": self.commits,
            "txn.conflicts": self.conflicts,
            "txn.retries": self.retries,
            "txn.giveups": self.giveups,
            "txn.backoff_seconds": self.backoff_seconds,
        }


class Database:
    """An Ode-style versioned object database in a directory.

    Parameters
    ----------
    path:
        Directory for the database files (created if missing).
    policy:
        Version payload storage policy (full copies or derived-from
        deltas); see :class:`~repro.core.store.StoragePolicy`.
    pool_size:
        Buffer pool capacity in pages.
    lock_timeout:
        Seconds a transaction waits for a lock before aborting
        (deadlock resolution).
    checkpoint_threshold:
        WAL bytes after which a commit triggers an automatic checkpoint
        (0 disables automatic checkpoints).
    cache_budget:
        Byte budget for the version store's materialized-bytes cache.
    group_commit_window:
        Seconds a committing transaction lingers before fsyncing the WAL
        so concurrent commits can share one fsync (0 disables lingering;
        piggybacking on an in-flight fsync still happens).
    deadlock_detection:
        Run the wait-for-graph deadlock detector (True, the default).
        False falls back to timeout-only resolution -- kept for the E11
        benchmark comparison, not for production use.
    degrade_after:
        Consecutive WAL-flush / data-file-sync failures after which the
        database enters read-only **degraded mode**: reads and version
        traversal keep working, writes raise
        :class:`~repro.errors.DatabaseDegradedError`.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        policy: StoragePolicy | None = None,
        pool_size: int = 256,
        lock_timeout: float = 2.0,
        checkpoint_threshold: int = DEFAULT_CHECKPOINT_THRESHOLD,
        cache_budget: int = DEFAULT_BYTES_BUDGET,
        group_commit_window: float = 0.0,
        deadlock_detection: bool = True,
        degrade_after: int = 3,
        oid_stride: int = 1,
        oid_residue: int = 0,
    ) -> None:
        self._path = os.fspath(path)
        os.makedirs(self._path, exist_ok=True)
        self._disk = DiskManager(os.path.join(self._path, _DATA_FILE))
        self._log = LogManager(
            os.path.join(self._path, _WAL_FILE), group_window=group_commit_window
        )
        self._pool = BufferPool(self._disk, pool_size)
        self._pool.before_write = self._log.flush  # write-ahead rule
        self.last_recovery: RecoveryReport | None = None
        self._recover_if_needed()
        # Two-phase commit bookkeeping (see repro.shard): prepared
        # participants awaiting a verdict, and coordinator decisions not
        # yet acknowledged by every participant.  While either is
        # non-empty the WAL must not truncate -- the records *are* the
        # evidence recovery needs.
        report = self.last_recovery
        self._in_doubt: dict[int, InDoubtTransaction] = (
            dict(report.in_doubt) if report else {}
        )
        self._coord_decisions: dict[tuple, tuple[int, ...]] = (
            dict(report.coord_decisions) if report else {}
        )
        self._twopc_mutex = threading.Lock()
        # Striped page locks guard the short fetch-copy-unpin windows of
        # heap physical ops against lock-free snapshot readers.
        self._page_locks = StripedLock()
        self._catalog = Catalog(self._disk, self._pool, page_locks=self._page_locks)
        self._store = VersionStore(
            self._catalog,
            policy,
            cache_budget=cache_budget,
            oid_stride=oid_stride,
            oid_residue=oid_residue,
        )
        self._locks = LockManager(lock_timeout, detect_deadlocks=deadlock_detection)
        self._locks.work_of = self._txn_work
        self._triggers = TriggerManager(type_resolver=self._store.type_name)
        self._store.add_observer(self._triggers.dispatch)
        self._indexes = IndexManager(self._store)
        # Fresh txids must clear every txid still present in a retained
        # WAL (recovery skips truncation while in-doubt participants or
        # coordinator decisions survive): reusing a retained txid would
        # let a later recovery mistake a pre-crash loser's records for a
        # new winner's.
        txid_floor = 0
        if report is not None and (report.in_doubt or report.coord_decisions):
            txid_floor = report.max_txid
        self._txids = itertools.count(txid_floor + 1)
        # Physical-consistency mutex: serializes individual store/heap
        # operations (page mutations are multi-step).  Transaction-level
        # isolation is the lock manager's job; this only protects single
        # operations.  Reentrant, so trigger actions that call back into
        # the database from within a mutation do not self-deadlock.
        self._storage_mutex = threading.RLock()
        #: Commit publication excludes objects touched by still-active
        #: transactions.  The interleaving explorer's mutation self-test
        #: flips this off to prove the oracle notices the resulting leak
        #: of uncommitted state into published snapshots.
        self.publish_exclusion = True
        self._tlocal = threading.local()
        self._active: dict[int, Transaction] = {}
        self._txn_mutex = threading.Lock()
        # Client state lives in sessions (repro.core.session).  Embedded
        # callers get an implicit per-thread session lazily; explicit
        # sessions (the network layer's) are tracked for teardown/stats.
        self._sessions: set[Session] = set()
        self._session_mutex = threading.Lock()
        #: Extra stats providers (e.g. the network server) merged into
        #: :meth:`stats` -- each is a zero-arg callable returning a dict.
        self._stats_sources: list[Callable[[], dict[str, Any]]] = []
        self._checkpoint_threshold = checkpoint_threshold
        self._closed = False
        # Graceful degradation: persistent storage-write failure flips the
        # database to read-only.  Hooks are installed after recovery -- an
        # unopenable database should raise from the constructor, not limp.
        self._degraded_reason: str | None = None
        self._resilience = _ResilienceCounters()
        self._log.failure_threshold = degrade_after
        self._log.on_persistent_failure = self._enter_degraded
        self._disk.failure_threshold = degrade_after
        self._disk.on_persistent_failure = self._enter_degraded
        #: Garbage-collection lifetime counters (surfaced under ``gc.*``).
        self._gc_counters: dict[str, int] = {
            "runs": 0,
            "versions_deleted": 0,
            "blobs_unlinked": 0,
            "bytes_freed": 0,
        }
        # A crash may have landed inside the blob-reclaim unlink protocol
        # (the WAL tombstones carry the evidence) -- or between a blob
        # put and its incref, which can leave an orphan content file with
        # *no* WAL trace at all if the log happened to be empty (the
        # file write is durable the moment it lands; the incref is not).
        # Repair therefore runs at every open, not just recovery opens.
        self._repair_gc_tombstones()

    # -- recovery ----------------------------------------------------------

    def _recover_if_needed(self) -> None:
        if self._log.size() == 0:
            return
        heaps: dict[int, HeapFile] = {}

        def resolver(file_id: int) -> HeapFile:
            heap = heaps.get(file_id)
            if heap is None:
                heap = HeapFile(file_id, self._disk, self._pool, known_pages=[])
                heaps[file_id] = heap
            return heap

        self.last_recovery = recover(self._log, resolver)
        self._pool.flush_all()
        self._disk.sync()
        if not (
            self.last_recovery.in_doubt
            or self.last_recovery.coord_decisions
            or self.last_recovery.gc_tombstones
        ):
            # In-doubt undo images, coordinator verdicts and GC tombstones
            # live only in the WAL; truncating now would erase the evidence
            # resolution/repair needs.  The log is truncated at the
            # checkpoint that follows resolution (or after the tombstone
            # repair in ``_repair_gc_tombstones``) instead.
            self._log.truncate()
        self._pool.drop_clean()

    def _repair_gc_tombstones(self) -> None:
        """Finish (or undo the debris of) a crashed blob-reclaim batch.

        The unlink protocol journals a ``GC_TOMBSTONE`` naming each key
        *before* touching the file or the index, so recovery can always
        tell an interrupted reclaim from corruption:

        * tombstoned key, index refcount 0 -> the reclaim was decided;
          unlink the file (idempotent) and drop the index record.
        * tombstoned key, no index record -> the reclaim committed;
          unlink whatever file survived.
        * tombstoned key, refcount > 0 -> the reclaiming transaction lost
          (its index deletes were undone); the payload is live again and
          the file, never unlinked past a live refcount, is intact.

        Afterwards sweep *orphan* files -- blobs with no index entry at
        all, left by a crash between ``BlobStore.put`` and the incref
        (which always runs file-first).  The sweep runs on every open,
        recovery or not: a put's file write is durable immediately, so a
        crash at the incref's WAL append can orphan a file even when the
        log was empty and recovery never runs.  Repair is idempotent: a
        crash inside it (the ``gc.repair.*`` windows) leaves the
        tombstones in the WAL, and the next open repairs again.
        """
        report = self.last_recovery
        tombstones = report.gc_tombstones if report is not None else ()
        faults.fire("gc.repair.pre")
        for key in tombstones:
            refcount = self._store.blob_refcount(key)
            if refcount == 0:
                self._store.blobs.unlink(key)
                self._store.drop_blob_entry(key, None)
            elif refcount is None:
                self._store.blobs.unlink(key)
        for key in self._store.orphan_blob_keys():
            self._store.blobs.unlink(key)
        faults.fire("gc.repair.post")
        if tombstones:
            # Persist the repaired heaps, then release the WAL evidence
            # (unless 2PC resolution still pins the log).
            self._pool.flush_all()
            self._disk.sync()
            if not (self._in_doubt or self._coord_decisions):
                self._log.truncate()

    # -- two-phase commit surface (used by repro.shard) ------------------------

    def in_doubt_txns(self) -> dict[int, InDoubtTransaction]:
        """Prepared-but-undecided participants recovered at open.

        Keyed by local txid.  Each must be fed to :meth:`resolve_in_doubt`
        before this shard's WAL can truncate again.
        """
        with self._twopc_mutex:
            return dict(self._in_doubt)

    def coordinator_decisions(self) -> dict[tuple, tuple[int, ...]]:
        """Surviving coordinator commit verdicts: gtxid -> participants.

        A gtxid present here was *decided committed*; in-doubt
        participants of any gtxid absent from every shard's decisions are
        resolved by presumed abort.
        """
        with self._twopc_mutex:
            return dict(self._coord_decisions)

    def log_coordinator_decision(
        self, gtxid: tuple, participants: tuple[int, ...]
    ) -> None:
        """Durably journal the global commit verdict in this shard's WAL.

        This is the 2PC commit point: once the flush returns, every
        prepared participant of ``gtxid`` *will* commit, crash or no
        crash.  The decision is tracked so the WAL cannot truncate until
        :meth:`forget_coordinator_decision` confirms phase two finished.
        """
        self._check_writable()
        with self._twopc_mutex:
            self._coord_decisions[gtxid] = tuple(participants)
        try:
            self._log.append(
                LogRecord(
                    COORD_COMMIT,
                    0,
                    payload=serialization.encode((gtxid, tuple(participants))),
                )
            )
            self._log.flush()
        except BaseException:
            # Not durable: the verdict never happened (presumed abort).
            with self._twopc_mutex:
                self._coord_decisions.pop(gtxid, None)
            raise

    def forget_coordinator_decision(self, gtxid: tuple) -> None:
        """Phase two finished everywhere: release the decision record.

        Appends ``COORD_END`` (lazily flushed -- losing it merely makes a
        future recovery re-deliver an already-applied commit verdict,
        which resolution handles idempotently) and lifts the truncation
        hold once no decisions remain.
        """
        with self._twopc_mutex:
            self._coord_decisions.pop(gtxid, None)
        self._log.append(
            LogRecord(COORD_END, 0, payload=serialization.encode(gtxid))
        )

    def resolve_in_doubt(self, txid: int, commit: bool) -> None:
        """Decide a recovered in-doubt participant: commit or roll back.

        Commit appends the missing ``COMMIT`` record; abort applies the
        retained undo images in reverse (logging compensations, exactly
        like a live abort) and appends ``ABORT_END``.  Either way the
        transaction stops being in-doubt and, once none remain, the WAL
        may truncate again.
        """
        with self._twopc_mutex:
            info = self._in_doubt.pop(txid, None)
        if info is None:
            raise TransactionStateError(f"transaction {txid} is not in-doubt")
        if commit:
            self._log.append(LogRecord(COMMIT, txid))
            self._log.flush()
            return
        with self._storage_mutex:
            undo_operations(
                info.ops, self._catalog.heap_by_id, self._log, txid
            )
            self._log.append(LogRecord(ABORT_END, txid))
            self._log.flush()
            # The heaps changed underneath the in-memory table: rebuild,
            # as an aborting transaction's reload does.
            self._catalog.reload()
            self._store.reload()
            self._indexes.rebuild()
            self._store.publish_snapshot(exclude=self._active_touched(), full=True)
            # The undone increfs may have orphaned content files; the
            # recovered transaction carries no put list, so sweep the
            # store (in-doubt resolution is rare enough for the scan).
            for key in self._store.orphan_blob_keys():
                self._store.blobs.unlink(key)

    # -- lifecycle -----------------------------------------------------------

    @property
    def path(self) -> str:
        """The database directory."""
        return self._path

    @property
    def store(self) -> VersionStore:
        """The underlying version store (unlogged surface; prefer the facade)."""
        return self._store

    @property
    def catalog(self) -> Catalog:
        """The system catalog."""
        return self._catalog

    @property
    def triggers(self) -> TriggerManager:
        """The trigger facility (O++ triggers, paper §2)."""
        return self._triggers

    @property
    def locks(self) -> LockManager:
        """The lock manager (exposed for tests and the stress harness)."""
        return self._locks

    @property
    def page_locks(self) -> StripedLock:
        """The striped page locks (exposed for tests and the stress harness)."""
        return self._page_locks

    def checkpoint(self) -> None:
        """Flush all dirty state and truncate the WAL (quiescent only)."""
        self._check_writable()
        with self._txn_mutex:
            if self._active:
                raise TransactionStateError(
                    "checkpoint requires no active transactions"
                )
            self._log.flush()
            self._pool.flush_all()
            self._disk.sync()
            if not (self._in_doubt or self._coord_decisions):
                self._log.truncate()

    def close(self) -> None:
        """Checkpoint and close all files.  Idempotent.

        A degraded database skips the final checkpoint/flush/fsync -- the
        storage already rejects writes, and close must not raise.  The WAL
        is left in place so the next open replays whatever did make it to
        disk.
        """
        if self._closed:
            return
        with self._session_mutex:
            sessions = list(self._sessions)
        for sess in sessions:
            sess.close()  # aborts open txns, unpins snapshots
        if self._degraded_reason is None:
            self.checkpoint()
        self._log.close(flush=self._degraded_reason is None)
        self._disk.close(sync=self._degraded_reason is None)
        self._closed = True

    # -- degraded mode --------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once persistent storage failure forced read-only mode."""
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> str | None:
        """Why the database degraded, or None while healthy."""
        return self._degraded_reason

    def _enter_degraded(self, reason: str) -> None:
        """Flip to read-only; called by WAL/disk on persistent failure."""
        if self._degraded_reason is None:
            self._degraded_reason = reason

    def _check_writable(self) -> None:
        if self._degraded_reason is not None:
            raise DatabaseDegradedError(
                f"database is read-only (degraded: {self._degraded_reason})"
            )

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sessions -------------------------------------------------------------

    def session(self, name: str | None = None) -> Session:
        """Create an explicit client session (see :mod:`repro.core.session`).

        The session owns the client's open transaction and pinned
        snapshot; activate it around each request with
        :meth:`Session.activate` (any thread may do so, one at a time).
        The network server creates one per connection.
        """
        sess = Session(self, name)
        with self._session_mutex:
            self._sessions.add(sess)
        return sess

    @property
    def session_count(self) -> int:
        """Open explicit sessions (implicit per-thread ones not counted)."""
        with self._session_mutex:
            return len(self._sessions)

    def _forget_session(self, sess: Session) -> None:
        with self._session_mutex:
            self._sessions.discard(sess)

    def _swap_active_session(self, sess: Session | None) -> Session | None:
        """Bind ``sess`` to the calling thread; return the previous binding."""
        prev = getattr(self._tlocal, "active_session", None)
        self._tlocal.active_session = sess
        return prev

    def _current_session(self, create: bool = True) -> Session | None:
        """The calling thread's session: the activated one, else implicit.

        The implicit session reproduces the pre-session thread-local
        behaviour for embedded callers; it is created lazily (``create``)
        and never registered -- it lives and dies with its thread.
        """
        sess = getattr(self._tlocal, "active_session", None)
        if sess is not None:
            return sess
        sess = getattr(self._tlocal, "implicit_session", None)
        if sess is None and create:
            sess = Session(self, name=f"thread-{threading.get_ident()}")
            self._tlocal.implicit_session = sess
        return sess

    def _session_pin(self) -> Snapshot | None:
        """The calling thread's session snapshot pin, if any."""
        sess = self._current_session(create=False)
        return sess.snapshot if sess is not None else None

    def add_stats_source(self, source: Callable[[], dict[str, Any]]) -> None:
        """Merge ``source()`` into every :meth:`stats` call (e.g. ``net.*``)."""
        self._stats_sources.append(source)

    def remove_stats_source(self, source: Callable[[], dict[str, Any]]) -> None:
        """Detach a stats source added by :meth:`add_stats_source`."""
        try:
            self._stats_sources.remove(source)
        except ValueError:
            pass

    # -- transactions ---------------------------------------------------------

    def begin(
        self,
        *,
        lock_timeout: float | None = None,
        snapshot_reads: bool = False,
    ) -> Transaction:
        """Start an explicit transaction bound to the calling thread.

        ``lock_timeout`` overrides the database-wide lock deadline for this
        transaction only (the wait-for-graph detector resolves deadlocks
        long before the deadline; the deadline is the backstop).

        ``snapshot_reads=True`` makes it a **snapshot-read transaction**:
        it pins the current publication epoch and serves every read from
        that pinned snapshot -- no SHARED locks, no storage mutex, so it
        can never block a writer and no writer can ever block it.  Such a
        transaction is read-only; any mutation raises
        :class:`~repro.errors.ReadOnlySnapshotError`.
        """
        self._check_writable()
        if self.current_transaction() is not None:
            raise TransactionStateError(
                "a transaction is already active on this session"
            )
        sess = self._current_session()
        txn = Transaction(
            txid=next(self._txids),
            log=self._log,
            lock_manager=self._locks,
            heap_resolver=self._catalog.heap_by_id,
            on_finish=self._txn_finished,
            storage_mutex=self._storage_mutex,
            lock_timeout=lock_timeout,
        )
        txn.session = sess
        sess.txn = txn
        #: Publication epoch at begin: the blob reclaimer refuses to
        #: unlink a zero-ref candidate stamped at or after the oldest
        #: active transaction's start (its displacement could still be
        #: undone by an abort).
        txn.gc_start_epoch = self._store.snapshots.epoch
        with self._txn_mutex:
            self._active[txn.txid] = txn
        if snapshot_reads:
            txn.read_only = True
            txn.snapshot = self.snapshot()
        return txn

    def current_transaction(self) -> Transaction | None:
        """The calling session's active transaction, if any.

        The session is the activated one (network requests) or the
        thread's implicit session (embedded callers) -- see
        :meth:`_current_session`.
        """
        sess = self._current_session(create=False)
        if sess is None:
            return None
        txn = sess.txn
        if txn is not None and txn.state != "active":
            sess.txn = None
            return None
        return txn

    def _txn_finished(self, txn: Transaction) -> None:
        hooks.sched_point("txn.finish")
        with self._txn_mutex:
            self._active.pop(txn.txid, None)
        sess = txn.session
        if sess is not None and sess.txn is txn:
            sess.txn = None
        if txn.snapshot is not None:
            # Unpin before anything can bail out below: a leaked pin would
            # retain every displaced entry forever.
            txn.snapshot.close()
            txn.snapshot = None
        if faults.is_crashed():
            # A simulated process death: the "dead" process must touch
            # nothing further (no reload I/O, no checkpoint).  Locks were
            # already released by commit/abort cleanup.
            return
        if txn.state == "aborted":
            # WAL undo restored the heaps; rebuild the in-memory table and
            # invalidate only the caches of objects the transaction touched
            # (a full cache clear would punish every other hot object).  A
            # tainted touch set -- an op failed partway -- forces the
            # conservative full reload.  The storage mutex is required:
            # reload scans the heaps, and an unsynchronized scan racing a
            # concurrent mutation (a table-record relocation mid-flight)
            # rebuilds a table with other transactions' objects missing.
            with self._storage_mutex:
                self._catalog.reload()
                if txn.cache_taint:
                    self._store.reload()
                else:
                    self._store.reload(touched=txn.touched_oids)
                self._indexes.rebuild()
                # The table was rebuilt wholesale: republish everything
                # (minus other transactions' still-uncommitted objects) so
                # the committed table tracks the restored state.
                self._store.publish_snapshot(
                    exclude=self._active_touched(), full=True
                )
                # Undone increfs can leave this transaction's content
                # files without index records; sweep exactly those.
                self._store.sweep_blob_puts(txn.blob_puts)
        else:
            exclude = self._active_touched()
            if self._store.has_unpublished_changes(exclude):
                # Publish this transaction's commits for snapshot readers;
                # objects other active transactions touched stay back.
                with self._storage_mutex:
                    self._store.publish_snapshot(exclude=self._active_touched())
            if (
                self._checkpoint_threshold
                and self._log.size() > self._checkpoint_threshold
            ):
                with self._txn_mutex:
                    if not (
                        self._active or self._in_doubt or self._coord_decisions
                    ):
                        self._log.flush()
                        self._pool.flush_all()
                        self._disk.sync()
                        self._log.truncate()

    def savepoint(self) -> int:
        """Mark a rollback point inside the current transaction."""
        txn = self.current_transaction()
        if txn is None:
            raise TransactionStateError("savepoints require an active transaction")
        return txn.savepoint()

    def rollback_to(self, savepoint: int) -> int:
        """Partially roll the current transaction back to a savepoint.

        The transaction stays active; everything after the savepoint is
        undone (durably -- the compensations are logged).  Returns the
        number of operations undone.
        """
        txn = self.current_transaction()
        if txn is None:
            raise TransactionStateError("savepoints require an active transaction")
        undone = txn.rollback_to(savepoint)
        if undone:
            # The heaps were rewound; bring the derived caches in line.
            # touched_oids is a superset of the objects behind the undone
            # ops, so precise invalidation stays safe here too.
            with self._storage_mutex:
                self._catalog.reload()
                if txn.cache_taint:
                    self._store.reload()
                else:
                    self._store.reload(touched=txn.touched_oids)
                self._indexes.rebuild()
                # Puts whose increfs were rewound past the savepoint may
                # have lost their last index record; keys still referenced
                # (by this transaction's earlier ops or anyone else) are
                # left alone by the refcount check inside.
                self._store.sweep_blob_puts(txn.blob_puts)
        return undone

    @contextmanager
    def transaction(
        self,
        lock_timeout: float | None = None,
        snapshot_reads: bool = False,
    ) -> Iterator[Transaction]:
        """``with db.transaction():`` -- commit on exit, abort on exception.

        ``snapshot_reads=True`` starts a snapshot-read transaction (see
        :meth:`begin`): reads are lock-free against a pinned snapshot and
        writes raise :class:`~repro.errors.ReadOnlySnapshotError`.
        """
        txn = self.begin(lock_timeout=lock_timeout, snapshot_reads=snapshot_reads)
        try:
            yield txn
        except BaseException:
            if txn.state == "active":
                txn.abort()
            raise
        else:
            if txn.state == "active":
                txn.commit()

    def run_transaction(
        self,
        fn: Callable[[], Any],
        *,
        max_attempts: int = 5,
        backoff: float = 0.01,
        max_backoff: float = 0.5,
        deadline: float | None = None,
        lock_timeout: float | None = None,
        retry_on: tuple[type[BaseException], ...] = RETRYABLE_ERRORS,
    ) -> Any:
        """Run ``fn`` inside a transaction, retrying transient conflicts.

        ``fn`` takes no arguments, performs its reads and writes through
        this database, and returns the call's result.  On a retryable
        conflict (:data:`RETRYABLE_ERRORS` by default -- deadlock victim,
        lock deadline, aborted transaction) the attempt's transaction is
        rolled back and ``fn`` re-executes **from scratch**, so it must
        not carry reads across attempts (re-read everything it needs).

        Backoff between attempts is exponential with full jitter
        (``uniform(0, min(max_backoff, backoff * 2**(attempt-1)))``),
        which decorrelates retrying transactions so they stop re-colliding.
        ``deadline`` bounds the whole call in seconds; ``max_attempts``
        bounds the number of executions.  Non-retryable errors -- invariant
        violations, user exceptions, degraded mode -- propagate from the
        first attempt.

        Called with a transaction already active on this thread, ``fn``
        joins it and runs exactly once with no retry: the ambient
        transaction owns commit/abort, and re-running ``fn`` alone could
        not undo the enclosing transaction's earlier work.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.current_transaction() is not None:
            return fn()
        start = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            self._resilience.attempts += 1
            try:
                with self.transaction(lock_timeout=lock_timeout):
                    result = fn()
            except retry_on:
                self._resilience.conflicts += 1
                out_of_attempts = attempt >= max_attempts
                out_of_time = (
                    deadline is not None
                    and time.monotonic() - start >= deadline
                )
                if out_of_attempts or out_of_time:
                    self._resilience.giveups += 1
                    raise
                pause = random.uniform(
                    0.0, min(max_backoff, backoff * (2 ** (attempt - 1)))
                )
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline - (time.monotonic() - start)))
                self._resilience.retries += 1
                self._resilience.backoff_seconds += pause
                if pause > 0:
                    time.sleep(pause)
                continue
            self._resilience.commits += 1
            return result

    def _txn_work(self, txid: int) -> int:
        """Operations logged by an active transaction (deadlock victim cost)."""
        with self._txn_mutex:
            txn = self._active.get(txid)
        return txn.op_count if txn is not None else 0

    # -- snapshots (lock-free read path) ----------------------------------------

    def _active_touched(self) -> set[Oid]:
        """Objects touched by transactions that are still active.

        Their live state is uncommitted, so snapshot publication must
        leave their committed-table slots alone.
        """
        if not self.publish_exclusion:
            return set()
        with self._txn_mutex:
            out: set[Oid] = set()
            for txn in self._active.values():
                # The owning thread grows touched_oids without _txn_mutex;
                # a resize mid-union raises, and re-reading picks up the
                # racing oid (which must be excluded -- its txn is active).
                while True:
                    try:
                        out |= txn.touched_oids
                        break
                    except RuntimeError:  # set changed size during iteration
                        continue
            return out

    def snapshot(self) -> Snapshot:
        """Pin a lock-free point-in-time view of committed state.

        The snapshot serves ``materialize``, attribute reads, the paper-§4
        traversals, ``version_as_of``, clusters and ``query(...)`` scans
        against the publication epoch current at the call -- without the
        storage mutex and without SHARED locks, so pinned readers never
        block writers and writers never block them.  Uncommitted work of
        in-flight transactions is never visible.

        Use as a context manager (or call ``close()``) to unpin::

            with db.snapshot() as snap:
                weights = [p.weight for p in snap.cluster(Part)]

        References obtained from a snapshot stay bound to it; the view
        never changes, no matter what commits afterwards.
        """
        exclude = self._active_touched()
        if self._store.has_unpublished_changes(exclude):
            # Catch-up publish for mutations that bypassed a transaction
            # finish (direct store access, tools).  The common path --
            # everything unpublished belongs to active transactions --
            # skips this entirely, so pinning does not need the storage
            # mutex and cannot block behind a writer holding it.
            with self._storage_mutex:
                self._store.publish_snapshot(exclude=self._active_touched())
        return self._store.pin_snapshot(index_source=self)

    def _mutate(self, lock_oid: Oid | None, op) -> Any:
        """Run ``op(log_op)`` inside the current or an autocommit txn."""
        self._check_writable()
        txn = self.current_transaction()
        if txn is not None and txn.read_only:
            raise ReadOnlySnapshotError(
                "snapshot-read transactions are read-only; "
                "use an ordinary transaction for writes"
            )
        if txn is not None:
            if lock_oid is not None:
                txn.lock(lock_oid, EXCLUSIVE)
                txn.touched_oids.add(lock_oid)
            try:
                with self._storage_mutex:
                    return op(txn.log_op)
            except BaseException:
                txn.cache_taint = True
                raise
        txn = self.begin()
        try:
            if lock_oid is not None:
                txn.lock(lock_oid, EXCLUSIVE)
                txn.touched_oids.add(lock_oid)
            with self._storage_mutex:
                result = op(txn.log_op)
        except BaseException:
            txn.cache_taint = True
            txn.abort()
            raise
        txn.commit()
        return result

    # -- kernel operations (paper §4) -------------------------------------------

    def pnew(self, obj: Any) -> Ref:
        """Create a persistent object; returns its generic reference."""

        def op(log_op):
            ref = self._store.pnew(obj, log_op)
            txn = self.current_transaction()
            if txn is not None:
                # An abort undoes the oid-counter bump, so this oid may be
                # handed out again -- its cache entries must die with the
                # txn.  Recorded here, still under the storage mutex, so a
                # concurrent commit's snapshot publication can never see
                # the new object as unowned (and thus publishable) before
                # this transaction finishes.
                txn.touched_oids.add(ref.oid)
            return ref

        ref = self._mutate(None, op)
        return Ref(self, ref.oid)

    def newversion(self, target: Ref | VersionRef | Oid | Vid) -> VersionRef:
        """Create a version derived from ``target`` (paper §4.2)."""
        oid = self._oid_of(target)
        vref = self._mutate(
            oid, lambda log_op: self._store.newversion(self._unbind(target), log_op)
        )
        return VersionRef(self, vref.vid)

    def pdelete(self, target: Ref | VersionRef | Oid | Vid) -> None:
        """Delete an object (all versions) or one version (paper §4.4)."""
        oid = self._oid_of(target)
        self._mutate(oid, lambda log_op: self._store.pdelete(self._unbind(target), log_op))

    # -- retention & garbage collection ---------------------------------------

    def set_retention(self, scope: Any, policy: "Any | None") -> None:
        """Declare (or with ``None``, clear) a retention policy.

        ``scope`` is a ``@persistent`` class, a registered type name, an
        :class:`Oid` or a bound ``Ref``; an object-scoped policy
        overrides its type's.  Policies live in the catalog (a logged
        root), so they survive restarts and replicate through vacuum.
        """
        from repro.core import gc as gc_engine

        key = gc_engine.scope_key(scope)

        def op(log_op):
            table = gc_engine.load_retention(self._catalog)
            if policy is None:
                table.pop(key, None)
            else:
                table[key] = policy
            gc_engine.save_retention(self._catalog, table, log_op)

        self._mutate(None, op)

    def retention_policies(self) -> dict[str, Any]:
        """Every declared retention policy, keyed by scope string."""
        from repro.core import gc as gc_engine

        return gc_engine.load_retention(self._catalog)

    def retention_for(self, target: Ref | Oid | type | str) -> Any | None:
        """The effective policy for an object (override beats type)."""
        from repro.core import gc as gc_engine

        table = gc_engine.load_retention(self._catalog)
        if isinstance(target, (type, str)):
            return table.get(gc_engine.scope_key(target))
        oid = self._oid_of(target)
        override = table.get(f"oid:{oid.value}")
        if override is not None:
            return override
        return table.get(f"type:{self._store.type_name(oid)}")

    def tag_version(self, target: VersionRef | Vid, tag: str) -> None:
        """Pin one version with a symbolic tag (``keep_tagged`` honors it)."""
        from repro.core import gc as gc_engine

        vid = target.vid if isinstance(target, VersionRef) else target
        if not isinstance(vid, Vid):
            raise TypeError("tag_version needs a specific version reference")

        def op(log_op):
            if not self._store.version_exists(vid):
                raise UnknownVersionError(f"no such version: {vid}")
            tags = gc_engine.load_tags(self._catalog)
            tags.setdefault(vid.oid.value, {})[vid.serial] = str(tag)
            gc_engine.save_tags(self._catalog, tags, log_op)

        self._mutate(vid.oid, op)

    def untag_version(self, target: VersionRef | Vid) -> None:
        """Remove a version's tag (a no-op if untagged)."""
        from repro.core import gc as gc_engine

        vid = target.vid if isinstance(target, VersionRef) else target

        def op(log_op):
            tags = gc_engine.load_tags(self._catalog)
            serials = tags.get(vid.oid.value)
            if not serials or vid.serial not in serials:
                return
            del serials[vid.serial]
            gc_engine.save_tags(self._catalog, tags, log_op)

        self._mutate(vid.oid, op)

    def version_tags(self, target: Ref | VersionRef | Oid | Vid) -> dict[int, str]:
        """The object's tags: version serial -> tag string."""
        from repro.core import gc as gc_engine

        oid = self._oid_of(target)
        return gc_engine.load_tags(self._catalog).get(oid.value, {})

    def run_gc(
        self,
        batch_limit: int = 64,
        now: float | None = None,
        dry_run: bool = False,
        reclaim: bool = True,
    ) -> Any:
        """One incremental GC pass: retention pruning, then blob reclaim.

        Bounded batches, each its own transaction -- safe to run online
        next to writers and pinned snapshots.  Returns a
        :class:`~repro.core.gc.GCReport`; ``dry_run`` plans without
        deleting anything.
        """
        from repro.core import gc as gc_engine

        report = gc_engine.collect(
            self, batch_limit=batch_limit, now=now, dry_run=dry_run,
            reclaim=reclaim,
        )
        if not dry_run:
            self._gc_counters["runs"] += 1
            self._gc_counters["versions_deleted"] += report.versions_deleted
        return report

    def reclaim_blobs(
        self, limit: int | None = None, dry_run: bool = False
    ) -> tuple[int, int, int]:
        """Unlink provably unreachable zero-ref blobs (bounded batch).

        Returns ``(unlinked, bytes_freed, candidates_remaining)``.  A
        candidate is eligible only when the epoch-reclamation signal
        clears it: its displacement has *published* (epoch advanced), no
        pinned snapshot predates the displacement, no active transaction
        started before it (an abort could revive the reference), and no
        2PC participant is in doubt (its verdict may undo displacements
        wholesale).  Each batch journals a WAL ``GC_TOMBSTONE`` before
        the first unlink so a crash in any window is repaired at the
        next open.
        """
        self._check_writable()
        with self._twopc_mutex:
            if self._in_doubt:
                with self._storage_mutex:
                    return (0, 0, len(self._store.gc_candidates()))
        if dry_run:
            with self._storage_mutex:
                eligible = self._eligible_blob_keys(limit)
                sizes = self._store.blob_entries()
                freed = sum(sizes[key][1] for key in eligible)
                remaining = len(self._store.gc_candidates()) - len(eligible)
            return (len(eligible), freed, remaining)

        def op(log_op):
            txn = self.current_transaction()
            eligible = self._eligible_blob_keys(
                limit, exclude_txid=txn.txid if txn is not None else None
            )
            if not eligible:
                return (0, 0, len(self._store.gc_candidates()))
            faults.fire("gc.tombstone.pre")
            self._log.append(
                LogRecord(
                    GC_TOMBSTONE, 0, payload=serialization.encode(tuple(eligible))
                )
            )
            self._log.flush()
            faults.fire("gc.tombstone.post")
            unlinked = 0
            freed = 0
            for key in eligible:
                faults.fire("gc.unlink.pre")
                freed += self._store.blobs.unlink(key)
                faults.fire("gc.unlink.post")
                faults.fire("gc.index.pre")
                self._store.drop_blob_entry(key, log_op)
                faults.fire("gc.index.post")
                unlinked += 1
            return (unlinked, freed, len(self._store.gc_candidates()))

        unlinked, freed, remaining = self._mutate(None, op)
        self._gc_counters["blobs_unlinked"] += unlinked
        self._gc_counters["bytes_freed"] += freed
        return (unlinked, freed, remaining)

    def _eligible_blob_keys(
        self, limit: int | None, exclude_txid: int | None = None
    ) -> list[str]:
        """Candidates the epoch signal clears (caller holds the storage mutex)."""
        epoch = self._store.snapshots.epoch
        min_pinned = self._store.snapshots.min_pinned_epoch()
        with self._txn_mutex:
            starts = [
                getattr(txn, "gc_start_epoch", 0)
                for txid, txn in self._active.items()
                if txid != exclude_txid
            ]
        active_floor = min(starts) if starts else None
        out: list[str] = []
        for key, stamp in sorted(
            self._store.gc_candidates().items(), key=lambda kv: (kv[1], kv[0])
        ):
            if stamp >= epoch:
                continue  # displacement not yet published
            if min_pinned is not None and min_pinned <= stamp:
                continue  # a pinned cut may predate the displacement
            if active_floor is not None and active_floor <= stamp:
                continue  # the displacing transaction may still abort
            out.append(key)
            if limit is not None and len(out) >= limit:
                break
        return out

    @staticmethod
    def _oid_of(target: Ref | VersionRef | Oid | Vid) -> Oid:
        if isinstance(target, (Ref, VersionRef)):
            return target.oid
        if isinstance(target, Vid):
            return target.oid
        return target

    def _unbind(self, target: Ref | VersionRef | Oid | Vid) -> Oid | Vid:
        """Strip the binding so the store sees plain ids."""
        if isinstance(target, Ref):
            return target.oid
        if isinstance(target, VersionRef):
            return target.vid
        return target

    # -- dereferencing ------------------------------------------------------------

    def deref(self, ident: Oid | Vid) -> Ref | VersionRef:
        """Bind an id into a reference: Oid -> Ref (generic), Vid -> VersionRef."""
        if isinstance(ident, Oid):
            return Ref(self, ident)
        if isinstance(ident, Vid):
            return VersionRef(self, ident)
        raise TypeError(f"expected Oid or Vid, got {type(ident).__qualname__}")

    # -- store protocol (used by Ref/VersionRef bound to this database) ------------

    def _reader(self):
        """Where reads resolve: the pinned snapshot of a snapshot-read
        transaction, the session's pinned snapshot (outside transactions),
        or the live store."""
        txn = self.current_transaction()
        if txn is not None:
            if txn.snapshot is not None:
                return txn.snapshot
            return self._store
        snap = self._session_pin()
        if snap is not None:
            return snap
        return self._store

    def materialize(self, vid: Vid) -> Any:
        """Decode a fresh copy of one version's object.

        Inside an explicit transaction the read takes a SHARED lock on the
        object (strict 2PL: read-modify-write cycles across transactions
        serialize instead of losing updates).  Autocommit reads are
        unlocked snapshot reads.  Snapshot-read transactions resolve
        against their pinned snapshot: no lock, no storage mutex.
        """
        txn = self.current_transaction()
        if txn is not None:
            if txn.snapshot is not None:
                return txn.snapshot.materialize(vid)
            txn.lock(vid.oid, SHARED)
        else:
            snap = self._session_pin()
            if snap is not None:
                return snap.materialize(vid)
        with self._storage_mutex:
            return self._store.materialize(vid)

    def read_attr(self, vid: Vid, name: str) -> Any:
        """Read one attribute through the store's shared decoded cache.

        The fast path behind generic-reference attribute access: returns
        the attribute value when it can safely be served from a shared
        cached instance, or :data:`repro.core.store.READ_MISS` when the
        caller must fall back to :meth:`materialize`.  Locking mirrors
        :meth:`materialize` (SHARED inside explicit transactions,
        lock-free in snapshot-read transactions).
        """
        txn = self.current_transaction()
        if txn is not None:
            if txn.snapshot is not None:
                return txn.snapshot.read_attr(vid, name)
            txn.lock(vid.oid, SHARED)
        else:
            snap = self._session_pin()
            if snap is not None:
                return snap.read_attr(vid, name)
        with self._storage_mutex:
            return self._store.read_attr(vid, name)

    def latest_vid(self, oid: Oid) -> Vid:
        """The version id an object id currently denotes (S-locked in txns)."""
        txn = self.current_transaction()
        if txn is not None:
            if txn.snapshot is not None:
                return txn.snapshot.latest_vid(oid)
            txn.lock(oid, SHARED)
        else:
            snap = self._session_pin()
            if snap is not None:
                return snap.latest_vid(oid)
        with self._storage_mutex:
            return self._store.latest_vid(oid)

    def write_version(self, vid: Vid, obj: Any) -> None:
        """Update a version in place (transactional, X-locks the object)."""
        self._mutate(vid.oid, lambda log_op: self._store.write_version(vid, obj, log_op))

    def write_version_if_changed(self, vid: Vid, obj: Any) -> bool:
        """:meth:`write_version`, skipped when ``obj`` matches the stored bytes.

        The dirtiness probe runs *before* entering a transaction: a pure
        reader method through a generic reference never pays the
        autocommit BEGIN/COMMIT + fsync, never takes the X lock, and never
        invalidates caches.  Returns True when a write happened.
        """
        txn = self.current_transaction()
        if txn is not None:
            if txn.snapshot is not None:
                # Pure reader methods write back nothing; a genuinely
                # dirty receiver fails read-only inside the snapshot.
                return txn.snapshot.write_version_if_changed(vid, obj)
            # Under an explicit transaction, hold at least a read lock
            # while probing so the compared bytes cannot move underneath.
            txn.lock(vid.oid, SHARED)
        else:
            snap = self._session_pin()
            if snap is not None:
                return snap.write_version_if_changed(vid, obj)
        with self._storage_mutex:
            dirty = self._store.version_dirty(vid, obj)
        if not dirty:
            self._store.cache_stats.writebacks_skipped += 1
            return False
        self.write_version(vid, obj)
        return True

    def object_exists(self, oid: Oid) -> bool:
        """True while the object has at least one live version."""
        return self._reader().object_exists(oid)

    def version_exists(self, vid: Vid) -> bool:
        """True while the specific version is live."""
        return self._reader().version_exists(vid)

    def type_name(self, oid: Oid) -> str:
        """Stable type name of the object's class."""
        return self._reader().type_name(oid)

    # -- traversal (paper §4: Dprevious/Tprevious and duals) -----------------------

    def _rebind_vref(self, vref: VersionRef | None) -> VersionRef | None:
        return None if vref is None else VersionRef(self, vref.vid)

    def dprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The version ``vref`` was derived from (derivation parent)."""
        return self._rebind_vref(self._reader().dprevious(self._unbind(vref)))

    def dnext(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """Versions derived from ``vref`` (revisions and variants)."""
        return [VersionRef(self, v.vid) for v in self._reader().dnext(self._unbind(vref))]

    def tprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally preceding version."""
        return self._rebind_vref(self._reader().tprevious(self._unbind(vref)))

    def tnext(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally following version."""
        return self._rebind_vref(self._reader().tnext(self._unbind(vref)))

    def history(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """Derivation path of ``vref``, newest first."""
        return [VersionRef(self, v.vid) for v in self._reader().history(self._unbind(vref))]

    def versions(self, target: Ref | Oid) -> list[VersionRef]:
        """All live versions, temporal order (oldest first)."""
        oid = self._oid_of(target)
        return [VersionRef(self, v.vid) for v in self._reader().versions(oid)]

    def version_as_of(self, target: Ref | Oid, timestamp: float) -> VersionRef | None:
        """The version that was latest at wall-clock ``timestamp`` (§3)."""
        return self._rebind_vref(
            self._reader().version_as_of(self._oid_of(target), timestamp)
        )

    def leaves(self, target: Ref | Oid) -> list[VersionRef]:
        """Up-to-date version of every alternative."""
        oid = self._oid_of(target)
        return [VersionRef(self, v.vid) for v in self._reader().leaves(oid)]

    def alternatives(self, target: Ref | Oid) -> list[list[VersionRef]]:
        """Every root-to-leaf derivation path."""
        oid = self._oid_of(target)
        return [
            [VersionRef(self, v.vid) for v in path]
            for path in self._reader().alternatives(oid)
        ]

    def version_count(self, target: Ref | Oid) -> int:
        """Number of live versions of the object."""
        return self._reader().version_count(self._oid_of(target))

    def graph(self, target: Ref | Oid) -> VersionGraph:
        """The object's version graph (read-only view)."""
        return self._reader().graph(self._oid_of(target))

    # -- clusters & queries ----------------------------------------------------------

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        """Generic references to every object of a type (the Ode cluster)."""
        return [Ref(self, ref.oid) for ref in self._reader().cluster(type_or_name)]

    def query(self, type_or_name: type | str) -> Query:
        """A ``suchthat``-style query over the type's cluster.

        Inside a snapshot-read transaction the query binds to the pinned
        snapshot, so iteration scans frozen state lock-free.
        """
        txn = self.current_transaction()
        if txn is not None:
            if txn.snapshot is not None:
                return Query(txn.snapshot, type_or_name)
            return Query(self, type_or_name)
        snap = self._session_pin()
        if snap is not None:
            return Query(snap, type_or_name)
        return Query(self, type_or_name)

    # -- indexes ------------------------------------------------------------------

    def create_index(self, type_or_name: type | str, attr: str) -> HashIndex:
        """Create (idempotently) a hash index on one cluster attribute.

        Equality queries built with :func:`repro.core.indexes.attr_equals`
        then resolve through the index instead of scanning the cluster.
        """
        return self._indexes.ensure(type_or_name, attr)

    def create_ordered_index(self, type_or_name: type | str, attr: str) -> OrderedIndex:
        """Create (idempotently) an ORDERED index on one cluster attribute.

        Range queries built with :func:`repro.core.indexes.attr_between`
        then resolve through the index instead of scanning.
        """
        return self._indexes.ensure_ordered(type_or_name, attr)

    def drop_index(self, type_or_name: type | str, attr: str) -> None:
        """Remove an index (queries fall back to cluster scans)."""
        self._indexes.drop(type_or_name, attr)

    def index_lookup(self, type_name: str, attr: str, value) -> list[Oid] | None:
        """Index probe used by the query layer; None when not indexed."""
        oids = self._indexes.lookup(type_name, attr, value)
        return None if oids is None else sorted(oids)

    def index_lookup_range(
        self, type_name: str, attr: str, lo, hi
    ) -> list[Oid] | None:
        """Ordered-index probe used by the query layer; None when not indexed."""
        oids = self._indexes.lookup_range(type_name, attr, lo, hi)
        return None if oids is None else list(oids)

    def cluster_names(self) -> list[str]:
        """Type names with at least one live object."""
        return self._reader().cluster_names()

    def object_count(self) -> int:
        """Number of live persistent objects."""
        return self._reader().object_count()

    def stats(self) -> dict[str, Any]:
        """Operational counters, namespaced by subsystem.

        Keys are grouped as ``pool.*``, ``wal.*``, ``cache.*``,
        ``locks.*``, ``txn.*``, ``snap.*``, ``faults.*``, plus
        ``degraded`` / ``degraded.reason``.  The pre-namespacing spellings
        (``pool_hits``, ``wal_bytes``, bare cache names, ``faults_*``)
        remain as aliases so existing tooling keeps working.
        """
        stats: dict[str, Any] = {
            "objects": self._store.object_count(),
            "pool.hits": self._pool.hits,
            "pool.misses": self._pool.misses,
            "pool.evictions": self._pool.evictions,
            "pool.promotions": self._pool.promotions,
            "wal.bytes": self._log.size(),
            "wal.flushes": self._log.flush_count,
            "wal.group_piggybacks": self._log.group_piggybacks,
            "wal.write_failures": self._log.write_failures,
            "disk.pages": self._disk.num_pages,
            "disk.write_failures": self._disk.write_failures,
            "degraded": self._degraded_reason is not None,
            "degraded.reason": self._degraded_reason,
        }
        for key, value in self._store.stats().items():
            stats[f"cache.{key}"] = value
        stats.update(self._store.blob_stats())
        for key, value in self._gc_counters.items():
            stats[f"gc.{key}"] = value
        stats.update(self._store.snapshots.stats())
        stats.update(self._locks.stats())
        stats.update(self._resilience.as_dict())
        stats["sessions.open"] = self.session_count
        # Attached subsystems (the network server registers its ``net.*``
        # counters here); a source that died mid-teardown is skipped.
        for source in list(self._stats_sources):
            stats.update(source())
        # Injected-fault counters (zero outside fault-injection runs); the
        # injector is process-global, so these are not per-database.
        for key, value in faults.stats().items():
            stats[key.replace("faults_", "faults.", 1)] = value
        # Back-compat aliases for the pre-namespacing key spellings.
        for key in list(stats):
            if key.startswith("cache."):
                stats[key[len("cache."):]] = stats[key]
            elif key.startswith(("pool.", "wal.", "faults.")):
                stats[key.replace(".", "_", 1)] = stats[key]
        stats["data_pages"] = stats["disk.pages"]
        return stats
