"""The version graph: temporal chain + derived-from forest for one object.

Paper §3: "Versions of an object should be ordered temporally according to
their creation time ... In addition, derived-from relationships reflecting
the derivation history of the versions of an object should also be
maintained."  Paper §4 adds the traversal primitives ``Dprevious`` (the
version this one was derived from) and ``Tprevious`` (the temporally
preceding version), and the deletion semantics of ``pdelete`` on a version
id.

Within one object, version serials are assigned monotonically, so the
*temporal chain* is simply the live serials in ascending order; deletion
splices the chain implicitly.  The *derived-from* relationship is a parent
pointer per version.  It starts as a tree rooted at the first version; the
paper's figures draw it as a tree, and deleting a non-root version keeps it
a tree by re-parenting the deleted version's children to its parent.
Deleting the root promotes its children to roots, so in full generality the
structure is a forest -- the invariant checker accounts for that.

Terminology from the paper (§4):

* a child of ``v`` in the derivation tree is a **revision** of ``v``;
* two children of the same ``v`` are **variants** (or *alternatives*);
* the derivation path root → ... → ``v`` is the **version history** of ``v``;
* each leaf is "the most up-to-date version of an alternative design".

Nodes carry an opaque ``data`` slot used by the version store for payload
location; the graph itself never interprets it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator

from repro.errors import GraphInvariantError, UnknownVersionError


class VersionNode:
    """One version in the graph.  ``serial`` is unique within the object."""

    __slots__ = ("serial", "dprev", "children", "ctime", "data")

    def __init__(
        self,
        serial: int,
        dprev: int | None,
        ctime: float,
        data: Any = None,
    ) -> None:
        self.serial = serial
        self.dprev = dprev
        self.children: list[int] = []
        self.ctime = ctime
        self.data = data

    def __repr__(self) -> str:
        return f"VersionNode(serial={self.serial}, dprev={self.dprev})"


class VersionGraph:
    """Temporal chain and derivation forest over one object's versions."""

    def __init__(self) -> None:
        self._nodes: dict[int, VersionNode] = {}
        self._order: list[int] = []  # live serials, ascending == temporal
        self._ctimes: list[float] = []  # creation times, parallel to _order
        self._max_serial = 0  # high-water mark; never reused

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, serial: int) -> bool:
        return serial in self._nodes

    def node(self, serial: int) -> VersionNode:
        """The node for ``serial``; raises :class:`UnknownVersionError`."""
        try:
            return self._nodes[serial]
        except KeyError:
            raise UnknownVersionError(f"no live version with serial {serial}") from None

    def serials(self) -> list[int]:
        """Live serials in temporal (ascending) order (copy)."""
        return list(self._order)

    def latest(self) -> int | None:
        """Serial of the temporally latest version, or None when empty.

        This is what an object id dereferences to (paper §4: the object id
        "logically refers to the latest version of the object").
        """
        return self._order[-1] if self._order else None

    def roots(self) -> list[int]:
        """Serials whose derivation parent is gone or never existed."""
        return [s for s in self._order if self._nodes[s].dprev is None]

    @property
    def max_serial(self) -> int:
        """High-water mark of ever-assigned serials (serials never recycle)."""
        return self._max_serial

    # -- construction --------------------------------------------------------

    def create(self, serial: int, dprev: int | None, ctime: float, data: Any = None) -> VersionNode:
        """Add a version.  ``dprev`` is its derivation parent (None = root).

        Serials must be fresh and strictly greater than every serial ever
        assigned, which is what keeps the temporal chain equal to serial
        order.

        ``ctime`` is clamped to the newest live version's creation time
        when the clock has run backwards (an NTP step): the temporal chain
        is ordered by *creation*, and ``latest_at`` bisects ``_ctimes``,
        so the list must stay sorted no matter what the wall clock does.
        """
        if serial in self._nodes:
            raise GraphInvariantError(f"serial {serial} already exists")
        if serial <= self._max_serial:
            raise GraphInvariantError(
                f"serial {serial} is not greater than high-water mark {self._max_serial}"
            )
        if self._ctimes and ctime < self._ctimes[-1]:
            ctime = self._ctimes[-1]
        if dprev is not None:
            parent = self.node(dprev)
            parent.children.append(serial)
        node = VersionNode(serial, dprev, ctime, data)
        self._nodes[serial] = node
        self._order.append(serial)
        self._ctimes.append(ctime)
        self._max_serial = serial
        return node

    def remove(self, serial: int) -> VersionNode:
        """Delete one version, splicing both relationships (paper §4.4).

        The deleted version's derivation children are re-parented to its
        derivation parent (they become roots if it had none).  The temporal
        chain splices by construction.  Returns the removed node.
        """
        node = self.node(serial)
        parent_serial = node.dprev
        if parent_serial is not None:
            parent = self._nodes[parent_serial]
            parent.children.remove(serial)
        for child_serial in node.children:
            child = self._nodes[child_serial]
            child.dprev = parent_serial
            if parent_serial is not None:
                self._nodes[parent_serial].children.append(child_serial)
        del self._nodes[serial]
        idx = bisect_left(self._order, serial)
        del self._order[idx]
        del self._ctimes[idx]
        return node

    # -- traversal (paper §4: Dprevious / Tprevious and duals) -----------------

    def dprevious(self, serial: int) -> int | None:
        """The version ``serial`` was derived from, or None for a root."""
        return self.node(serial).dprev

    def dnext(self, serial: int) -> list[int]:
        """Versions derived from ``serial`` (its revisions/variants), oldest first."""
        return sorted(self.node(serial).children)

    def latest_at(self, timestamp: float) -> int | None:
        """Serial of the newest version created at or before ``timestamp``.

        Binary search over creation times: the temporal chain is totally
        ordered (serials are assigned monotonically, paper §3), so the
        ctime list is sorted in parallel with ``_order``.  Among versions
        sharing a ctime the temporally latest wins, matching a linear
        scan.  Returns None when every live version is newer.
        """
        idx = bisect_right(self._ctimes, timestamp)
        return self._order[idx - 1] if idx > 0 else None

    def tprevious(self, serial: int) -> int | None:
        """The temporally preceding live version, or None for the oldest."""
        self.node(serial)
        idx = bisect_left(self._order, serial)
        return self._order[idx - 1] if idx > 0 else None

    def tnext(self, serial: int) -> int | None:
        """The temporally following live version, or None for the latest."""
        self.node(serial)
        idx = bisect_left(self._order, serial)
        return self._order[idx + 1] if idx + 1 < len(self._order) else None

    def history(self, serial: int) -> list[int]:
        """The version history of ``serial``: the derivation path, newest first.

        Paper §4: "v3, v1, and v0 constitute a version history".
        """
        path: list[int] = []
        current: int | None = serial
        while current is not None:
            node = self.node(current)
            path.append(current)
            current = node.dprev
        return path

    def leaves(self) -> list[int]:
        """Serials with no derivation children -- the up-to-date alternatives."""
        return [s for s in self._order if not self._nodes[s].children]

    def alternatives(self) -> list[list[int]]:
        """Every root-to-leaf derivation path, each oldest-first.

        Paper §4: "each path from the root of the derived-from tree to a
        leaf represents evolution of an alternative design".
        """
        paths: list[list[int]] = []
        for leaf in self.leaves():
            paths.append(list(reversed(self.history(leaf))))
        paths.sort()
        return paths

    def descendants(self, serial: int) -> list[int]:
        """All versions transitively derived from ``serial`` (sorted)."""
        out: list[int] = []
        stack = list(self.node(serial).children)
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self._nodes[current].children)
        return sorted(out)

    def walk_temporal(self) -> Iterator[VersionNode]:
        """Yield live nodes oldest-first (the temporal chain)."""
        for serial in self._order:
            yield self._nodes[serial]

    def derivation_depth(self, serial: int) -> int:
        """Edges between ``serial`` and its derivation root."""
        return len(self.history(serial)) - 1

    def clone(self) -> VersionGraph:
        """A structurally independent copy sharing only the ``data`` payloads.

        The snapshot layer publishes graphs by reference and marks them
        shared; a writer about to mutate a shared graph clones it first
        (copy-on-write), so pinned snapshot readers keep traversing the
        frozen original without any lock.  ``data`` values (payload
        locations) are treated as immutable by the store -- every rewrite
        installs a fresh tuple -- so they can be shared.
        """
        copy = VersionGraph()
        for serial in self._order:
            node = self._nodes[serial]
            twin = VersionNode(serial, node.dprev, node.ctime, node.data)
            twin.children = list(node.children)
            copy._nodes[serial] = twin
        copy._order = list(self._order)
        copy._ctimes = list(self._ctimes)
        copy._max_serial = self._max_serial
        return copy

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raises on violation.

        Exercised directly by the property-based tests after random op
        sequences.
        """
        if sorted(self._nodes) != self._order:
            raise GraphInvariantError("temporal chain out of sync with node set")
        if self._ctimes != [self._nodes[s].ctime for s in self._order]:
            raise GraphInvariantError("ctime index out of sync with temporal chain")
        if any(a > b for a, b in zip(self._ctimes, self._ctimes[1:])):
            raise GraphInvariantError("creation times not sorted along temporal chain")
        if self._order and self._order[-1] > self._max_serial:
            raise GraphInvariantError("high-water mark below a live serial")
        for serial, node in self._nodes.items():
            if node.serial != serial:
                raise GraphInvariantError(f"node {serial} carries serial {node.serial}")
            if node.dprev is not None:
                if node.dprev not in self._nodes:
                    raise GraphInvariantError(
                        f"node {serial} derived from dead version {node.dprev}"
                    )
                if node.dprev >= serial:
                    raise GraphInvariantError(
                        f"node {serial} derived from a newer version {node.dprev}"
                    )
                if serial not in self._nodes[node.dprev].children:
                    raise GraphInvariantError(
                        f"node {serial} missing from parent {node.dprev}'s children"
                    )
            for child in node.children:
                if child not in self._nodes:
                    raise GraphInvariantError(f"node {serial} has dead child {child}")
                if self._nodes[child].dprev != serial:
                    raise GraphInvariantError(
                        f"child {child} does not point back to {serial}"
                    )
        # Acyclicity follows from dprev < serial, checked above.

    # -- persistence ------------------------------------------------------------

    def to_state(self) -> tuple:
        """Codec-friendly snapshot: ``(max_serial, [(serial, dprev, ctime, data)...])``."""
        rows = [
            (n.serial, -1 if n.dprev is None else n.dprev, n.ctime, n.data)
            for n in self.walk_temporal()
        ]
        return (self._max_serial, rows)

    @staticmethod
    def from_state(state: tuple) -> VersionGraph:
        """Rebuild a graph from :meth:`to_state` output."""
        max_serial, rows = state
        graph = VersionGraph()
        for serial, dprev, ctime, data in rows:
            node = VersionNode(serial, None if dprev == -1 else dprev, ctime, data)
            graph._nodes[serial] = node
            insort(graph._order, serial)
        for node in graph._nodes.values():
            if node.dprev is not None:
                graph._nodes[node.dprev].children.append(node.serial)
        # Graphs persisted before ctime clamping existed may carry a
        # wall-clock regression; repair it the same way create() would have.
        floor = float("-inf")
        for serial in graph._order:
            node = graph._nodes[serial]
            if node.ctime < floor:
                node.ctime = floor
            else:
                floor = node.ctime
            graph._ctimes.append(node.ctime)
        graph._max_serial = max_serial
        graph.validate()
        return graph
