"""Attribute indexes over clusters: associative access for queries.

Ode's query facility iterates clusters; for large clusters O++ relies on
the storage layer to provide associative access.  This module provides
hash indexes over one attribute of one cluster, kept consistent through
the store's event stream (the same observer surface the trigger facility
uses -- no kernel hooks were added for indexing).

An index maps ``attribute value -> set of Oids whose LATEST version has
that value``.  Indexing latest versions matches cluster-query semantics:
a query reads through generic references, so the index must reflect what
those reads would see.  ``over_versions`` queries are historical scans and
intentionally bypass indexes.

Indexes are in-memory and rebuilt on open (they are derived data; the
heap records are the durable truth).  ``IndexManager.ensure`` registers an
index idempotently, and the query layer consults :meth:`IndexManager.lookup`
for equality predicates created with :func:`attr_equals`.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.errors import OdeError
from repro.core.identity import Oid, Vid


class IndexError_(OdeError):
    """An index operation failed (shadow of the builtin name on purpose)."""


class AttrEquals:
    """An indexable equality predicate: ``attr == value``.

    Usable directly as a query predicate (it is callable on a reference),
    and recognised by the query layer for index lookup.
    """

    __slots__ = ("attr", "value")

    def __init__(self, attr: str, value: Hashable) -> None:
        self.attr = attr
        self.value = value

    def __call__(self, ref: Any) -> bool:
        return getattr(ref, self.attr, None) == self.value

    def __repr__(self) -> str:
        return f"AttrEquals({self.attr!r}, {self.value!r})"


def attr_equals(attr: str, value: Hashable) -> AttrEquals:
    """Build an indexable ``attr == value`` predicate."""
    return AttrEquals(attr, value)


class AttrRange:
    """An indexable range predicate: ``lo <= attr <= hi`` (either side open).

    Usable directly as a query predicate; recognised by the query layer
    for ordered-index lookup.
    """

    __slots__ = ("attr", "lo", "hi")

    def __init__(self, attr: str, lo: Any = None, hi: Any = None) -> None:
        if lo is None and hi is None:
            raise ValueError("a range needs at least one bound")
        self.attr = attr
        self.lo = lo
        self.hi = hi

    def __call__(self, ref: Any) -> bool:
        value = getattr(ref, self.attr, None)
        if value is None:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def __repr__(self) -> str:
        return f"AttrRange({self.attr!r}, lo={self.lo!r}, hi={self.hi!r})"


def attr_between(attr: str, lo: Any = None, hi: Any = None) -> AttrRange:
    """Build an indexable ``lo <= attr <= hi`` predicate."""
    return AttrRange(attr, lo, hi)


class HashIndex:
    """One hash index: (cluster type name, attribute) -> Oid sets."""

    def __init__(self, type_name: str, attr: str) -> None:
        self.type_name = type_name
        self.attr = attr
        self._by_value: dict[Hashable, set[Oid]] = {}
        self._value_of: dict[Oid, Hashable] = {}
        #: Oids whose attribute value is unhashable or missing; they are
        #: excluded from the index and must be post-filtered by scans.
        self.unindexed: set[Oid] = set()

    def _extract(self, state: Any) -> tuple[bool, Hashable]:
        value = getattr(state, self.attr, None) if not isinstance(state, dict) else state.get(self.attr)
        try:
            hash(value)
        except TypeError:
            return False, None
        return True, value

    def put(self, oid: Oid, state: Any) -> None:
        """Insert or refresh one object's entry from its latest state."""
        self.remove(oid)
        ok, value = self._extract(state)
        if not ok:
            self.unindexed.add(oid)
            return
        self._by_value.setdefault(value, set()).add(oid)
        self._value_of[oid] = value

    def remove(self, oid: Oid) -> None:
        """Drop one object's entry (missing entries are fine)."""
        self.unindexed.discard(oid)
        if oid not in self._value_of:
            return
        value = self._value_of.pop(oid)
        bucket = self._by_value.get(value)
        if bucket is not None:
            bucket.discard(oid)
            if not bucket:
                del self._by_value[value]

    def lookup(self, value: Hashable) -> set[Oid]:
        """Oids whose latest version has ``attr == value`` (copy)."""
        return set(self._by_value.get(value, set()))

    def distinct_values(self) -> list[Hashable]:
        """Every indexed value (unsorted values may be mixed types)."""
        return list(self._by_value)

    def __len__(self) -> int:
        return len(self._value_of)


class OrderedIndex:
    """A sorted index over one attribute: supports range lookups.

    Kept as a sorted list of ``(value, oid)`` pairs (bisect-maintained).
    Values must be mutually comparable; an object whose value does not
    compare against the existing keys falls into ``unindexed`` and is
    post-filtered by scans, like the hash index's unhashable case.
    """

    def __init__(self, type_name: str, attr: str) -> None:
        self.type_name = type_name
        self.attr = attr
        self._pairs: list[tuple[Any, Oid]] = []
        self._value_of: dict[Oid, Any] = {}
        self.unindexed: set[Oid] = set()

    def put(self, oid: Oid, state: Any) -> None:
        """Insert or refresh one object's entry from its latest state."""
        from bisect import insort

        self.remove(oid)
        value = (
            state.get(self.attr) if isinstance(state, dict) else getattr(state, self.attr, None)
        )
        try:
            insort(self._pairs, (value, oid))
        except TypeError:
            self.unindexed.add(oid)
            return
        self._value_of[oid] = value

    def remove(self, oid: Oid) -> None:
        """Drop one object's entry (missing entries are fine)."""
        from bisect import bisect_left

        self.unindexed.discard(oid)
        if oid not in self._value_of:
            return
        value = self._value_of.pop(oid)
        idx = bisect_left(self._pairs, (value, oid))
        if idx < len(self._pairs) and self._pairs[idx] == (value, oid):
            del self._pairs[idx]

    def range(self, lo: Any = None, hi: Any = None) -> list[Oid]:
        """Oids with ``lo <= value <= hi`` (open sides with None), sorted by value."""
        from bisect import bisect_left, bisect_right

        start = 0 if lo is None else bisect_left(self._pairs, (lo,))
        if hi is None:
            end = len(self._pairs)
        else:
            # (hi, +inf oid): include every oid paired with value == hi.
            end = bisect_right(self._pairs, (hi, Oid(2**62)))
        return [oid for _value, oid in self._pairs[start:end]]

    def min_value(self) -> Any:
        """Smallest indexed value (None when empty)."""
        return self._pairs[0][0] if self._pairs else None

    def max_value(self) -> Any:
        """Largest indexed value (None when empty)."""
        return self._pairs[-1][0] if self._pairs else None

    def __len__(self) -> int:
        return len(self._value_of)


class IndexManager:
    """Registry of hash indexes over a store, fed by store events."""

    def __init__(self, store: Any) -> None:
        self._store = store
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        self._ordered: dict[tuple[str, str], OrderedIndex] = {}
        store.add_observer(self._on_event)

    # -- registration ---------------------------------------------------------

    def ensure(self, type_or_name: type | str, attr: str) -> HashIndex:
        """Create (or return) the index on ``(cluster, attr)`` and build it."""
        type_name = self._type_name(type_or_name)
        key = (type_name, attr)
        index = self._indexes.get(key)
        if index is not None:
            return index
        index = HashIndex(type_name, attr)
        self._indexes[key] = index
        for ref in self._store.cluster(type_name):
            index.put(ref.oid, self._store.materialize(self._store.latest_vid(ref.oid)))
        return index

    def ensure_ordered(self, type_or_name: type | str, attr: str) -> OrderedIndex:
        """Create (or return) the ORDERED index on ``(cluster, attr)``."""
        type_name = self._type_name(type_or_name)
        key = (type_name, attr)
        index = self._ordered.get(key)
        if index is not None:
            return index
        index = OrderedIndex(type_name, attr)
        self._ordered[key] = index
        for ref in self._store.cluster(type_name):
            index.put(ref.oid, self._store.materialize(self._store.latest_vid(ref.oid)))
        return index

    def drop(self, type_or_name: type | str, attr: str) -> None:
        """Remove the hash and/or ordered index on ``(cluster, attr)``."""
        key = (self._type_name(type_or_name), attr)
        self._indexes.pop(key, None)
        self._ordered.pop(key, None)

    def get(self, type_or_name: type | str, attr: str) -> HashIndex | None:
        """The index on ``(cluster, attr)``, if registered."""
        return self._indexes.get((self._type_name(type_or_name), attr))

    def indexes(self) -> list[HashIndex]:
        """All registered indexes."""
        return list(self._indexes.values())

    def _type_name(self, type_or_name: type | str) -> str:
        if isinstance(type_or_name, str):
            return type_or_name
        from repro.storage.serialization import registered_name

        name = registered_name(type_or_name)
        return name if name is not None else (
            f"{type_or_name.__module__}.{type_or_name.__qualname__}"
        )

    # -- lookup (used by the query layer) ----------------------------------------

    def lookup(self, type_name: str, attr: str, value: Hashable) -> Iterable[Oid] | None:
        """Index lookup, or None when no index covers ``(cluster, attr)``.

        The result over-approximates by including unindexed oids (those
        must be post-filtered by the caller); it never misses a match.
        """
        index = self._indexes.get((type_name, attr))
        if index is None:
            return None
        return index.lookup(value) | set(index.unindexed)

    def lookup_range(
        self, type_name: str, attr: str, lo: Any, hi: Any
    ) -> Iterable[Oid] | None:
        """Ordered-index range probe, or None when not indexed.

        Over-approximates with unindexed oids, like :meth:`lookup`.
        """
        index = self._ordered.get((type_name, attr))
        if index is None:
            return None
        return list(index.range(lo, hi)) + sorted(index.unindexed)

    def rebuild(self) -> None:
        """Rebuild every index from the store (after a transaction abort)."""
        for (type_name, _attr), index in self._indexes.items():
            index._by_value.clear()
            index._value_of.clear()
            index.unindexed.clear()
            for ref in self._store.cluster(type_name):
                index.put(
                    ref.oid, self._store.materialize(self._store.latest_vid(ref.oid))
                )
        for (type_name, _attr), ordered in self._ordered.items():
            ordered._pairs.clear()
            ordered._value_of.clear()
            ordered.unindexed.clear()
            for ref in self._store.cluster(type_name):
                ordered.put(
                    ref.oid, self._store.materialize(self._store.latest_vid(ref.oid))
                )

    # -- maintenance ----------------------------------------------------------------

    def _on_event(self, event: str, oid: Oid, vid: Vid | None) -> None:
        if not self._indexes and not self._ordered:
            return
        if event == "delete_object":
            for index in self._indexes.values():
                index.remove(oid)
            for ordered in self._ordered.values():
                ordered.remove(oid)
            return
        if event not in ("create", "newversion", "update", "delete_version"):
            return
        if not self._store.object_exists(oid):
            return
        type_name = self._store.type_name(oid)
        relevant: list[Any] = [
            index
            for (tname, _attr), index in self._indexes.items()
            if tname == type_name
        ]
        relevant += [
            ordered
            for (tname, _attr), ordered in self._ordered.items()
            if tname == type_name
        ]
        if not relevant:
            return
        # Only latest-version changes matter to the index.
        latest = self._store.latest_vid(oid)
        if event == "update" and vid is not None and vid != latest:
            return
        state = self._store.materialize(latest)
        for index in relevant:
            index.put(oid, state)
