"""Retention policies and the snapshot-safe online garbage collector.

Version histories grow without bound (the paper's model never discards a
version implicitly), so long-lived databases need an *explicit* reclaim
path.  This module supplies it in two stages:

1. **Retention** -- declarative :class:`RetentionPolicy` descriptors
   stored in the catalog (per type, with per-object overrides) decide
   which versions are *displaced*: everything not protected by
   ``keep_last_n`` / ``keep_days`` / ``keep_tagged`` (and never the
   latest version) is deleted through the ordinary transactional
   ``pdelete`` path in bounded batches.

2. **Blob reclaim** -- deleting version records drops content-addressed
   payload refcounts; keys that reach zero become *candidates* stamped
   with the snapshot epoch at displacement.  ``Database.reclaim_blobs``
   unlinks a candidate's file only once the epoch-reclamation signal
   proves no pinned snapshot and no still-active transaction can reach
   it, journaling a WAL tombstone first so a crash in any window of the
   unlink protocol is repaired at recovery (see
   ``Database._repair_gc_tombstones``).

Both stages are incremental: bounded batches, each its own transaction,
run under the same mutexes as any writer -- the collector never blocks
writers for longer than one small batch, and readers on pinned
snapshots are never broken (displaced payloads are stashed into their
overlays before the records are overwritten).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.identity import Oid, Vid
from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database

#: Catalog root holding the retention table: a tuple of
#: ``(scope_key, (keep_last_n, keep_days, keep_tagged))`` pairs.
RETENTION_ROOT = "ode.retention"

#: Catalog root holding version tags: a tuple of
#: ``(oid_value, ((serial, tag), ...))`` pairs.
TAGS_ROOT = "ode.tags"


@dataclass(frozen=True)
class RetentionPolicy:
    """How much history to keep for the objects a scope covers.

    A version survives collection if *any* rule protects it:

    * it is the latest version of its object (always kept);
    * ``keep_last_n`` -- it is among the N most recent versions
      (temporal order);
    * ``keep_days`` -- it is younger than the horizon;
    * ``keep_tagged`` -- it carries a tag (pinned releases survive any
      count/age pruning).

    A policy with neither ``keep_last_n`` nor ``keep_days`` set is
    *inactive*: it prunes nothing (``keep_tagged`` alone never dooms a
    version, it only protects).
    """

    keep_last_n: int | None = None
    keep_days: float | None = None
    keep_tagged: bool = True

    def __post_init__(self) -> None:
        if self.keep_last_n is not None and self.keep_last_n < 1:
            raise ValueError("keep_last_n must be >= 1 (the latest always stays)")
        if self.keep_days is not None and self.keep_days < 0:
            raise ValueError("keep_days must be >= 0")

    @property
    def active(self) -> bool:
        return self.keep_last_n is not None or self.keep_days is not None

    def to_state(self) -> tuple:
        return (self.keep_last_n, self.keep_days, self.keep_tagged)

    @classmethod
    def from_state(cls, state: tuple) -> "RetentionPolicy":
        keep_last_n, keep_days, keep_tagged = state
        return cls(keep_last_n, keep_days, keep_tagged)


def scope_key(scope: Any) -> str:
    """Normalize a retention scope to its catalog key.

    Accepts a ``@persistent`` class, a registered type name, an
    :class:`Oid`, or a bound ``Ref`` (anything with an ``oid``).
    Type scopes key as ``"type:<name>"``, object overrides as
    ``"oid:<value>"`` -- an override beats the type policy.
    """
    from repro.storage import serialization

    if isinstance(scope, str):
        return scope if scope.startswith(("type:", "oid:")) else f"type:{scope}"
    if isinstance(scope, type):
        name = serialization.registered_name(scope)
        if name is None:
            raise CatalogError(f"{scope!r} is not a registered persistent type")
        return f"type:{name}"
    if isinstance(scope, Oid):
        return f"oid:{scope.value}"
    oid = getattr(scope, "oid", None)
    if isinstance(oid, Oid):
        return f"oid:{oid.value}"
    raise TypeError(f"cannot derive a retention scope from {scope!r}")


def load_retention(catalog: Any) -> dict[str, RetentionPolicy]:
    """The retention table stored in the catalog (empty dict if unset)."""
    state = catalog.get_root(RETENTION_ROOT, ())
    return {key: RetentionPolicy.from_state(pol) for key, pol in state}


def save_retention(
    catalog: Any, table: dict[str, RetentionPolicy], log_op: Any
) -> None:
    state = tuple(sorted((key, pol.to_state()) for key, pol in table.items()))
    catalog.set_root(RETENTION_ROOT, state, log_op)


def load_tags(catalog: Any) -> dict[int, dict[int, str]]:
    """Version tags: oid value -> {serial -> tag}."""
    state = catalog.get_root(TAGS_ROOT, ())
    return {oid: dict(serials) for oid, serials in state}


def save_tags(catalog: Any, tags: dict[int, dict[int, str]], log_op: Any) -> None:
    state = tuple(
        sorted(
            (oid, tuple(sorted(serials.items())))
            for oid, serials in tags.items()
            if serials
        )
    )
    catalog.set_root(TAGS_ROOT, state, log_op)


@dataclass
class GCReport:
    """What one ``run_gc`` pass did (or would do, for a dry run)."""

    versions_examined: int = 0
    versions_deleted: int = 0
    objects_pruned: int = 0
    batches: int = 0
    blobs_unlinked: int = 0
    bytes_freed: int = 0
    #: Zero-ref candidates left behind: not yet provably unreachable
    #: (pinned snapshot, active transaction, in-doubt participant) or
    #: beyond this pass's batch limit.  A later pass retries them.
    candidates_remaining: int = 0
    dry_run: bool = False

    def merge_reclaim(self, unlinked: int, freed: int, remaining: int) -> None:
        self.blobs_unlinked += unlinked
        self.bytes_freed += freed
        self.candidates_remaining = remaining

    def render(self) -> str:
        verb = "would delete" if self.dry_run else "deleted"
        return (
            f"gc: {verb} {self.versions_deleted} version(s) of "
            f"{self.objects_pruned} object(s) in {self.batches} batch(es); "
            f"unlinked {self.blobs_unlinked} blob(s) / {self.bytes_freed} "
            f"byte(s); {self.candidates_remaining} candidate(s) remaining"
        )


def doomed_versions(
    db: "Database",
    oid: Oid,
    policy: RetentionPolicy,
    tags: dict[int, str],
    now: float,
) -> list[Vid]:
    """The versions of ``oid`` the policy displaces, oldest first.

    Pure selection -- no mutation.  The latest version is always kept;
    protection rules are a union (see :class:`RetentionPolicy`).
    """
    if not policy.active:
        return []
    graph = db.store.graph(oid)
    nodes = list(graph.walk_temporal())
    if len(nodes) <= 1:
        return []
    keep: set[int] = {nodes[-1].serial}  # the latest always survives
    if policy.keep_last_n is not None:
        keep.update(n.serial for n in nodes[-policy.keep_last_n:])
    if policy.keep_days is not None:
        horizon = now - policy.keep_days * 86400.0
        keep.update(n.serial for n in nodes if n.ctime >= horizon)
    if policy.keep_tagged:
        keep.update(tags.keys())
    return [Vid(oid, n.serial) for n in nodes if n.serial not in keep]


def collect(
    db: "Database",
    batch_limit: int = 64,
    now: float | None = None,
    dry_run: bool = False,
    reclaim: bool = True,
) -> GCReport:
    """One incremental GC pass: apply retention, then reclaim blobs.

    Retention deletions run through the ordinary transactional delete
    path in batches of at most ``batch_limit`` versions -- each batch is
    one transaction, so writers interleave between batches and a crash
    loses at most one unacknowledged batch (never an acknowledged one).
    """
    if now is None:
        now = time.time()
    report = GCReport(dry_run=dry_run)
    policies = load_retention(db.catalog)
    if policies:
        all_tags = load_tags(db.catalog)
        doomed: list[Vid] = []
        # Plan against a pinned snapshot: a consistent cut of every graph,
        # taken without blocking writers.
        with db.snapshot() as snap:
            for ref in snap.all_objects():
                oid = ref.oid
                pol = policies.get(f"oid:{oid.value}")
                if pol is None:
                    pol = policies.get(f"type:{snap.type_name(oid)}")
                if pol is None or not pol.active:
                    continue
                report.versions_examined += db.version_count(oid)
                victims = doomed_versions(
                    db, oid, pol, all_tags.get(oid.value, {}), now
                )
                if victims:
                    report.objects_pruned += 1
                    doomed.extend(victims)
        for start in range(0, len(doomed), batch_limit):
            batch = doomed[start : start + batch_limit]
            report.batches += 1
            if dry_run:
                report.versions_deleted += len(batch)
                continue
            with db.transaction():
                for vid in batch:
                    # Replanned state may have moved underneath us (a
                    # concurrent writer pruned or deleted); skip stale
                    # victims rather than fail the batch.
                    if not db.version_exists(vid):
                        continue
                    if db.latest_vid(vid.oid) == vid:
                        continue  # became the latest: now protected
                    db.pdelete(vid)
                    report.versions_deleted += 1
    if reclaim:
        unlinked, freed, remaining = db.reclaim_blobs(
            limit=batch_limit, dry_run=dry_run
        )
        report.merge_reclaim(unlinked, freed, remaining)
    return report
