"""Triggers: O++'s active facility, the paper's substitute for built-in
change notification.

Paper §2: "we decided against a built-in change notification facility [13]
because users can implement such a facility using O++ triggers."  O++
triggers are predicates attached to objects with an associated action; they
come in *once-only* and *perpetual* flavours (a perpetual trigger re-arms
itself after firing).  This module reproduces that facility over the
version store's event stream, and :mod:`repro.policies.notification` then
builds the change-notification policy on top -- demonstrating the paper's
primitives-not-policies claim.

A trigger watches either one object (by :class:`~repro.core.identity.Oid`)
or a whole event kind, optionally filtered by a condition over
``(event, oid, vid)``.  Events are the store's: ``create``,
``newversion``, ``update``, ``delete_version``, ``delete_object``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.identity import Oid, Vid

#: Once-only triggers deactivate after the first firing (O++ `once`).
ONCE = "once"
#: Perpetual triggers re-arm after every firing (O++ `perpetual`).
PERPETUAL = "perpetual"

Condition = Callable[[str, Oid, "Vid | None"], bool]
Action = Callable[[str, Oid, "Vid | None"], Any]
TimeoutAction = Callable[[], Any]


@dataclass
class Trigger:
    """One registered trigger."""

    trigger_id: int
    events: frozenset[str]
    oid: Oid | None
    condition: Condition | None
    action: Action
    mode: str
    #: Restrict to one cluster (stable type name).  Type-scoped triggers
    #: cannot fire for ``delete_object`` -- the type is no longer
    #: resolvable once the object is gone.
    type_name: str | None = None
    active: bool = True
    fire_count: int = 0
    #: Timed triggers (O++'s ``within T`` form): monotonic deadline after
    #: which the trigger disarms, and the action to run when it expires
    #: without ever having fired.
    deadline: float | None = None
    on_timeout: TimeoutAction | None = None
    timed_out: bool = False
    _log: list[tuple[str, Oid, Vid | None]] = field(default_factory=list)

    def matches(self, event: str, oid: Oid, vid: Vid | None) -> bool:
        """True if this trigger should fire for the event."""
        if not self.active:
            return False
        if self.events and event not in self.events:
            return False
        if self.oid is not None and oid != self.oid:
            return False
        if self.condition is not None and not self.condition(event, oid, vid):
            return False
        return True

    @property
    def firings(self) -> list[tuple[str, Oid, Vid | None]]:
        """Every event this trigger fired for (copy)."""
        return list(self._log)


class TriggerManager:
    """Registry and dispatcher for triggers, fed by store events.

    Attach with ``store.add_observer(manager.dispatch)`` (the database
    facade does this).  Actions run synchronously in the mutating call --
    the O++ semantics -- so an action that raises propagates to the caller.
    """

    def __init__(self, type_resolver: Callable[[Oid], str] | None = None) -> None:
        self._triggers: dict[int, Trigger] = {}
        self._ids = itertools.count(1)
        #: Resolves an Oid to its stable type name (wired by the database);
        #: required only for type-scoped triggers.
        self.type_resolver = type_resolver
        #: Re-entrancy guard depth: actions that mutate the store produce
        #: nested dispatches; we allow them but track depth for tests.
        self._depth = 0

    def register(
        self,
        action: Action,
        events: str | list[str] | None = None,
        oid: Oid | None = None,
        condition: Condition | None = None,
        mode: str = PERPETUAL,
        within: float | None = None,
        on_timeout: TimeoutAction | None = None,
        type_name: str | None = None,
    ) -> Trigger:
        """Register a trigger and return its handle.

        ``events`` limits the event kinds (None = all); ``oid`` limits to
        one object; ``condition`` is an arbitrary predicate; ``mode`` is
        :data:`ONCE` or :data:`PERPETUAL`.

        ``within`` makes the trigger *timed* (O++'s ``within T`` form): if
        it has not fired ``within`` seconds of registration it disarms,
        running ``on_timeout`` (if given).  Expiry is detected lazily --
        at the next event dispatch or an explicit :meth:`reap_expired`.
        """
        if mode not in (ONCE, PERPETUAL):
            raise ValueError(f"unknown trigger mode {mode!r}")
        if isinstance(events, str):
            events = [events]
        if within is not None and within < 0:
            raise ValueError("'within' must be non-negative")
        trigger = Trigger(
            trigger_id=next(self._ids),
            events=frozenset(events or ()),
            oid=oid,
            condition=condition,
            action=action,
            mode=mode,
            type_name=type_name,
            deadline=None if within is None else self._now() + within,
        )
        trigger.on_timeout = on_timeout
        self._triggers[trigger.trigger_id] = trigger
        return trigger

    def _now(self) -> float:
        import time

        return time.monotonic()

    def reap_expired(self) -> int:
        """Disarm timed triggers past their deadline; returns the count.

        Each expired trigger's ``on_timeout`` runs once.  Called
        automatically before every event dispatch.
        """
        now = self._now()
        expired = 0
        for trigger in list(self._triggers.values()):
            if (
                trigger.active
                and trigger.deadline is not None
                and now >= trigger.deadline
            ):
                trigger.active = False
                trigger.timed_out = True
                expired += 1
                if trigger.on_timeout is not None:
                    trigger.on_timeout()
        return expired

    def deactivate(self, trigger: Trigger | int) -> None:
        """Disarm a trigger (it remains registered, with its history)."""
        trigger_id = trigger if isinstance(trigger, int) else trigger.trigger_id
        self._triggers[trigger_id].active = False

    def remove(self, trigger: Trigger | int) -> None:
        """Unregister a trigger entirely."""
        trigger_id = trigger if isinstance(trigger, int) else trigger.trigger_id
        del self._triggers[trigger_id]

    def dispatch(self, event: str, oid: Oid, vid: Vid | None) -> None:
        """Deliver one store event to every matching trigger (observer hook)."""
        self.reap_expired()
        self._depth += 1
        try:
            for trigger in list(self._triggers.values()):
                if trigger.type_name is not None:
                    if self.type_resolver is None or event == "delete_object":
                        continue
                    try:
                        actual = self.type_resolver(oid)
                    except Exception:
                        continue
                    if actual != trigger.type_name:
                        continue
                if trigger.matches(event, oid, vid):
                    trigger.fire_count += 1
                    trigger._log.append((event, oid, vid))
                    trigger.deadline = None  # a timed trigger met its deadline
                    if trigger.mode == ONCE:
                        trigger.active = False
                    trigger.action(event, oid, vid)
        finally:
            self._depth -= 1

    def triggers(self) -> list[Trigger]:
        """All registered triggers (copy)."""
        return list(self._triggers.values())

    def active_count(self) -> int:
        """Number of armed triggers."""
        return sum(1 for t in self._triggers.values() if t.active)
