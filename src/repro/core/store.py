"""The version store: ``pnew``, ``newversion``, ``pdelete``, dereferencing.

This is the paper's contribution, assembled over the persistence library:

* **pnew** (paper §2/§4.1): allocate a persistent object; it gets an object
  id and an initial version.  Versioning is *orthogonal to type* -- any
  object created with ``pnew`` can later be versioned, nothing is declared.
* **newversion(id)** (paper §4.2): create a new version *derived from* the
  denoted version.  On an object id the base is the latest version; on a
  version id it is that specific version.  The new version starts as a copy
  of its base, becomes the object's temporally latest version, and the
  derived-from edge is recorded.  Creating a version changes no other
  object (small changes have small impact -- no percolation, paper §3).
* **pdelete** (paper §4.4): on an object id, delete the object and all its
  versions; on a version id, delete just that version, splicing the
  temporal chain and re-parenting derivation children.  Deleting the latest
  version makes the temporally previous version the new latest.
* **dereferencing** (paper §4.3): an object id denotes the latest version
  (generic reference); a version id denotes one version (specific
  reference).

Version payloads are stored either as full copies or as deltas against the
derived-from parent (paper §3 cites SCCS/RCS deltas as the intended use of
the derived-from relationship).  The policy is per-store, with a keyframe
interval bounding delta-chain length; experiment E5 measures the trade-off.

All durable state lives in heap records, so transactional logging is
inherited from the heap layer through the ``log_op`` callback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import (
    DanglingReferenceError,
    UnknownObjectError,
    UnknownVersionError,
    VersionError,
)
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef, unwrap_ids
from repro.core.vgraph import VersionGraph
from repro.storage import serialization
from repro.storage.catalog import Catalog
from repro.storage.delta import apply_delta, compute_delta
from repro.storage.heap import HeapFile, LogOp, Rid

#: Heap names used by the store.
OBJECTS_HEAP = "ode.objects"
VERSIONS_HEAP = "ode.versions"
CLUSTERS_HEAP = "ode.clusters"

#: Payload storage kinds (first element of a node's ``data`` tuple).
_FULL = "F"
_DELTA = "D"

#: Event kinds delivered to observers (the trigger facility subscribes).
EV_CREATE = "create"
EV_NEWVERSION = "newversion"
EV_UPDATE = "update"
EV_DELETE_VERSION = "delete_version"
EV_DELETE_OBJECT = "delete_object"

Observer = Callable[[str, Oid, Vid | None], None]


@dataclass(frozen=True)
class StoragePolicy:
    """How version payloads are stored.

    ``kind`` is ``"full"`` (every version is a full copy) or ``"delta"``
    (a version stores a delta against its derived-from parent).  With
    deltas, every ``keyframe_interval``-th version along a derivation path
    is stored full, bounding materialization cost.
    """

    kind: str = "full"
    keyframe_interval: int = 16

    def __post_init__(self) -> None:
        if self.kind not in ("full", "delta"):
            raise ValueError(f"unknown storage policy kind {self.kind!r}")
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")


class _Entry:
    """In-memory object-table entry for one persistent object."""

    __slots__ = ("oid", "type_name", "graph", "rid", "cluster_rid")

    def __init__(
        self,
        oid: Oid,
        type_name: str,
        graph: VersionGraph,
        rid: Rid | None,
        cluster_rid: Rid | None,
    ) -> None:
        self.oid = oid
        self.type_name = type_name
        self.graph = graph
        self.rid = rid
        self.cluster_rid = cluster_rid


class VersionStore:
    """Versioned persistent objects over the heap layer.

    One store per database.  The object table (oid -> entry) is cached in
    memory and written through to the ``ode.objects`` heap; version
    payloads live in ``ode.versions``; per-type cluster membership in
    ``ode.clusters``.
    """

    def __init__(self, catalog: Catalog, policy: StoragePolicy | None = None) -> None:
        self._catalog = catalog
        self._policy = policy or StoragePolicy()
        self._objects: HeapFile = catalog.ensure_heap(OBJECTS_HEAP)
        self._versions: HeapFile = catalog.ensure_heap(VERSIONS_HEAP)
        self._clusters: HeapFile = catalog.ensure_heap(CLUSTERS_HEAP)
        self._table: dict[Oid, _Entry] = {}
        self._by_type: dict[str, set[Oid]] = {}
        self._bytes_cache: dict[Vid, bytes] = {}
        self._observers: list[Observer] = []
        self._load()

    @property
    def policy(self) -> StoragePolicy:
        """The store's payload storage policy."""
        return self._policy

    @property
    def catalog(self) -> Catalog:
        """The catalog this store was opened against."""
        return self._catalog

    # -- loading / reloading -------------------------------------------------

    def _load(self) -> None:
        self._table.clear()
        self._by_type.clear()
        self._bytes_cache.clear()
        cluster_rids: dict[Oid, Rid] = {}
        for rid, payload in self._clusters.scan():
            type_name, oid = serialization.decode(payload)
            cluster_rids[oid] = rid
        for rid, payload in self._objects.scan():
            oid, type_name, graph_state = serialization.decode(payload)
            graph = VersionGraph.from_state(graph_state)
            entry = _Entry(oid, type_name, graph, rid, cluster_rids.get(oid))
            self._table[oid] = entry
            self._by_type.setdefault(type_name, set()).add(oid)

    def reload(self) -> None:
        """Rebuild all in-memory state from the heaps.

        Called after a transaction abort: the WAL undo restored the heap
        records, and this brings the caches back in line.
        """
        self._load()

    # -- observers (trigger facility hooks in here) ---------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register a callback invoked after every store mutation."""
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        """Unregister a previously added observer."""
        self._observers.remove(observer)

    def _notify(self, event: str, oid: Oid, vid: Vid | None) -> None:
        for observer in list(self._observers):
            observer(event, oid, vid)

    # -- entry persistence -----------------------------------------------------

    def _save_entry(self, entry: _Entry, log_op: LogOp | None) -> None:
        payload = serialization.encode(
            (entry.oid, entry.type_name, entry.graph.to_state())
        )
        if entry.rid is None:
            entry.rid = self._objects.insert(payload, log_op)
        else:
            self._objects.update(entry.rid, payload, log_op)

    def _entry(self, oid: Oid) -> _Entry:
        entry = self._table.get(oid)
        if entry is None:
            raise UnknownObjectError(f"no persistent object {oid!r}")
        return entry

    # -- payload storage ---------------------------------------------------------

    def _store_payload(
        self,
        entry: _Entry,
        serial: int,
        content: bytes,
        base_serial: int | None,
        log_op: LogOp | None,
    ) -> tuple:
        """Write ``content`` for a (new) version; returns the node ``data``."""
        use_delta = (
            self._policy.kind == "delta"
            and base_serial is not None
            and self._depth_since_keyframe(entry, base_serial) + 1
            < self._policy.keyframe_interval
        )
        if use_delta:
            base_bytes = self._version_bytes(entry, base_serial)
            delta = compute_delta(base_bytes, content)
            if len(delta) < len(content):
                rid = self._versions.insert(delta, log_op)
                return (_DELTA, rid.page_id, rid.slot)
        rid = self._versions.insert(content, log_op)
        return (_FULL, rid.page_id, rid.slot)

    def _depth_since_keyframe(self, entry: _Entry, serial: int) -> int:
        """Delta-chain length from ``serial`` back to the nearest full copy."""
        depth = 0
        graph = entry.graph
        current: int | None = serial
        while current is not None:
            node = graph.node(current)
            if node.data[0] == _FULL:
                return depth
            depth += 1
            current = node.dprev
        raise VersionError(f"delta chain of {entry.oid!r} has no full-copy root")

    def _version_bytes(self, entry: _Entry, serial: int) -> bytes:
        """Materialized payload bytes for one version (cached)."""
        vid = Vid(entry.oid, serial)
        cached = self._bytes_cache.get(vid)
        if cached is not None:
            return cached
        graph = entry.graph
        # Walk back to the nearest full copy, then apply deltas forward.
        chain: list[int] = []
        current: int | None = serial
        while True:
            if current is None:
                raise VersionError(f"delta chain of {entry.oid!r} has no full-copy root")
            node = graph.node(current)
            chain.append(current)
            if node.data[0] == _FULL:
                break
            current = node.dprev
        chain.reverse()
        root = chain[0]
        content = self._read_record(graph.node(root).data)
        for step in chain[1:]:
            content = apply_delta(content, self._read_record(graph.node(step).data))
        while len(self._bytes_cache) >= 4096:
            # Evict the oldest entry only; clearing wholesale would throw
            # away the entire hot set on every overflow.
            self._bytes_cache.pop(next(iter(self._bytes_cache)))
        self._bytes_cache[vid] = content
        return content

    def _read_record(self, data: tuple) -> bytes:
        _kind, page_id, slot = data
        return self._versions.read(Rid(page_id, slot))

    def _rewrite_payload(
        self, entry: _Entry, serial: int, content: bytes, log_op: LogOp | None
    ) -> None:
        """Replace the stored payload of an existing version with ``content``.

        Keeps the node's storage kind consistent: a delta-stored node is
        re-encoded against its current derivation parent, and the deltas of
        any delta-stored children are recomputed (their *content* must not
        change when their base does).
        """
        graph = entry.graph
        node = graph.node(serial)
        # Materialize delta children BEFORE the base changes.
        delta_children = [
            child for child in node.children if graph.node(child).data[0] == _DELTA
        ]
        child_contents = {
            child: self._version_bytes(entry, child) for child in delta_children
        }
        kind, page_id, slot = node.data
        if kind == _DELTA:
            assert node.dprev is not None
            base_bytes = self._version_bytes(entry, node.dprev)
            stored = compute_delta(base_bytes, content)
            if len(stored) >= len(content):
                stored = content
                node.data = (_FULL, page_id, slot)
        else:
            stored = content
        self._versions.update(Rid(page_id, slot), stored, log_op)
        self._bytes_cache[Vid(entry.oid, serial)] = content
        for child, child_content in child_contents.items():
            child_node = graph.node(child)
            _ckind, cpage, cslot = child_node.data
            new_delta = compute_delta(content, child_content)
            if len(new_delta) >= len(child_content):
                child_node.data = (_FULL, cpage, cslot)
                self._versions.update(Rid(cpage, cslot), child_content, log_op)
            else:
                self._versions.update(Rid(cpage, cslot), new_delta, log_op)
            self._bytes_cache[Vid(entry.oid, child)] = child_content

    # -- public kernel operations ---------------------------------------------

    def pnew(self, obj: Any, log_op: LogOp | None = None) -> Ref:
        """Create a persistent object; returns its generic reference.

        The object's state is captured immediately (via the stable codec);
        the live ``obj`` is not kept -- all later access goes through the
        returned reference.  The object starts with one version.
        """
        type_name = serialization.registered_name(type(obj))
        if type_name is None:
            # Version orthogonality in practice: pnew accepts any object.
            # Auto-register under the qualified name, uniquified if a
            # different class (e.g. a redefined local class) already took it.
            base_name = f"{type(obj).__module__}.{type(obj).__qualname__}"
            type_name = base_name
            suffix = 1
            while True:
                try:
                    serialization.register_type(type(obj), type_name)
                    break
                except serialization.SerializationError:
                    suffix += 1
                    type_name = f"{base_name}#{suffix}"
        oid = Oid(self._catalog.next_value("ode.oid", log_op))
        graph = VersionGraph()
        entry = _Entry(oid, type_name, graph, None, None)
        content = self._encode_object(obj)
        serial = 1
        data = self._store_payload(entry, serial, content, None, log_op)
        graph.create(serial, None, time.time(), data)
        self._save_entry(entry, log_op)
        cluster_payload = serialization.encode((type_name, oid))
        entry.cluster_rid = self._clusters.insert(cluster_payload, log_op)
        self._table[oid] = entry
        self._by_type.setdefault(type_name, set()).add(oid)
        self._bytes_cache[Vid(oid, serial)] = content
        self._notify(EV_CREATE, oid, Vid(oid, serial))
        return Ref(self, oid)

    def newversion(self, target: Ref | VersionRef | Oid | Vid, log_op: LogOp | None = None) -> VersionRef:
        """Create a new version derived from ``target`` (paper §4.2).

        With an object id / generic reference, the base is the latest
        version; with a version id / specific reference, the base is that
        version -- deriving from a non-latest version is what creates
        variants (alternatives).  The new version starts with the base's
        contents and becomes the object's latest.
        """
        base_vid = self._resolve(target)
        entry = self._entry(base_vid.oid)
        graph = entry.graph
        base_serial = base_vid.serial
        content = self._version_bytes(entry, base_serial)
        serial = graph.max_serial + 1
        data = self._store_payload(entry, serial, content, base_serial, log_op)
        graph.create(serial, base_serial, time.time(), data)
        self._save_entry(entry, log_op)
        vid = Vid(entry.oid, serial)
        self._bytes_cache[vid] = content
        self._notify(EV_NEWVERSION, entry.oid, vid)
        return VersionRef(self, vid)

    def pdelete(self, target: Ref | VersionRef | Oid | Vid, log_op: LogOp | None = None) -> None:
        """Delete an object (all versions) or one version (paper §4.4)."""
        if isinstance(target, (Ref, Oid)):
            oid = target.oid if isinstance(target, Ref) else target
            self._delete_object(oid, log_op)
        else:
            vid = target.vid if isinstance(target, VersionRef) else target
            self._delete_version(vid, log_op)

    def _delete_object(self, oid: Oid, log_op: LogOp | None) -> None:
        entry = self._entry(oid)
        for node in list(entry.graph.walk_temporal()):
            _kind, page_id, slot = node.data
            self._versions.delete(Rid(page_id, slot), log_op)
            self._bytes_cache.pop(Vid(oid, node.serial), None)
        if entry.rid is not None:
            self._objects.delete(entry.rid, log_op)
        if entry.cluster_rid is not None:
            self._clusters.delete(entry.cluster_rid, log_op)
        del self._table[oid]
        self._by_type[entry.type_name].discard(oid)
        self._notify(EV_DELETE_OBJECT, oid, None)

    def _delete_version(self, vid: Vid, log_op: LogOp | None) -> None:
        entry = self._entry(vid.oid)
        graph = entry.graph
        if vid.serial not in graph:
            raise UnknownVersionError(f"no live version {vid!r}")
        if len(graph) == 1:
            # Deleting the only version deletes the object.
            self._delete_object(vid.oid, log_op)
            return
        node = graph.node(vid.serial)
        # Children stored as deltas against this version must be re-based
        # before the splice: materialize them now.
        delta_children = [
            child for child in node.children if graph.node(child).data[0] == _DELTA
        ]
        child_contents = {
            child: self._version_bytes(entry, child) for child in delta_children
        }
        removed = graph.remove(vid.serial)
        _kind, page_id, slot = removed.data
        self._versions.delete(Rid(page_id, slot), log_op)
        self._bytes_cache.pop(vid, None)
        for child, child_content in child_contents.items():
            child_node = graph.node(child)
            _ckind, cpage, cslot = child_node.data
            if child_node.dprev is None:
                # Re-parented to nothing: must become a full copy.
                child_node.data = (_FULL, cpage, cslot)
                self._versions.update(Rid(cpage, cslot), child_content, log_op)
            else:
                base = self._version_bytes(entry, child_node.dprev)
                new_delta = compute_delta(base, child_content)
                if len(new_delta) >= len(child_content):
                    child_node.data = (_FULL, cpage, cslot)
                    self._versions.update(Rid(cpage, cslot), child_content, log_op)
                else:
                    self._versions.update(Rid(cpage, cslot), new_delta, log_op)
            self._bytes_cache[Vid(entry.oid, child)] = child_content
        self._save_entry(entry, log_op)
        self._notify(EV_DELETE_VERSION, vid.oid, vid)

    # -- dereferencing (used by Ref / VersionRef) --------------------------------

    def _resolve(self, target: Ref | VersionRef | Oid | Vid) -> Vid:
        if isinstance(target, Ref):
            return self.latest_vid(target.oid)
        if isinstance(target, Oid):
            return self.latest_vid(target)
        if isinstance(target, VersionRef):
            return target.vid
        if isinstance(target, Vid):
            return target
        raise TypeError(f"expected a reference or id, got {type(target).__qualname__}")

    def latest_vid(self, oid: Oid) -> Vid:
        """The version id an object id currently denotes (paper §4.3)."""
        entry = self._table.get(oid)
        if entry is None:
            raise DanglingReferenceError(f"object {oid!r} no longer exists")
        serial = entry.graph.latest()
        assert serial is not None  # empty graphs are deleted eagerly
        return Vid(oid, serial)

    def materialize(self, vid: Vid) -> Any:
        """Decode and return a fresh copy of the version's object."""
        entry = self._table.get(vid.oid)
        if entry is None:
            raise DanglingReferenceError(f"object {vid.oid!r} no longer exists")
        if vid.serial not in entry.graph:
            raise DanglingReferenceError(f"version {vid!r} no longer exists")
        return serialization.decode(self._version_bytes(entry, vid.serial))

    def write_version(self, vid: Vid, obj: Any, log_op: LogOp | None = None) -> None:
        """Update a version's contents **in place** (no new version).

        Paper §4.2 separates mutating a version from creating one:
        ``newversion`` is always explicit.
        """
        entry = self._table.get(vid.oid)
        if entry is None:
            raise DanglingReferenceError(f"object {vid.oid!r} no longer exists")
        if vid.serial not in entry.graph:
            raise DanglingReferenceError(f"version {vid!r} no longer exists")
        content = self._encode_object(obj)
        self._rewrite_payload(entry, vid.serial, content, log_op)
        self._notify(EV_UPDATE, vid.oid, vid)

    def _encode_object(self, obj: Any) -> bytes:
        # The codec unwraps nested Refs/VersionRefs to ids by itself (see
        # serialization.install_reference_unwrapper); unwrap_ids handles the
        # case where obj *is* a bare container of references.
        return serialization.encode(unwrap_ids(obj))

    # -- existence & metadata ----------------------------------------------------

    def object_exists(self, oid: Oid) -> bool:
        """True while the object has at least one live version."""
        return oid in self._table

    def version_exists(self, vid: Vid) -> bool:
        """True while this specific version is live."""
        entry = self._table.get(vid.oid)
        return entry is not None and vid.serial in entry.graph

    def type_name(self, oid: Oid) -> str:
        """Stable type name of the object's class."""
        return self._entry(oid).type_name

    def graph(self, oid: Oid) -> VersionGraph:
        """The object's version graph (live view -- do not mutate)."""
        return self._entry(oid).graph

    # -- traversal surface (paper §4: Dprevious/Tprevious and duals) --------------

    def dprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The version ``vref`` was derived from, or None for an initial version."""
        vid = self._resolve(vref)
        serial = self._entry(vid.oid).graph.dprevious(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def dnext(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """Versions derived from ``vref`` (its revisions and variants)."""
        vid = self._resolve(vref)
        return [
            VersionRef(self, Vid(vid.oid, s))
            for s in self._entry(vid.oid).graph.dnext(vid.serial)
        ]

    def tprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally preceding version, or None for the oldest."""
        vid = self._resolve(vref)
        serial = self._entry(vid.oid).graph.tprevious(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def tnext(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally following version, or None for the latest."""
        vid = self._resolve(vref)
        serial = self._entry(vid.oid).graph.tnext(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def history(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """The derivation path of ``vref``, newest first (paper §4.3)."""
        vid = self._resolve(vref)
        return [
            VersionRef(self, Vid(vid.oid, s))
            for s in self._entry(vid.oid).graph.history(vid.serial)
        ]

    def version_as_of(self, target: Ref | Oid, timestamp: float) -> VersionRef | None:
        """The version that was latest at wall-clock ``timestamp``.

        Paper §3 motivates temporal order with historical databases "that
        must access the past states of the database" and "supporting time
        in databases" [30]: every version records its creation time, so
        the state as of any instant is the newest version created at or
        before it.  Returns None when the object did not exist yet.
        (Versions deleted since then are gone -- pdelete is a real delete,
        not a logical one.)
        """
        oid = target.oid if isinstance(target, Ref) else target
        graph = self._entry(oid).graph
        best: int | None = None
        for node in graph.walk_temporal():
            if node.ctime <= timestamp:
                best = node.serial
            else:
                break
        return None if best is None else VersionRef(self, Vid(oid, best))

    def versions(self, target: Ref | Oid) -> list[VersionRef]:
        """All live versions of an object, temporal order (oldest first)."""
        oid = target.oid if isinstance(target, Ref) else target
        return [
            VersionRef(self, Vid(oid, s)) for s in self._entry(oid).graph.serials()
        ]

    def leaves(self, target: Ref | Oid) -> list[VersionRef]:
        """The up-to-date version of every alternative (derivation leaves)."""
        oid = target.oid if isinstance(target, Ref) else target
        return [VersionRef(self, Vid(oid, s)) for s in self._entry(oid).graph.leaves()]

    def alternatives(self, target: Ref | Oid) -> list[list[VersionRef]]:
        """Every root-to-leaf derivation path (paper §4: alternative designs)."""
        oid = target.oid if isinstance(target, Ref) else target
        return [
            [VersionRef(self, Vid(oid, s)) for s in path]
            for path in self._entry(oid).graph.alternatives()
        ]

    def version_count(self, target: Ref | Oid) -> int:
        """Number of live versions of the object."""
        oid = target.oid if isinstance(target, Ref) else target
        return len(self._entry(oid).graph)

    # -- clusters (per-type extents, used by the query layer) ----------------------

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        """Generic references to every object of the given type.

        Ode clusters objects by type; the query layer iterates these.
        """
        if isinstance(type_or_name, str):
            name = type_or_name
        else:
            resolved = serialization.registered_name(type_or_name)
            name = resolved if resolved is not None else (
                f"{type_or_name.__module__}.{type_or_name.__qualname__}"
            )
        oids = sorted(self._by_type.get(name, set()))
        return [Ref(self, oid) for oid in oids]

    def cluster_names(self) -> list[str]:
        """Type names with at least one live object."""
        return sorted(name for name, oids in self._by_type.items() if oids)

    def all_objects(self) -> Iterator[Ref]:
        """Generic references to every live object, oid order."""
        for oid in sorted(self._table):
            yield Ref(self, oid)

    def object_count(self) -> int:
        """Number of live persistent objects."""
        return len(self._table)
