"""The version store: ``pnew``, ``newversion``, ``pdelete``, dereferencing.

This is the paper's contribution, assembled over the persistence library:

* **pnew** (paper §2/§4.1): allocate a persistent object; it gets an object
  id and an initial version.  Versioning is *orthogonal to type* -- any
  object created with ``pnew`` can later be versioned, nothing is declared.
* **newversion(id)** (paper §4.2): create a new version *derived from* the
  denoted version.  On an object id the base is the latest version; on a
  version id it is that specific version.  The new version starts as a copy
  of its base, becomes the object's temporally latest version, and the
  derived-from edge is recorded.  Creating a version changes no other
  object (small changes have small impact -- no percolation, paper §3).
* **pdelete** (paper §4.4): on an object id, delete the object and all its
  versions; on a version id, delete just that version, splicing the
  temporal chain and re-parenting derivation children.  Deleting the latest
  version makes the temporally previous version the new latest.
* **dereferencing** (paper §4.3): an object id denotes the latest version
  (generic reference); a version id denotes one version (specific
  reference).

Version payloads are stored either as full copies or as deltas against the
derived-from parent (paper §3 cites SCCS/RCS deltas as the intended use of
the derived-from relationship).  The policy is per-store, with a keyframe
interval bounding delta-chain length; experiment E5 measures the trade-off.

All durable state lives in heap records, so transactional logging is
inherited from the heap layer through the ``log_op`` callback.
"""

from __future__ import annotations

import inspect
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import (
    BlobError,
    DanglingReferenceError,
    UnknownObjectError,
    UnknownVersionError,
    VersionError,
)
from repro.core.cache import (
    DEFAULT_BYTES_BUDGET,
    DEFAULT_DECODED_ENTRIES,
    READ_MISS,
    BudgetedLRU,
    CacheStats,
)
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef, unwrap_ids
from repro.core.snapshot import Snapshot, SnapshotEntry, SnapshotRegistry
from repro.core.vgraph import VersionGraph
from repro.storage import blobs as blobstore
from repro.storage import serialization
from repro.storage.blobs import BlobStore
from repro.storage.catalog import Catalog
from repro.storage.delta import apply_delta, compute_delta
from repro.storage.heap import HeapFile, LogOp, Rid
from repro.verify import hooks

#: Heap names used by the store.
OBJECTS_HEAP = "ode.objects"
VERSIONS_HEAP = "ode.versions"
CLUSTERS_HEAP = "ode.clusters"
#: Blob refcount index: ``(key, refcount, size)`` records, one per live
#: content key.  Updated through the same ``log_op`` as the version record
#: that references the blob, so refcounts commit, abort, and replay
#: together with the references themselves.
BLOBS_HEAP = "ode.blobs"

#: Payload storage kinds (first element of a node's ``data`` tuple).
_FULL = "F"
_DELTA = "D"

#: Event kinds delivered to observers (the trigger facility subscribes).
EV_CREATE = "create"
EV_NEWVERSION = "newversion"
EV_UPDATE = "update"
EV_DELETE_VERSION = "delete_version"
EV_DELETE_OBJECT = "delete_object"

Observer = Callable[[str, Oid, Vid | None], None]

# READ_MISS (re-exported from repro.core.cache) is the sentinel
# :meth:`VersionStore.read_attr` returns when the fast path cannot serve
# the attribute and the caller must materialize a fresh copy.

#: Value types that may be returned straight from a shared cached decode:
#: immutable scalars, plus ids (the pointer layer re-wraps them into fresh
#: Ref/VersionRef objects) and containers the pointer layer copies anyway.
_SHAREABLE_TYPES = frozenset(
    {type(None), bool, int, float, str, bytes, Oid, Vid}
)


def _is_shareable(value: Any) -> bool:
    """True when handing ``value`` out cannot let the caller mutate the
    cached decoded object it came from (see :meth:`VersionStore.read_attr`)."""
    if type(value) in _SHAREABLE_TYPES:
        return True
    t = type(value)
    if t in (list, tuple, set, frozenset):
        return all(_is_shareable(v) for v in value)
    if t is dict:
        return all(
            _is_shareable(k) and _is_shareable(v) for k, v in value.items()
        )
    return False


@dataclass(frozen=True)
class StoragePolicy:
    """How version payloads are stored.

    ``kind`` is ``"full"`` (every version is a full copy) or ``"delta"``
    (a version stores a delta against its derived-from parent).  With
    deltas, every ``keyframe_interval``-th version along a derivation path
    is stored full, bounding materialization cost.
    """

    kind: str = "full"
    keyframe_interval: int = 16

    def __post_init__(self) -> None:
        if self.kind not in ("full", "delta"):
            raise ValueError(f"unknown storage policy kind {self.kind!r}")
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")


class _Entry:
    """In-memory object-table entry for one persistent object."""

    __slots__ = (
        "oid",
        "type_name",
        "graph",
        "rid",
        "cluster_rid",
        "latest_vid",
        "graph_shared",
    )

    def __init__(
        self,
        oid: Oid,
        type_name: str,
        graph: VersionGraph,
        rid: Rid | None,
        cluster_rid: Rid | None,
    ) -> None:
        self.oid = oid
        self.type_name = type_name
        self.graph = graph
        self.rid = rid
        self.cluster_rid = cluster_rid
        #: Memoized Vid of the temporally latest version (generic-reference
        #: fast path); None = recompute.  Invalidated by newversion/pdelete.
        self.latest_vid: Vid | None = None
        #: True once the graph was published into the snapshot committed
        #: table: pinned readers may be traversing it, so any mutation must
        #: clone first (see :meth:`VersionStore._mutable_graph`).
        self.graph_shared = False


class _BlobRef:
    """In-memory image of one ``ode.blobs`` index record."""

    __slots__ = ("refcount", "size", "rid")

    def __init__(self, refcount: int, size: int, rid: Rid) -> None:
        self.refcount = refcount
        self.size = size
        self.rid = rid


class VersionStore:
    """Versioned persistent objects over the heap layer.

    One store per database.  The object table (oid -> entry) is cached in
    memory and written through to the ``ode.objects`` heap; version
    payloads live in ``ode.versions``; per-type cluster membership in
    ``ode.clusters``.

    Version-heap records are content-addressed **blob references**: the
    payload bytes (full copy or delta body) live once in the blob store,
    keyed by their sha256, and the heap record is a fixed-size pointer.
    The ``ode.blobs`` heap holds the refcount per key; a key whose
    refcount reaches zero becomes a GC candidate stamped with the current
    snapshot epoch (see ``repro.core.gc`` for the reclaim protocol).
    """

    def __init__(
        self,
        catalog: Catalog,
        policy: StoragePolicy | None = None,
        cache_budget: int = DEFAULT_BYTES_BUDGET,
        decoded_entries: int = DEFAULT_DECODED_ENTRIES,
        oid_stride: int = 1,
        oid_residue: int = 0,
        blob_root: str | os.PathLike[str] | None = None,
    ) -> None:
        self._catalog = catalog
        self._policy = policy or StoragePolicy()
        #: Oid allocation slice: this store only hands out oids congruent
        #: to ``oid_residue`` modulo ``oid_stride``.  Shard N of a sharded
        #: deployment gets (stride=nshards, residue=N), so placement can
        #: locate any oid's home shard arithmetically.
        self._oid_stride = oid_stride
        self._oid_residue = oid_residue
        self._objects: HeapFile = catalog.ensure_heap(OBJECTS_HEAP)
        self._versions: HeapFile = catalog.ensure_heap(VERSIONS_HEAP)
        self._clusters: HeapFile = catalog.ensure_heap(CLUSTERS_HEAP)
        self._blobs_heap: HeapFile = catalog.ensure_heap(BLOBS_HEAP)
        if blob_root is None:
            blob_root = os.path.join(catalog.directory, "blobs")
        self._blobs = BlobStore(blob_root)
        #: key -> live index record image.  Mirrors the ``ode.blobs`` heap.
        self._blob_index: dict[str, _BlobRef] = {}
        #: Zero-refcount keys awaiting reclaim, stamped with the snapshot
        #: epoch at which the count hit zero.  The GC only unlinks a key
        #: once the epoch has advanced past the stamp (the displacement has
        #: been published, so no later pin can reach it and every earlier
        #: pin holds stash overlays).
        self._gc_candidates: dict[str, int] = {}
        self._table: dict[Oid, _Entry] = {}
        self._by_type: dict[str, set[Oid]] = {}
        #: Materialized payload bytes, LRU-bounded by a byte budget with a
        #: per-object group index for precise invalidation.
        self._bytes_cache = BudgetedLRU(
            cache_budget, len, group_of=lambda vid: vid.oid
        )
        #: Decoded objects backing the attribute-read fast path.  Entries
        #: are *shared* instances: they are never handed out directly (see
        #: read_attr) and never mutated by the store.
        self._decoded_cache = BudgetedLRU(
            decoded_entries, lambda _obj: 1, group_of=lambda vid: vid.oid
        )
        self._stats = CacheStats()
        self._observers: list[Observer] = []
        #: Snapshot read path (see repro.core.snapshot): the committed
        #: table mirrors ``_table`` at the last publication epoch, the
        #: dirty set tracks objects changed since, and the registry owns
        #: pinning/publication.  Created before _load so the load's graph
        #: construction cannot race a (not-yet-possible) publish.
        self._dirty_oids: set[Oid] = set()
        self._committed: dict[Oid, SnapshotEntry] = {}
        self._committed_by_type: dict[str, tuple[Oid, ...]] = {}
        self._snapshots = SnapshotRegistry()
        self._load()
        self._snapshots.publish(self, full=True)

    @property
    def policy(self) -> StoragePolicy:
        """The store's payload storage policy."""
        return self._policy

    @property
    def catalog(self) -> Catalog:
        """The catalog this store was opened against."""
        return self._catalog

    # -- loading / reloading -------------------------------------------------

    def _load(self) -> None:
        self._bytes_cache.clear()
        self._decoded_cache.clear()
        self._load_table()
        self._load_blob_index()

    def _load_blob_index(self) -> None:
        self._blob_index.clear()
        self._gc_candidates.clear()
        epoch = self._snapshots.epoch
        for rid, payload in self._blobs_heap.scan():
            key, refcount, size = serialization.decode(payload)
            self._blob_index[key] = _BlobRef(refcount, size, rid)
            if refcount == 0:
                self._gc_candidates[key] = epoch

    def _load_table(self) -> None:
        self._table.clear()
        self._by_type.clear()
        cluster_rids: dict[Oid, Rid] = {}
        for rid, payload in self._clusters.scan():
            type_name, oid = serialization.decode(payload)
            cluster_rids[oid] = rid
        for rid, payload in self._objects.scan():
            oid, type_name, graph_state = serialization.decode(payload)
            graph = VersionGraph.from_state(graph_state)
            entry = _Entry(oid, type_name, graph, rid, cluster_rids.get(oid))
            self._table[oid] = entry
            self._by_type.setdefault(type_name, set()).add(oid)

    def reload(self, touched: "set[Oid] | None" = None) -> None:
        """Rebuild all in-memory state from the heaps.

        Called after a transaction abort or partial rollback: the WAL undo
        restored the heap records, and this brings the caches back in line.

        ``touched`` (when known) is the set of object ids the rolled-back
        transaction mutated or created; only their cached payloads are
        invalidated, so the rest of the hot set survives the rollback.
        With ``touched=None`` every cache entry is dropped (conservative).
        """
        if touched is None:
            self._load()
            return
        self._load_table()
        # Refcount updates ride every payload mutation, so the rolled-back
        # transaction may have touched the blob index even when only a few
        # objects changed; rebuild it wholesale (it is small -- one record
        # per unique content key).
        self._load_blob_index()
        for oid in touched:
            self._invalidate_object(oid)

    # -- snapshot publication (lock-free read path) ----------------------------

    @property
    def snapshots(self) -> SnapshotRegistry:
        """The registry owning snapshot publication, pinning, reclamation."""
        return self._snapshots

    def _mutable_graph(self, entry: _Entry) -> VersionGraph:
        """The entry's graph, cloned first if a snapshot may be reading it.

        Published graphs are frozen (pinned readers traverse them without
        locks); copy-on-write keeps the frozen original intact while the
        writer mutates its private clone.
        """
        if entry.graph_shared:
            entry.graph = entry.graph.clone()
            entry.graph_shared = False
        return entry.graph

    def has_unpublished_changes(self, exclude: "frozenset[Oid] | set[Oid]" = frozenset()) -> bool:
        """True when a publish (ignoring ``exclude``) would advance the epoch.

        Deliberately lock-free (the snapshot pin path must not queue
        behind writers holding the storage mutex), so the dirty set can
        be resized mid-scan by a concurrent writer; re-probe when that
        happens.  Either answer is sound during a race: a freshly dirtied
        oid belongs to a still-active transaction and is excluded anyway.
        """
        while True:
            try:
                return any(oid not in exclude for oid in self._dirty_oids)
            except RuntimeError:  # set changed size during iteration
                continue

    def publish_snapshot(
        self,
        exclude: "frozenset[Oid] | set[Oid]" = frozenset(),
        full: bool = False,
    ) -> int:
        """Publish committed state for snapshot readers; returns the epoch.

        Must run with writers quiesced (the database facade calls this
        under the storage mutex after a transaction finishes).  ``exclude``
        lists objects touched by still-active transactions.
        """
        return self._snapshots.publish(self, exclude=exclude, full=full)

    def pin_snapshot(self, index_source: Any = None) -> Snapshot:
        """Pin the current publication epoch for lock-free reads."""
        return self._snapshots.pin(self, index_source)

    def _stash_version(self, entry: _Entry, serial: int) -> None:
        """Preserve a version's current content for pinned/pending snapshots.

        Called *before* the version's heap record is rewritten or deleted;
        snapshot readers re-check their overlays after every shared-state
        probe, so stash-before-overwrite makes the lock-free path safe.
        """
        content = self._version_bytes(entry, serial)
        self._snapshots.stash_bytes(Vid(entry.oid, serial), content)

    # -- cache bookkeeping ----------------------------------------------------

    def _cache_bytes(self, vid: Vid, content: bytes) -> None:
        self._bytes_cache.put(vid, content)

    def _invalidate_version(self, vid: Vid) -> None:
        """Drop all cached state for one version (payload changed or gone)."""
        if self._bytes_cache.pop(vid) is not None:
            self._stats.bytes_invalidations += 1
        self._decoded_cache.pop(vid)

    def _invalidate_object(self, oid: Oid) -> None:
        """Drop all cached state for every version of one object."""
        self._stats.bytes_invalidations += self._bytes_cache.pop_group(oid)
        self._decoded_cache.pop_group(oid)

    def stats(self) -> dict[str, int]:
        """Cache/materialization counters (hits, misses, deltas applied...)."""
        out = self._stats.as_dict()
        out["bytes_evictions"] = self._bytes_cache.evictions
        out["bytes_cache_entries"] = len(self._bytes_cache)
        out["bytes_cache_used"] = self._bytes_cache.used
        out["bytes_cache_budget"] = self._bytes_cache.budget
        out["decoded_evictions"] = self._decoded_cache.evictions
        out["decoded_cache_entries"] = len(self._decoded_cache)
        return out

    @property
    def cache_stats(self) -> CacheStats:
        """The live counter block (mutable; benchmarks may reset fields)."""
        return self._stats

    # -- observers (trigger facility hooks in here) ---------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register a callback invoked after every store mutation."""
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        """Unregister a previously added observer."""
        self._observers.remove(observer)

    def _notify(self, event: str, oid: Oid, vid: Vid | None) -> None:
        for observer in list(self._observers):
            observer(event, oid, vid)

    # -- entry persistence -----------------------------------------------------

    def _save_entry(self, entry: _Entry, log_op: LogOp | None) -> None:
        payload = serialization.encode(
            (entry.oid, entry.type_name, entry.graph.to_state())
        )
        if entry.rid is None:
            entry.rid = self._objects.insert(payload, log_op)
        else:
            self._objects.update(entry.rid, payload, log_op)

    def _entry(self, oid: Oid) -> _Entry:
        entry = self._table.get(oid)
        if entry is None:
            raise UnknownObjectError(f"no persistent object {oid!r}")
        return entry

    # -- content-addressed payload records ----------------------------------------

    @property
    def blobs(self) -> BlobStore:
        """The content-addressed blob store backing version payloads."""
        return self._blobs

    def _blob_incref(self, key: str, size: int, log_op: LogOp | None) -> None:
        ref = self._blob_index.get(key)
        if ref is None:
            rid = self._blobs_heap.insert(
                serialization.encode((key, 1, size)), log_op
            )
            self._blob_index[key] = _BlobRef(1, size, rid)
        else:
            ref.refcount += 1
            self._blobs_heap.update(
                ref.rid, serialization.encode((key, ref.refcount, ref.size)), log_op
            )
            if ref.refcount == 1:
                # Revived while awaiting reclaim: the content is identical
                # (that is what content addressing means), so the file is
                # simply live again.
                self._gc_candidates.pop(key, None)

    def _blob_decref(self, key: str, log_op: LogOp | None) -> None:
        ref = self._blob_index.get(key)
        if ref is None or ref.refcount <= 0:
            raise BlobError(f"blob refcount underflow for {key}")
        ref.refcount -= 1
        self._blobs_heap.update(
            ref.rid, serialization.encode((key, ref.refcount, ref.size)), log_op
        )
        if ref.refcount == 0:
            self._gc_candidates[key] = self._snapshots.epoch

    def _blob_ref_record(self, stored: bytes, log_op: LogOp | None) -> bytes:
        """Write ``stored`` into the blob store; returns the heap record.

        The file write happens *before* the index record: a crash in
        between leaves an orphan file, which the GC's orphan sweep (and
        the recovery repair pass) removes.  The reverse order could lose
        acknowledged payload bytes.
        """
        key = self._blobs.put(stored)
        self._blob_incref(key, len(stored), log_op)
        # Remember which keys this transaction introduced: if it rolls
        # back, the undone increfs can leave content files with no index
        # record, and the owner sweeps exactly these (see
        # :meth:`sweep_blob_puts`) instead of scanning the whole store.
        owner = getattr(log_op, "__self__", None)
        puts = getattr(owner, "blob_puts", None)
        if puts is not None:
            puts.append(key)
        return blobstore.encode_ref(key, len(stored))

    def _release_record(self, record: bytes, log_op: LogOp | None) -> None:
        """Drop the blob reference held by a displaced heap record."""
        if blobstore.is_ref(record):
            key, _size = blobstore.decode_ref(record)
            self._blob_decref(key, log_op)

    def _record_insert(self, stored: bytes, log_op: LogOp | None) -> Rid:
        return self._versions.insert(self._blob_ref_record(stored, log_op), log_op)

    def _record_update(self, rid: Rid, stored: bytes, log_op: LogOp | None) -> None:
        # Incref-new before decref-old: rewriting a record to the same
        # content must never let the shared key's count touch zero.
        old = self._versions.read(rid)
        self._versions.update(rid, self._blob_ref_record(stored, log_op), log_op)
        self._release_record(old, log_op)

    def _record_delete(self, rid: Rid, log_op: LogOp | None) -> None:
        old = self._versions.read(rid)
        self._versions.delete(rid, log_op)
        self._release_record(old, log_op)

    def _resolve_payload(self, raw: bytes) -> bytes:
        """Materialize a versions-heap record: follow a blob reference.

        Legacy records (pre-CAS databases) hold the payload inline and
        pass through unchanged.
        """
        if blobstore.is_ref(raw):
            key, _size = blobstore.decode_ref(raw)
            return self._blobs.get(key)
        return raw

    # -- blob accounting surface (GC, check, inspect) ------------------------------

    def blob_entries(self) -> dict[str, tuple[int, int]]:
        """Snapshot of the refcount index: key -> (refcount, size)."""
        return {k: (ref.refcount, ref.size) for k, ref in self._blob_index.items()}

    def gc_candidates(self) -> dict[str, int]:
        """Zero-refcount keys awaiting reclaim: key -> epoch stamp."""
        return dict(self._gc_candidates)

    def blob_refcount(self, key: str) -> int | None:
        """Live refcount of a key, or None when it has no index record."""
        ref = self._blob_index.get(key)
        return None if ref is None else ref.refcount

    def orphan_blob_keys(self) -> list[str]:
        """Content files on disk with no index record (crashed puts)."""
        return [key for key in self._blobs.keys() if key not in self._blob_index]

    def sweep_blob_puts(self, keys: "list[str]") -> int:
        """Unlink rolled-back puts that lost their last index record.

        Called after an abort or savepoint rollback with the keys the
        transaction put (the caller holds the storage mutex).  A key
        another reference revived -- or that a concurrent transaction
        also put -- still has an index record and is left alone; put +
        incref are atomic under the storage mutex, so a key with *no*
        record is provably garbage.
        """
        swept = 0
        for key in dict.fromkeys(keys):  # dedup, order preserved
            if key not in self._blob_index and self._blobs.unlink(key):
                swept += 1
        return swept

    def drop_blob_entry(self, key: str, log_op: LogOp | None) -> None:
        """Delete a reclaimed key's index record (GC, after the unlink)."""
        ref = self._blob_index.get(key)
        if ref is None:
            return
        if ref.refcount != 0:
            raise BlobError(
                f"cannot drop live blob {key} (refcount {ref.refcount})"
            )
        self._blobs_heap.delete(ref.rid, log_op)
        del self._blob_index[key]
        self._gc_candidates.pop(key, None)

    def blob_stats(self) -> dict[str, int]:
        """Blob-store counters plus index totals (``blobs.*`` namespace)."""
        out = self._blobs.stats.as_dict()
        live = sum(1 for ref in self._blob_index.values() if ref.refcount > 0)
        live_bytes = sum(
            ref.size for ref in self._blob_index.values() if ref.refcount > 0
        )
        logical = sum(
            ref.refcount * ref.size for ref in self._blob_index.values()
        )
        out["blobs.count"] = len(self._blob_index)
        out["blobs.live"] = live
        out["blobs.live_bytes"] = live_bytes
        out["blobs.logical_bytes"] = logical
        out["blobs.pending_reclaim"] = len(self._gc_candidates)
        return out

    # -- payload storage ---------------------------------------------------------

    def _store_payload(
        self,
        entry: _Entry,
        serial: int,
        content: bytes,
        base_serial: int | None,
        log_op: LogOp | None,
    ) -> tuple:
        """Write ``content`` for a (new) version; returns the node ``data``."""
        use_delta = (
            self._policy.kind == "delta"
            and base_serial is not None
            and self._depth_since_keyframe(entry, base_serial) + 1
            < self._policy.keyframe_interval
        )
        if use_delta:
            base_bytes = self._version_bytes(entry, base_serial)
            delta = compute_delta(base_bytes, content)
            if len(delta) < len(content):
                rid = self._record_insert(delta, log_op)
                return (_DELTA, rid.page_id, rid.slot)
        rid = self._record_insert(content, log_op)
        return (_FULL, rid.page_id, rid.slot)

    def _depth_since_keyframe(self, entry: _Entry, serial: int) -> int:
        """Delta-chain length from ``serial`` back to the nearest full copy."""
        depth = 0
        graph = entry.graph
        current: int | None = serial
        while current is not None:
            node = graph.node(current)
            if node.data[0] == _FULL:
                return depth
            depth += 1
            current = node.dprev
        raise VersionError(f"delta chain of {entry.oid!r} has no full-copy root")

    def _version_bytes(self, entry: _Entry, serial: int) -> bytes:
        """Materialized payload bytes for one version (cached).

        On a miss, the delta chain is walked back only to the *nearest
        cached ancestor* (chain-prefix memoization) rather than always to
        the keyframe, and every intermediate step is cached so the next
        read along the chain starts even closer.
        """
        oid = entry.oid
        cached = self._bytes_cache.get(Vid(oid, serial))
        if cached is not None:
            self._stats.bytes_hits += 1
            return cached
        self._stats.bytes_misses += 1
        graph = entry.graph
        # Walk back until a full copy or a cached ancestor supplies a base.
        chain: list[int] = []  # serials needing delta application, newest first
        content: bytes | None = None
        current: int | None = serial
        while True:
            if current is None:
                raise VersionError(f"delta chain of {entry.oid!r} has no full-copy root")
            if current != serial:
                ancestor = self._bytes_cache.get(Vid(oid, current))
                if ancestor is not None:
                    content = ancestor
                    self._stats.chain_prefix_hits += 1
                    break
            node = graph.node(current)
            if node.data[0] == _FULL:
                content = self._read_record(node.data)
                self._cache_bytes(Vid(oid, current), content)
                break
            chain.append(current)
            current = node.dprev
        for step in reversed(chain):
            content = apply_delta(
                content, self._read_record(graph.node(step).data), self._stats
            )
            self._cache_bytes(Vid(oid, step), content)
        return content

    def _read_record(self, data: tuple) -> bytes:
        _kind, page_id, slot = data
        return self._resolve_payload(self._versions.read(Rid(page_id, slot)))

    def _rewrite_payload(
        self, entry: _Entry, serial: int, content: bytes, log_op: LogOp | None
    ) -> None:
        """Replace the stored payload of an existing version with ``content``.

        Keeps the node's storage kind consistent: a delta-stored node is
        re-encoded against its current derivation parent, and the deltas of
        any delta-stored children are recomputed (their *content* must not
        change when their base does).
        """
        graph = self._mutable_graph(entry)
        node = graph.node(serial)
        # Materialize delta children BEFORE the base changes.
        delta_children = [
            child for child in node.children if graph.node(child).data[0] == _DELTA
        ]
        child_contents = {
            child: self._version_bytes(entry, child) for child in delta_children
        }
        # Stash pre-op content before any record changes: the rewritten
        # version's old bytes, and the children whose stored encoding is
        # about to be re-based (their content is unchanged, so the stash
        # is valid on both sides of the rewrite).
        self._stash_version(entry, serial)
        for child, child_content in child_contents.items():
            self._snapshots.stash_bytes(Vid(entry.oid, child), child_content)
        self._dirty_oids.add(entry.oid)
        hooks.sched_point("store.rewrite.stashed")
        kind, page_id, slot = node.data
        if kind == _DELTA:
            assert node.dprev is not None
            base_bytes = self._version_bytes(entry, node.dprev)
            stored = compute_delta(base_bytes, content)
            if len(stored) >= len(content):
                stored = content
                node.data = (_FULL, page_id, slot)
        else:
            stored = content
        self._record_update(Rid(page_id, slot), stored, log_op)
        # The version's *content* changed: its decoded copy is stale, and
        # the bytes cache takes the new payload.
        self._decoded_cache.pop(Vid(entry.oid, serial))
        self._cache_bytes(Vid(entry.oid, serial), content)
        for child, child_content in child_contents.items():
            child_node = graph.node(child)
            _ckind, cpage, cslot = child_node.data
            new_delta = compute_delta(content, child_content)
            if len(new_delta) >= len(child_content):
                child_node.data = (_FULL, cpage, cslot)
                self._record_update(Rid(cpage, cslot), child_content, log_op)
            else:
                self._record_update(Rid(cpage, cslot), new_delta, log_op)
            # Children keep their content (only the encoding changed), so
            # their decoded copies stay valid.
            self._cache_bytes(Vid(entry.oid, child), child_content)

    # -- public kernel operations ---------------------------------------------

    def pnew(self, obj: Any, log_op: LogOp | None = None) -> Ref:
        """Create a persistent object; returns its generic reference.

        The object's state is captured immediately (via the stable codec);
        the live ``obj`` is not kept -- all later access goes through the
        returned reference.  The object starts with one version.
        """
        hooks.sched_point("store.pnew")
        type_name = serialization.registered_name(type(obj))
        if type_name is None:
            # Version orthogonality in practice: pnew accepts any object.
            # Auto-register under the qualified name, uniquified if a
            # different class (e.g. a redefined local class) already took it.
            base_name = f"{type(obj).__module__}.{type(obj).__qualname__}"
            type_name = base_name
            suffix = 1
            while True:
                try:
                    serialization.register_type(type(obj), type_name)
                    break
                except serialization.SerializationError:
                    suffix += 1
                    type_name = f"{base_name}#{suffix}"
        oid = Oid(
            self._catalog.next_value(
                "ode.oid",
                log_op,
                stride=self._oid_stride,
                residue=self._oid_residue,
            )
        )
        graph = VersionGraph()
        entry = _Entry(oid, type_name, graph, None, None)
        content = self._encode_object(obj)
        serial = 1
        data = self._store_payload(entry, serial, content, None, log_op)
        graph.create(serial, None, time.time(), data)
        self._save_entry(entry, log_op)
        cluster_payload = serialization.encode((type_name, oid))
        entry.cluster_rid = self._clusters.insert(cluster_payload, log_op)
        self._table[oid] = entry
        self._by_type.setdefault(type_name, set()).add(oid)
        self._cache_bytes(Vid(oid, serial), content)
        entry.latest_vid = Vid(oid, serial)
        self._dirty_oids.add(oid)
        self._notify(EV_CREATE, oid, Vid(oid, serial))
        return Ref(self, oid)

    def newversion(self, target: Ref | VersionRef | Oid | Vid, log_op: LogOp | None = None) -> VersionRef:
        """Create a new version derived from ``target`` (paper §4.2).

        With an object id / generic reference, the base is the latest
        version; with a version id / specific reference, the base is that
        version -- deriving from a non-latest version is what creates
        variants (alternatives).  The new version starts with the base's
        contents and becomes the object's latest.
        """
        hooks.sched_point("store.newversion")
        base_vid = self._resolve(target)
        entry = self._entry(base_vid.oid)
        graph = self._mutable_graph(entry)
        base_serial = base_vid.serial
        content = self._version_bytes(entry, base_serial)
        serial = graph.max_serial + 1
        data = self._store_payload(entry, serial, content, base_serial, log_op)
        graph.create(serial, base_serial, time.time(), data)
        self._save_entry(entry, log_op)
        vid = Vid(entry.oid, serial)
        self._cache_bytes(vid, content)
        entry.latest_vid = vid  # the new version is the temporally latest
        self._dirty_oids.add(entry.oid)
        self._notify(EV_NEWVERSION, entry.oid, vid)
        return VersionRef(self, vid)

    def pdelete(self, target: Ref | VersionRef | Oid | Vid, log_op: LogOp | None = None) -> None:
        """Delete an object (all versions) or one version (paper §4.4)."""
        hooks.sched_point("store.pdelete")
        if isinstance(target, (Ref, Oid)):
            oid = target.oid if isinstance(target, Ref) else target
            self._delete_object(oid, log_op)
        else:
            vid = target.vid if isinstance(target, VersionRef) else target
            self._delete_version(vid, log_op)

    def _delete_object(self, oid: Oid, log_op: LogOp | None) -> None:
        entry = self._entry(oid)
        # Pinned (and not-yet-pinned mid-transaction) snapshots must keep
        # reading every version after the records are gone: stash them all
        # before the first delete.
        for node in list(entry.graph.walk_temporal()):
            self._stash_version(entry, node.serial)
        self._dirty_oids.add(oid)
        for node in list(entry.graph.walk_temporal()):
            _kind, page_id, slot = node.data
            self._record_delete(Rid(page_id, slot), log_op)
        self._invalidate_object(oid)
        if entry.rid is not None:
            self._objects.delete(entry.rid, log_op)
        if entry.cluster_rid is not None:
            self._clusters.delete(entry.cluster_rid, log_op)
        del self._table[oid]
        self._by_type[entry.type_name].discard(oid)
        self._notify(EV_DELETE_OBJECT, oid, None)

    def _delete_version(self, vid: Vid, log_op: LogOp | None) -> None:
        entry = self._entry(vid.oid)
        graph = entry.graph
        if vid.serial not in graph:
            raise UnknownVersionError(f"no live version {vid!r}")
        if len(graph) == 1:
            # Deleting the only version deletes the object.
            self._delete_object(vid.oid, log_op)
            return
        graph = self._mutable_graph(entry)
        node = graph.node(vid.serial)
        # Children stored as deltas against this version must be re-based
        # before the splice: materialize them now.
        delta_children = [
            child for child in node.children if graph.node(child).data[0] == _DELTA
        ]
        child_contents = {
            child: self._version_bytes(entry, child) for child in delta_children
        }
        # Stash before the record delete / child re-encodes touch the heap.
        self._stash_version(entry, vid.serial)
        for child, child_content in child_contents.items():
            self._snapshots.stash_bytes(Vid(entry.oid, child), child_content)
        self._dirty_oids.add(entry.oid)
        removed = graph.remove(vid.serial)
        entry.latest_vid = None  # deleting the latest moves the denotation
        _kind, page_id, slot = removed.data
        self._record_delete(Rid(page_id, slot), log_op)
        self._invalidate_version(vid)
        for child, child_content in child_contents.items():
            child_node = graph.node(child)
            _ckind, cpage, cslot = child_node.data
            if child_node.dprev is None:
                # Re-parented to nothing: must become a full copy.
                child_node.data = (_FULL, cpage, cslot)
                self._record_update(Rid(cpage, cslot), child_content, log_op)
            else:
                base = self._version_bytes(entry, child_node.dprev)
                new_delta = compute_delta(base, child_content)
                if len(new_delta) >= len(child_content):
                    child_node.data = (_FULL, cpage, cslot)
                    self._record_update(Rid(cpage, cslot), child_content, log_op)
                else:
                    self._record_update(Rid(cpage, cslot), new_delta, log_op)
            self._cache_bytes(Vid(entry.oid, child), child_content)
        self._save_entry(entry, log_op)
        self._notify(EV_DELETE_VERSION, vid.oid, vid)

    # -- dereferencing (used by Ref / VersionRef) --------------------------------

    def _resolve(self, target: Ref | VersionRef | Oid | Vid) -> Vid:
        if isinstance(target, Ref):
            return self.latest_vid(target.oid)
        if isinstance(target, Oid):
            return self.latest_vid(target)
        if isinstance(target, VersionRef):
            return target.vid
        if isinstance(target, Vid):
            return target
        raise TypeError(f"expected a reference or id, got {type(target).__qualname__}")

    def latest_vid(self, oid: Oid) -> Vid:
        """The version id an object id currently denotes (paper §4.3).

        Memoized per object-table entry so generic-reference pointer
        transparency does not recompute the denotation on every attribute
        access; ``newversion``/``pdelete`` invalidate the memo.
        """
        entry = self._table.get(oid)
        if entry is None:
            raise DanglingReferenceError(f"object {oid!r} no longer exists")
        vid = entry.latest_vid
        if vid is not None:
            self._stats.latest_hits += 1
            return vid
        self._stats.latest_misses += 1
        serial = entry.graph.latest()
        assert serial is not None  # empty graphs are deleted eagerly
        vid = Vid(oid, serial)
        entry.latest_vid = vid
        return vid

    def materialize(self, vid: Vid) -> Any:
        """Decode and return a fresh copy of the version's object."""
        entry = self._table.get(vid.oid)
        if entry is None:
            raise DanglingReferenceError(f"object {vid.oid!r} no longer exists")
        if vid.serial not in entry.graph:
            raise DanglingReferenceError(f"version {vid!r} no longer exists")
        content = self._version_bytes(entry, vid.serial)
        self._stats.bytes_decoded += len(content)
        return serialization.decode(content)

    def read_attr(self, vid: Vid, name: str) -> Any:
        """Attribute-read fast path over a *shared* cached decode.

        Pointer transparency (``ref.field``) decodes a whole payload to
        read one attribute; this caches the decoded object and serves
        reads from it when the value cannot alias mutable cached state
        (immutable scalars, ids, containers the pointer layer copies).
        Returns :data:`READ_MISS` when the caller must fall back to a
        fresh :meth:`materialize` (methods need a private receiver for
        write-back; unknown types could leak shared mutable state).
        """
        entry = self._table.get(vid.oid)
        if entry is None:
            raise DanglingReferenceError(f"object {vid.oid!r} no longer exists")
        if vid.serial not in entry.graph:
            raise DanglingReferenceError(f"version {vid!r} no longer exists")
        obj = self._decoded_cache.get(vid)
        if obj is None:
            content = self._version_bytes(entry, vid.serial)
            self._stats.bytes_decoded += len(content)
            self._stats.decoded_misses += 1
            obj = serialization.decode(content)
            self._decoded_cache.put(vid, obj)
        else:
            self._stats.decoded_hits += 1
        value = getattr(obj, name)  # AttributeError propagates as usual
        if inspect.ismethod(value) and value.__self__ is obj:
            return READ_MISS
        if _is_shareable(value):
            return value
        return READ_MISS

    def write_version(self, vid: Vid, obj: Any, log_op: LogOp | None = None) -> None:
        """Update a version's contents **in place** (no new version).

        Paper §4.2 separates mutating a version from creating one:
        ``newversion`` is always explicit.
        """
        hooks.sched_point("store.write")
        entry = self._table.get(vid.oid)
        if entry is None:
            raise DanglingReferenceError(f"object {vid.oid!r} no longer exists")
        if vid.serial not in entry.graph:
            raise DanglingReferenceError(f"version {vid!r} no longer exists")
        content = self._encode_object(obj)
        self._rewrite_payload(entry, vid.serial, content, log_op)
        self._notify(EV_UPDATE, vid.oid, vid)

    def _encode_object(self, obj: Any) -> bytes:
        # The codec unwraps nested Refs/VersionRefs to ids by itself (see
        # serialization.install_reference_unwrapper); unwrap_ids handles the
        # case where obj *is* a bare container of references.
        return serialization.encode(unwrap_ids(obj))

    def version_dirty(self, vid: Vid, obj: Any) -> bool:
        """True unless ``obj`` re-encodes byte-identically to the stored version.

        A false positive (codec not byte-stable for some value) only costs
        a redundant write -- the pre-skip behaviour; a false negative is
        impossible because the comparison is on exact payload bytes.
        """
        entry = self._table.get(vid.oid)
        if entry is None or vid.serial not in entry.graph:
            return True  # let write_version raise the precise error
        return self._encode_object(obj) != self._version_bytes(entry, vid.serial)

    def write_version_if_changed(
        self, vid: Vid, obj: Any, log_op: LogOp | None = None
    ) -> bool:
        """:meth:`write_version`, skipped when the payload is unchanged.

        The write-back path behind ``ref.method(...)`` calls this so pure
        reader methods stop generating WAL records, heap updates, and
        cache invalidations.  Returns True when a write happened.
        """
        if not self.version_dirty(vid, obj):
            self._stats.writebacks_skipped += 1
            return False
        self.write_version(vid, obj, log_op)
        return True

    # -- existence & metadata ----------------------------------------------------

    def object_exists(self, oid: Oid) -> bool:
        """True while the object has at least one live version."""
        return oid in self._table

    def version_exists(self, vid: Vid) -> bool:
        """True while this specific version is live."""
        entry = self._table.get(vid.oid)
        return entry is not None and vid.serial in entry.graph

    def type_name(self, oid: Oid) -> str:
        """Stable type name of the object's class."""
        return self._entry(oid).type_name

    def graph(self, oid: Oid) -> VersionGraph:
        """The object's version graph (live view -- do not mutate)."""
        return self._entry(oid).graph

    # -- traversal surface (paper §4: Dprevious/Tprevious and duals) --------------

    def dprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The version ``vref`` was derived from, or None for an initial version."""
        vid = self._resolve(vref)
        serial = self._entry(vid.oid).graph.dprevious(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def dnext(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """Versions derived from ``vref`` (its revisions and variants)."""
        vid = self._resolve(vref)
        return [
            VersionRef(self, Vid(vid.oid, s))
            for s in self._entry(vid.oid).graph.dnext(vid.serial)
        ]

    def tprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally preceding version, or None for the oldest."""
        vid = self._resolve(vref)
        serial = self._entry(vid.oid).graph.tprevious(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def tnext(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally following version, or None for the latest."""
        vid = self._resolve(vref)
        serial = self._entry(vid.oid).graph.tnext(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def history(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """The derivation path of ``vref``, newest first (paper §4.3)."""
        vid = self._resolve(vref)
        return [
            VersionRef(self, Vid(vid.oid, s))
            for s in self._entry(vid.oid).graph.history(vid.serial)
        ]

    def version_as_of(self, target: Ref | Oid, timestamp: float) -> VersionRef | None:
        """The version that was latest at wall-clock ``timestamp``.

        Paper §3 motivates temporal order with historical databases "that
        must access the past states of the database" and "supporting time
        in databases" [30]: every version records its creation time, so
        the state as of any instant is the newest version created at or
        before it.  Returns None when the object did not exist yet.
        (Versions deleted since then are gone -- pdelete is a real delete,
        not a logical one.)
        """
        oid = target.oid if isinstance(target, Ref) else target
        serial = self._entry(oid).graph.latest_at(timestamp)
        return None if serial is None else VersionRef(self, Vid(oid, serial))

    def versions(self, target: Ref | Oid) -> list[VersionRef]:
        """All live versions of an object, temporal order (oldest first)."""
        oid = target.oid if isinstance(target, Ref) else target
        return [
            VersionRef(self, Vid(oid, s)) for s in self._entry(oid).graph.serials()
        ]

    def leaves(self, target: Ref | Oid) -> list[VersionRef]:
        """The up-to-date version of every alternative (derivation leaves)."""
        oid = target.oid if isinstance(target, Ref) else target
        return [VersionRef(self, Vid(oid, s)) for s in self._entry(oid).graph.leaves()]

    def alternatives(self, target: Ref | Oid) -> list[list[VersionRef]]:
        """Every root-to-leaf derivation path (paper §4: alternative designs)."""
        oid = target.oid if isinstance(target, Ref) else target
        return [
            [VersionRef(self, Vid(oid, s)) for s in path]
            for path in self._entry(oid).graph.alternatives()
        ]

    def version_count(self, target: Ref | Oid) -> int:
        """Number of live versions of the object."""
        oid = target.oid if isinstance(target, Ref) else target
        return len(self._entry(oid).graph)

    # -- clusters (per-type extents, used by the query layer) ----------------------

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        """Generic references to every object of the given type.

        Ode clusters objects by type; the query layer iterates these.
        """
        if isinstance(type_or_name, str):
            name = type_or_name
        else:
            resolved = serialization.registered_name(type_or_name)
            name = resolved if resolved is not None else (
                f"{type_or_name.__module__}.{type_or_name.__qualname__}"
            )
        oids = sorted(self._by_type.get(name, set()))
        return [Ref(self, oid) for oid in oids]

    def cluster_names(self) -> list[str]:
        """Type names with at least one live object."""
        return sorted(name for name, oids in self._by_type.items() if oids)

    def all_objects(self) -> Iterator[Ref]:
        """Generic references to every live object, oid order."""
        for oid in sorted(self._table):
            yield Ref(self, oid)

    def object_count(self) -> int:
        """Number of live persistent objects."""
        return len(self._table)
