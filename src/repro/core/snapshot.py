"""Lock-free snapshot reads: epoch-published views of committed state.

The paper's core invariant -- a version, once created, is immutable;
``newversion`` creates rather than mutates (§3/§4.2) -- is exactly the
property MVCC systems exploit to serve reads without locks.  This module
adds that read path: writers keep serializing through the storage mutex
and strict 2PL, but a pinned :class:`Snapshot` answers ``materialize``,
the §4 traversals, ``version_as_of`` and query scans against frozen
state, taking **no SHARED locks and never touching the storage mutex**.

The design is epoch + copy-on-write at three granularities:

* **Entries.**  The store keeps a *committed table* (oid -> frozen
  :class:`SnapshotEntry`) beside its live table.  At every commit (and
  abort cleanup) the store *publishes*: for each object the finished
  transaction changed, the committed table's slot is overwritten with a
  fresh frozen entry and the epoch counter advances.  Objects touched by
  transactions that are still active are excluded, so uncommitted state
  is never published.  Before a slot is overwritten, the displaced entry
  is stashed into the *overlay* of every pinned snapshot that does not
  already hold one -- a pinned snapshot therefore always resolves an oid
  to the entry that was committed when it was pinned, at a cost
  proportional to what changed, not to the table size.
* **Graphs.**  A published entry shares the live ``VersionGraph`` object
  and marks it ``graph_shared``; a writer about to mutate a shared graph
  clones it first (:meth:`VersionGraph.clone`), so published graphs are
  immutable once visible to a snapshot.
* **Payload bytes.**  Most version records are immutable, but
  ``write_version`` rewrites in place and delta re-basing re-encodes
  child records.  Before any versions-heap record is rewritten or
  deleted, the store stashes the *pre-op content* into every pinned
  snapshot's byte overlay (and into a registry-wide *pending* overlay
  that seeds snapshots pinned later, while the writing transaction is
  still uncommitted).  A snapshot read checks its overlay, then the
  shared thread-safe bytes cache, then walks the heap under the striped
  page locks -- re-checking the overlay after every shared-state probe,
  which closes the stash/read race (writers stash *before* they
  overwrite, so a reader that saw post-overwrite bytes is guaranteed to
  find the stash on the re-check).

Reclamation is by pin count: a snapshot retains displaced entries and
stashed bytes only in its own overlays, so closing it frees everything
it kept alive.  ``snap.*`` counters (published epochs, pinned readers,
reclaimed snapshots, lock-free read hits) surface through
``Database.stats()`` and ``tools/inspect``.
"""

from __future__ import annotations

import inspect as _inspect
import threading
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import (
    BlobMissingError,
    DanglingReferenceError,
    ReadOnlySnapshotError,
    StorageError,
    UnknownObjectError,
    UnknownVersionError,
    VersionError,
)
from repro.core.cache import READ_MISS, BudgetedLRU
from repro.core.identity import Oid, Vid
from repro.core.pointers import Ref, VersionRef, unwrap_ids
from repro.storage import serialization
from repro.storage.delta import apply_delta
from repro.verify import hooks
from repro.storage.heap import Rid

if TYPE_CHECKING:
    from repro.core.store import VersionStore
    from repro.core.vgraph import VersionGraph

#: Sentinel distinguishing "no overlay entry" from "overlay says absent".
_MISS = object()

#: Entry budget for each snapshot's private decoded-object cache.
_SNAPSHOT_DECODED_ENTRIES = 256

#: Entry budget for the decoded-object cache shared by every snapshot
#: pinned at the same epoch.  Same-epoch snapshots see identical bytes
#: for every vid (publication bumps the epoch before any committed
#: content moves, and pre-images of uncommitted rewrites are stashed
#: first-wins), so one decode can serve a whole swarm of readers.
_SHARED_DECODED_ENTRIES = 4096


class _EpochDecodedCache:
    """Decoded-object cache shared by every snapshot of one epoch.

    Reads are a bare ``dict.get`` -- GIL-atomic, no lock, no recency
    bookkeeping -- because this sits on the network server's inline
    read path, once per wire request.  When the map outgrows its budget
    it is dropped wholesale and rebuilt on demand: epoch caches are
    short-lived, so a reset beats per-entry LRU accounting here.
    """

    __slots__ = ("_entries", "_budget")

    def __init__(self, budget: int) -> None:
        self._entries: dict = {}
        self._budget = budget

    def get(self, key, default=None):
        return self._entries.get(key, default)

    def put(self, key, value) -> None:
        entries = self._entries
        if len(entries) >= self._budget:
            self._entries = entries = {}
        entries[key] = value


class SnapshotEntry:
    """Frozen object-table row published into the committed table.

    ``latest_decoded`` is the one mutable field: a decode memo for the
    entry's latest version, filled lazily by the wire-read fast path.
    It is sound because an entry instance's content never changes --
    every publish that touches the oid installs a *new* entry, and
    pre-images of in-flight rewrites are stashed before the heap moves
    -- so whoever decodes first stores what every reader would decode.
    """

    __slots__ = ("type_name", "graph", "latest_serial", "latest_decoded")

    def __init__(self, type_name: str, graph: "VersionGraph", latest_serial: int) -> None:
        self.type_name = type_name
        self.graph = graph
        self.latest_serial = latest_serial
        self.latest_decoded: Any = None


class SnapshotRegistry:
    """Publication, pinning and reclamation for one store's snapshots.

    All mutations (publish, pin, unpin, byte stashes) happen under one
    small internal lock, which is never held while waiting on any other
    lock -- so pinning a snapshot cannot block behind a writer that holds
    the storage mutex, an EXCLUSIVE object lock, or a page stripe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pinned: dict[int, "Snapshot"] = {}
        #: Pre-overwrite content of versions rewritten by transactions
        #: that have not finished yet: seeds the byte overlay of any
        #: snapshot pinned while such a transaction is in flight.
        self._pending_bytes: dict[Vid, bytes] = {}
        self._pending_by_oid: dict[Oid, set[Vid]] = {}
        self.epoch = 0
        self.published = 0
        self.pins = 0
        self.reclaimed = 0
        self.stashes = 0
        #: Reads served entirely without the storage mutex or object locks.
        self.lockfree_hits = 0
        #: Decoded-object cache shared across snapshots of one epoch;
        #: replaced (not mutated) whenever the epoch advances, since a
        #: vid's bytes may legitimately differ between epochs.
        self._decoded_epoch = -1
        self._decoded_shared: _EpochDecodedCache | None = None

    # -- counters -----------------------------------------------------------

    @property
    def pinned_count(self) -> int:
        """Number of snapshots currently pinned by readers."""
        with self._lock:
            return len(self._pinned)

    def min_pinned_epoch(self) -> int | None:
        """The oldest epoch any pinned snapshot is reading (None = no pins).

        The GC's epoch-reclamation signal: a displaced payload whose
        refcount hit zero at epoch E is provably unreachable through shared
        state once ``epoch > E`` (the displacement has been published, so
        no later pin can resolve to it), and every snapshot pinned at an
        epoch <= E received the content in its stash overlay when the
        displacement happened -- it never needs the blob file again.
        """
        with self._lock:
            if not self._pinned:
                return None
            return min(snap._epoch for snap in self._pinned.values())

    def stats(self) -> dict[str, int]:
        """The ``snap.*`` counter block for ``Database.stats()``."""
        with self._lock:
            return {
                "snap.epoch": self.epoch,
                "snap.published": self.published,
                "snap.pinned": len(self._pinned),
                "snap.pins": self.pins,
                "snap.reclaimed": self.reclaimed,
                "snap.stashes": self.stashes,
                "snap.lockfree_hits": self.lockfree_hits,
            }

    # -- write-side hooks (called by the store under the storage mutex) ------

    def stash_bytes(self, vid: Vid, content: bytes) -> None:
        """Preserve a version's content before its heap record changes.

        ``setdefault`` semantics everywhere: the *first* stash for a vid
        wins, which is the last committed content (a transaction that
        rewrites the same version twice must not overwrite the stash with
        its own uncommitted intermediate).
        """
        with self._lock:
            self.stashes += 1
            if vid not in self._pending_bytes:
                self._pending_bytes[vid] = content
                self._pending_by_oid.setdefault(vid.oid, set()).add(vid)
            for snap in self._pinned.values():
                if vid not in snap._bytes_overlay:
                    snap._bytes_overlay[vid] = content

    def _drop_pending(self, oid: Oid) -> None:
        vids = self._pending_by_oid.pop(oid, None)
        if vids:
            for vid in vids:
                self._pending_bytes.pop(vid, None)

    def publish(
        self,
        store: "VersionStore",
        exclude: "frozenset[Oid] | set[Oid]" = frozenset(),
        full: bool = False,
    ) -> int:
        """Advance the committed table to the store's current state.

        ``exclude`` lists oids touched by still-active transactions: their
        live state is uncommitted, so their committed-table slots (and any
        pending byte stashes) are left exactly as they are.  ``full``
        republishes every object rather than only the dirty set -- used at
        open and after an abort's full reload, when the live table was
        rebuilt wholesale.  Returns the (possibly unchanged) epoch.
        """
        hooks.sched_point("snap.publish")
        with self._lock:
            dirty = store._dirty_oids
            if full:
                candidates = set(store._table) | set(store._committed) | set(dirty)
            else:
                candidates = set(dirty)
            publish_now = [oid for oid in candidates if oid not in exclude]
            if not publish_now:
                return self.epoch
            committed = store._committed
            by_type = store._committed_by_type
            touched_types: set[str] = set()
            for oid in publish_now:
                old = committed.get(oid)
                live = store._table.get(oid)
                dirty.discard(oid)
                self._drop_pending(oid)
                if old is None and live is None:
                    continue
                # Stash the displaced entry (or its absence) into every
                # pinned snapshot BEFORE the committed slot moves; readers
                # re-check the overlay after every committed-table probe.
                for snap in self._pinned.values():
                    if oid not in snap._entry_overlay:
                        snap._entry_overlay[oid] = old
                if live is not None:
                    live.graph_shared = True
                    latest = live.graph.latest()
                    if latest is None:
                        committed.pop(oid, None)
                    else:
                        committed[oid] = SnapshotEntry(
                            live.type_name, live.graph, latest
                        )
                    touched_types.add(live.type_name)
                else:
                    committed.pop(oid, None)
                if old is not None:
                    touched_types.add(old.type_name)
            for tname in touched_types:
                old_tuple = by_type.get(tname)
                for snap in self._pinned.values():
                    if tname not in snap._type_overlay:
                        snap._type_overlay[tname] = old_tuple or ()
                members = {
                    o for o in store._by_type.get(tname, ()) if o in committed
                }
                # Members not republished this round (still excluded, e.g.
                # deleted by an uncommitted transaction) stay visible.
                members.update(o for o in (old_tuple or ()) if o in committed)
                by_type[tname] = tuple(sorted(members))
            self.epoch += 1
            self.published += 1
            return self.epoch

    # -- read-side lifecycle --------------------------------------------------

    def pin(self, store: "VersionStore", index_source: Any = None) -> "Snapshot":
        """Pin the current epoch; the snapshot stays readable until closed."""
        hooks.sched_point("snap.pin")
        with self._lock:
            self.pins += 1
            if self._decoded_epoch != self.epoch:
                self._decoded_epoch = self.epoch
                self._decoded_shared = _EpochDecodedCache(
                    _SHARED_DECODED_ENTRIES
                )
            snap = Snapshot(
                store,
                self,
                self.epoch,
                dict(self._pending_bytes),
                index_source,
                decoded=self._decoded_shared,
            )
            self._pinned[id(snap)] = snap
            return snap

    def unpin(self, snap: "Snapshot") -> None:
        hooks.sched_point("snap.unpin")
        with self._lock:
            if self._pinned.pop(id(snap), None) is not None:
                self.reclaimed += 1


class Snapshot:
    """A pinned, immutable point-in-time view of the committed database.

    Implements the store protocol consumed by :class:`Ref` /
    :class:`VersionRef` / :class:`~repro.core.query.Query`, so references
    bind to a snapshot exactly as they bind to a database -- but every
    read resolves against the pinned epoch, without the storage mutex and
    without object locks.  Writes raise
    :class:`~repro.errors.ReadOnlySnapshotError`.

    Use as a context manager (``with db.snapshot() as snap: ...``) or
    call :meth:`close` explicitly to unpin.
    """

    def __init__(
        self,
        store: "VersionStore",
        registry: SnapshotRegistry,
        epoch: int,
        bytes_overlay: dict[Vid, bytes],
        index_source: Any = None,
        decoded: _EpochDecodedCache | None = None,
    ) -> None:
        self._store = store
        self._registry = registry
        self._epoch = epoch
        self._bytes_overlay = bytes_overlay
        self._entry_overlay: dict[Oid, SnapshotEntry | None] = {}
        self._type_overlay: dict[str, tuple[Oid, ...]] = {}
        # ``decoded`` lets the registry hand every same-epoch snapshot
        # one shared cache; a standalone snapshot gets a private one.
        self._decoded = (
            decoded
            if decoded is not None
            else BudgetedLRU(_SNAPSHOT_DECODED_ENTRIES, lambda _o: 1)
        )
        #: Per-snapshot memo of index resolutions (the satellite fix for
        #: Query._indexed_domain re-walking the index every iteration).
        self._domain_cache: dict[Any, list[Oid] | None] = {}
        self._index_source = index_source
        self._closed = False
        # The store module imports this one, so grab its helpers lazily
        # (the module is fully initialized by the time snapshots exist).
        from repro.core import store as store_mod

        self._full_kind = store_mod._FULL
        self._is_shareable = store_mod._is_shareable

    # -- lifecycle -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The publication epoch this snapshot pinned."""
        return self._epoch

    @property
    def pinned(self) -> bool:
        """True until :meth:`close`."""
        return not self._closed

    @property
    def store(self) -> "VersionStore":
        """The underlying store (makes snapshot-bound refs compare equal
        to database-bound refs into the same store)."""
        return self._store

    def close(self) -> None:
        """Unpin; the registry reclaims whatever only this snapshot kept."""
        if not self._closed:
            self._closed = True
            self._registry.unpin(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "pinned" if not self._closed else "closed"
        return f"Snapshot(epoch={self._epoch}, {state})"

    # -- entry resolution (double-checked against publish) --------------------

    def _lookup(self, oid: Oid) -> SnapshotEntry | None:
        """The entry this snapshot sees for ``oid`` (None = no object).

        Probe order: own overlay, committed table, overlay again.  The
        publisher stashes the displaced entry into the overlay *before*
        overwriting the committed slot, so a racing reader that missed
        the overlay and then saw the post-publish slot is guaranteed to
        find the stash on the re-check.
        """
        overlay = self._entry_overlay
        got = overlay.get(oid, _MISS)
        if got is not _MISS:
            return got
        entry = self._store._committed.get(oid)
        got = overlay.get(oid, _MISS)
        if got is not _MISS:
            return got
        return entry

    def _entry(self, oid: Oid) -> SnapshotEntry:
        entry = self._lookup(oid)
        if entry is None:
            raise UnknownObjectError(f"no persistent object {oid!r}")
        return entry

    def _deref_entry(self, oid: Oid) -> SnapshotEntry:
        entry = self._lookup(oid)
        if entry is None:
            raise DanglingReferenceError(f"object {oid!r} no longer exists")
        return entry

    # -- payload bytes ---------------------------------------------------------

    def _node_payload(self, vid: Vid, data: tuple) -> tuple[bytes, bool]:
        """``(payload, from_overlay)`` for one graph node's stored record.

        A heap read is re-checked against the byte overlay: the writer
        stashes pre-op content *before* rewriting the record, so if the
        record changed under us the stash is there, and if the stash is
        not there the record we read is the snapshot's content.
        """
        content = self._bytes_overlay.get(vid)
        if content is not None:
            return content, True
        _kind, page_id, slot = data
        try:
            raw = self._store._versions.read(Rid(page_id, slot))
        except StorageError:
            # A writer deleted the record under us; it stashed the content
            # first, so the overlay must have it -- anything else is a
            # genuine storage failure.
            content = self._bytes_overlay.get(vid)
            if content is not None:
                return content, True
            raise
        content = self._bytes_overlay.get(vid)
        if content is not None:
            return content, True
        try:
            return self._store._resolve_payload(raw), False
        except BlobMissingError:
            # The record we read was displaced and its blob reclaimed
            # between our heap read and the file open.  The displacing
            # writer stashed the content before touching the record, so
            # the overlay must cover us -- a miss here is a refcount bug.
            content = self._bytes_overlay.get(vid)
            if content is not None:
                return content, True
            raise

    def _version_bytes(self, entry: SnapshotEntry, oid: Oid, serial: int) -> bytes:
        """Materialized content of one version, per this snapshot.

        Probe order per chain node: byte overlay -> shared bytes cache
        (re-checked against the overlay) -> heap record under the page
        stripes (re-checked again).  The result lands in the shared cache
        only when no overlay was involved anywhere along the chain -- an
        overlay hit means live bytes have diverged from this snapshot.
        """
        store = self._store
        vid = Vid(oid, serial)
        content = self._bytes_overlay.get(vid)
        if content is not None:
            return content
        cached = store._bytes_cache.get(vid)
        if cached is not None:
            content = self._bytes_overlay.get(vid)
            return content if content is not None else cached
        graph = entry.graph
        chain: list[int] = []  # delta serials to apply, newest first
        overlay_used = False
        current: int | None = serial
        while True:
            if current is None:
                raise VersionError(f"delta chain of {oid!r} has no full-copy root")
            step_vid = Vid(oid, current)
            if current != serial:
                content = self._bytes_overlay.get(step_vid)
                if content is not None:
                    overlay_used = True
                    break
                cached = store._bytes_cache.get(step_vid)
                if cached is not None:
                    content = self._bytes_overlay.get(step_vid)
                    if content is not None:
                        overlay_used = True
                    else:
                        content = cached
                    break
            node = graph.node(current)
            if node.data[0] == self._full_kind:
                content, from_overlay = self._node_payload(step_vid, node.data)
                overlay_used = overlay_used or from_overlay
                break
            chain.append(current)
            current = node.dprev
        for step in reversed(chain):
            payload, from_overlay = self._node_payload(
                Vid(oid, step), graph.node(step).data
            )
            if from_overlay:
                # The overlay holds full content, superseding the chain
                # prefix assembled so far.
                content = payload
                overlay_used = True
            else:
                content = apply_delta(content, payload, store._stats)
        if not overlay_used:
            # Everything came from shared state that matches live bytes,
            # so the result is safe to share with the locked read path.
            store._cache_bytes(vid, content)
        return content

    # -- store protocol: reads -------------------------------------------------

    def latest_vid(self, oid: Oid) -> Vid:
        """The version id the object id denotes in this snapshot."""
        entry = self._deref_entry(oid)
        self._registry.lockfree_hits += 1
        return Vid(oid, entry.latest_serial)

    def materialize(self, vid: Vid) -> Any:
        """Decode a fresh copy of the version as of this snapshot."""
        hooks.sched_point("snap.read")
        entry = self._deref_entry(vid.oid)
        if vid.serial not in entry.graph:
            raise DanglingReferenceError(f"version {vid!r} no longer exists")
        content = self._version_bytes(entry, vid.oid, vid.serial)
        self._registry.lockfree_hits += 1
        return serialization.decode(content)

    def read_attr(self, vid: Vid, name: str) -> Any:
        """Attribute-read fast path over this snapshot's private decodes."""
        hooks.sched_point("snap.read")
        entry = self._deref_entry(vid.oid)
        if vid.serial not in entry.graph:
            raise DanglingReferenceError(f"version {vid!r} no longer exists")
        obj = self._decoded.get(vid)
        if obj is None:
            content = self._version_bytes(entry, vid.oid, vid.serial)
            obj = serialization.decode(content)
            self._decoded.put(vid, obj)
        self._registry.lockfree_hits += 1
        value = getattr(obj, name)
        if _inspect.ismethod(value) and value.__self__ is obj:
            return READ_MISS
        if self._is_shareable(value):
            return value
        return READ_MISS

    def read_latest_attr(self, oid: Oid, name: str) -> Any:
        """``read_attr(latest_vid(oid), name)`` with one entry resolution.

        The network server's inline read lane calls this once per wire
        request, so the oid -> entry probe, the epoch counter bump and
        the decoded-cache lookup are fused into a single pass.
        """
        hooks.sched_point("snap.read")
        entry = self._deref_entry(oid)
        obj = entry.latest_decoded
        if obj is None:
            content = self._version_bytes(entry, oid, entry.latest_serial)
            obj = serialization.decode(content)
            entry.latest_decoded = obj
        self._registry.lockfree_hits += 1
        value = getattr(obj, name)
        if _inspect.ismethod(value) and value.__self__ is obj:
            return READ_MISS
        if self._is_shareable(value):
            return value
        return READ_MISS

    def object_exists(self, oid: Oid) -> bool:
        """True while the object exists in this snapshot."""
        return self._lookup(oid) is not None

    def version_exists(self, vid: Vid) -> bool:
        """True while the specific version exists in this snapshot."""
        entry = self._lookup(vid.oid)
        return entry is not None and vid.serial in entry.graph

    def type_name(self, oid: Oid) -> str:
        """Stable type name of the object's class."""
        return self._entry(oid).type_name

    def graph(self, oid: Oid) -> "VersionGraph":
        """The frozen version graph published into this snapshot."""
        return self._entry(oid).graph

    # -- store protocol: writes (refused) --------------------------------------

    def _read_only(self, op: str) -> ReadOnlySnapshotError:
        return ReadOnlySnapshotError(
            f"snapshot (epoch {self._epoch}) is read-only: {op} is not allowed"
        )

    def pnew(self, obj: Any, log_op: Any = None) -> Ref:
        raise self._read_only("pnew")

    def newversion(self, target: Any, log_op: Any = None) -> VersionRef:
        raise self._read_only("newversion")

    def pdelete(self, target: Any, log_op: Any = None) -> None:
        raise self._read_only("pdelete")

    def write_version(self, vid: Vid, obj: Any, log_op: Any = None) -> None:
        raise self._read_only("write_version")

    def write_version_if_changed(self, vid: Vid, obj: Any, log_op: Any = None) -> bool:
        """False for a no-op write-back; raises when a write is needed.

        Lets pure reader methods run through snapshot-bound refs (the
        write-back layer calls this after every method call); a method
        that actually mutated its receiver still fails read-only.
        """
        entry = self._lookup(vid.oid)
        if entry is not None and vid.serial in entry.graph:
            stored = self._version_bytes(entry, vid.oid, vid.serial)
            if serialization.encode(unwrap_ids(obj)) == stored:
                return False
        raise self._read_only("write_version")

    # -- traversal (paper §4) ---------------------------------------------------

    def _resolve(self, target: Ref | VersionRef | Oid | Vid) -> Vid:
        if isinstance(target, Ref):
            return self.latest_vid(target.oid)
        if isinstance(target, Oid):
            return self.latest_vid(target)
        if isinstance(target, VersionRef):
            return target.vid
        if isinstance(target, Vid):
            return target
        raise TypeError(f"expected a reference or id, got {type(target).__qualname__}")

    @staticmethod
    def _oid_of(target: Ref | VersionRef | Oid | Vid) -> Oid:
        if isinstance(target, (Ref, VersionRef)):
            return target.oid
        if isinstance(target, Vid):
            return target.oid
        return target

    def _graph_of(self, vid: Vid) -> "VersionGraph":
        graph = self._entry(vid.oid).graph
        if vid.serial not in graph:
            raise UnknownVersionError(f"no live version with serial {vid.serial}")
        return graph

    def dprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The version ``vref`` was derived from, in this snapshot."""
        vid = self._resolve(vref)
        serial = self._graph_of(vid).dprevious(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def dnext(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """Versions derived from ``vref`` (revisions and variants)."""
        vid = self._resolve(vref)
        return [
            VersionRef(self, Vid(vid.oid, s))
            for s in self._graph_of(vid).dnext(vid.serial)
        ]

    def tprevious(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally preceding version."""
        vid = self._resolve(vref)
        serial = self._graph_of(vid).tprevious(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def tnext(self, vref: VersionRef | Vid) -> VersionRef | None:
        """The temporally following version."""
        vid = self._resolve(vref)
        serial = self._graph_of(vid).tnext(vid.serial)
        return None if serial is None else VersionRef(self, Vid(vid.oid, serial))

    def history(self, vref: VersionRef | Vid) -> list[VersionRef]:
        """Derivation path of ``vref``, newest first."""
        vid = self._resolve(vref)
        return [
            VersionRef(self, Vid(vid.oid, s))
            for s in self._graph_of(vid).history(vid.serial)
        ]

    def version_as_of(self, target: Ref | Oid, timestamp: float) -> VersionRef | None:
        """The version that was latest at ``timestamp``, per this snapshot."""
        oid = self._oid_of(target)
        serial = self._entry(oid).graph.latest_at(timestamp)
        return None if serial is None else VersionRef(self, Vid(oid, serial))

    def versions(self, target: Ref | Oid) -> list[VersionRef]:
        """All versions of the object in this snapshot, oldest first."""
        oid = self._oid_of(target)
        return [VersionRef(self, Vid(oid, s)) for s in self._entry(oid).graph.serials()]

    def leaves(self, target: Ref | Oid) -> list[VersionRef]:
        """Up-to-date version of every alternative (derivation leaves)."""
        oid = self._oid_of(target)
        return [VersionRef(self, Vid(oid, s)) for s in self._entry(oid).graph.leaves()]

    def alternatives(self, target: Ref | Oid) -> list[list[VersionRef]]:
        """Every root-to-leaf derivation path."""
        oid = self._oid_of(target)
        return [
            [VersionRef(self, Vid(oid, s)) for s in path]
            for path in self._entry(oid).graph.alternatives()
        ]

    def version_count(self, target: Ref | Oid) -> int:
        """Number of versions of the object in this snapshot."""
        return len(self._entry(self._oid_of(target)).graph)

    def deref(self, ident: Oid | Vid) -> Ref | VersionRef:
        """Bind an id into a snapshot-bound reference."""
        if isinstance(ident, Oid):
            return Ref(self, ident)
        if isinstance(ident, Vid):
            return VersionRef(self, ident)
        raise TypeError(f"expected Oid or Vid, got {type(ident).__qualname__}")

    # -- clusters & queries ------------------------------------------------------

    def _type_key(self, type_or_name: type | str) -> str:
        if isinstance(type_or_name, str):
            return type_or_name
        resolved = serialization.registered_name(type_or_name)
        if resolved is not None:
            return resolved
        return f"{type_or_name.__module__}.{type_or_name.__qualname__}"

    def _cluster_members(self, name: str) -> tuple[Oid, ...]:
        overlay = self._type_overlay
        got = overlay.get(name, _MISS)
        if got is _MISS:
            members = self._store._committed_by_type.get(name, ())
            got = overlay.get(name, _MISS)
            if got is _MISS:
                got = members
        return got or ()

    def cluster(self, type_or_name: type | str) -> list[Ref]:
        """Snapshot-bound generic references to every object of the type."""
        name = self._type_key(type_or_name)
        out = []
        for oid in self._cluster_members(name):
            entry = self._lookup(oid)
            if entry is not None and entry.type_name == name:
                out.append(Ref(self, oid))
        return out

    def cluster_names(self) -> list[str]:
        """Type names with at least one object in this snapshot."""
        names = set(list(self._store._committed_by_type)) | set(self._type_overlay)
        out = []
        for name in names:
            for oid in self._cluster_members(name):
                entry = self._lookup(oid)
                if entry is not None and entry.type_name == name:
                    out.append(name)
                    break
        return sorted(out)

    def all_objects(self) -> Iterator[Ref]:
        """Snapshot-bound references to every object, oid order."""
        oids = set(list(self._store._committed))
        for oid, entry in list(self._entry_overlay.items()):
            if entry is None:
                oids.discard(oid)
            else:
                oids.add(oid)
        for oid in sorted(oids):
            if self._lookup(oid) is not None:
                yield Ref(self, oid)

    def object_count(self) -> int:
        """Number of objects in this snapshot."""
        return sum(1 for _ in self.all_objects())

    def query(self, type_or_name: type | str) -> Any:
        """A ``suchthat`` query evaluated against this snapshot."""
        from repro.core.query import Query

        return Query(self, type_or_name)

    # -- index probes ------------------------------------------------------------

    def _divergent_oids(self) -> set[Oid]:
        """Objects whose snapshot state may disagree with the live index:
        republished since the pin (entry overlay) or rewritten by an
        uncommitted transaction (byte overlay)."""
        out: set[Oid] = set(self._entry_overlay)
        out.update(vid.oid for vid in list(self._bytes_overlay))
        return out

    def _index_candidates(self, type_name: str, oids: list[Oid]) -> list[Oid]:
        candidates = set(oids)
        candidates |= self._divergent_oids()
        out = []
        for oid in sorted(candidates):
            entry = self._lookup(oid)
            if entry is not None and entry.type_name == type_name:
                out.append(oid)
        return out

    def index_lookup(self, type_name: str, attr: str, value: Any) -> list[Oid] | None:
        """Index probe for the query layer, memoized per snapshot.

        The live index reflects live latest-state, so objects that have
        diverged from this snapshot (in either direction) are always
        added back as candidates -- the query's predicate re-check, which
        reads *through the snapshot*, gives the exact answer.
        """
        if self._index_source is None:
            return None
        key = ("eq", type_name, attr, value)
        try:
            cached = self._domain_cache.get(key, _MISS)
        except TypeError:  # unhashable probe value: skip memoization
            key = None
            cached = _MISS
        if cached is not _MISS:
            return cached
        try:
            oids = self._index_source.index_lookup(type_name, attr, value)
        except RuntimeError:
            # The live index mutated mid-probe; fall back to a scan.
            return None
        result = None if oids is None else self._index_candidates(type_name, oids)
        if key is not None:
            self._domain_cache[key] = result
        return result

    def index_lookup_range(
        self, type_name: str, attr: str, lo: Any, hi: Any
    ) -> list[Oid] | None:
        """Ordered-index probe for the query layer, memoized per snapshot."""
        if self._index_source is None:
            return None
        key = ("range", type_name, attr, lo, hi)
        try:
            cached = self._domain_cache.get(key, _MISS)
        except TypeError:
            key = None
            cached = _MISS
        if cached is not _MISS:
            return cached
        try:
            oids = self._index_source.index_lookup_range(type_name, attr, lo, hi)
        except RuntimeError:
            return None
        result = None if oids is None else self._index_candidates(type_name, oids)
        if key is not None:
            self._domain_cache[key] = result
        return result
