"""The DMS CAD design-database workload (paper §5).

Paper §5 illustrates the versioning facilities by modelling "a CAD design
evolution ... an abbreviated version of our simulation of the DMS design
database system [26] being used in our VLSI design laboratory":

    "We will design an ALU chip that has several representations of which
    we will only consider three in this example: schematic, fault and
    timing.  Each representation consists of a set of data objects.  The
    schematic representation only consists of the schematic data. ...
    The timing representation consists of the schematic data (same as the
    one in the schematic representation), vectors (same as the one in the
    fault representation), and timing commands."

We model the data objects (:class:`SchematicData`, :class:`TestVectors`,
:class:`FaultCommands`, :class:`TimingCommands`), build the three
representations as configurations (each representation "can be thought of
as a configuration", §5), and assemble the ALU as a complex object holding
its representations.  :func:`build_alu_design` creates the initial design
state; :class:`DesignEvolution` then drives a seeded random evolution --
revisions, variants, releases -- through the public API, which is the
workload for experiments E4 and E8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.database import Database
from repro.core.persistent import persistent
from repro.core.pointers import Ref, VersionRef
from repro.policies.configuration import Configuration, freeze, resolve


@persistent(name="dms.SchematicData")
class SchematicData:
    """The schematic netlist of a chip: cells and the nets wiring them."""

    def __init__(self, cells: list[str], nets: list[tuple[str, str]]) -> None:
        self.cells = cells
        self.nets = nets
        self.revision_note = "initial"

    def add_cell(self, cell: str, connect_to: str | None = None) -> None:
        """Add a cell, optionally wiring it to an existing cell."""
        self.cells.append(cell)
        if connect_to is not None:
            self.nets.append((connect_to, cell))


@persistent(name="dms.TestVectors")
class TestVectors:
    """Stimulus vectors shared by the fault and timing representations."""

    def __init__(self, patterns: list[str]) -> None:
        self.patterns = patterns

    def add_pattern(self, pattern: str) -> None:
        """Append one test pattern."""
        self.patterns.append(pattern)


@persistent(name="dms.FaultCommands")
class FaultCommands:
    """Fault-simulation commands of the fault representation."""

    def __init__(self, commands: list[str]) -> None:
        self.commands = commands


@persistent(name="dms.TimingCommands")
class TimingCommands:
    """Timing-analysis commands of the timing representation."""

    def __init__(self, commands: list[str]) -> None:
        self.commands = commands


@persistent(name="dms.Chip")
class Chip:
    """The ALU complex object: a chip with named representations.

    ``representations`` maps representation name -> the Oid of its
    configuration object (a generic reference: the chip always sees each
    representation's current configuration version).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.representations: dict[str, Any] = {}


@dataclass
class AluDesign:
    """Handles to every object of the initial ALU design state."""

    chip: Ref
    schematic_data: Ref
    vectors: Ref
    fault_commands: Ref
    timing_commands: Ref
    schematic_rep: Ref
    fault_rep: Ref
    timing_rep: Ref

    def data_objects(self) -> list[Ref]:
        """The four leaf data objects."""
        return [
            self.schematic_data,
            self.vectors,
            self.fault_commands,
            self.timing_commands,
        ]

    def representations(self) -> dict[str, Ref]:
        """Representation name -> configuration reference."""
        return {
            "schematic": self.schematic_rep,
            "fault": self.fault_rep,
            "timing": self.timing_rep,
        }


def build_alu_design(db: Database, name: str = "alu") -> AluDesign:
    """Create the paper's initial design state (§5, step 1).

    The three representations are configurations over the shared data
    objects, all bound *dynamically* at first (development mode): the
    schematic representation sees the schematic data; the fault
    representation sees the vectors and fault commands; the timing
    representation sees the schematic data, the same vectors, and the
    timing commands.
    """
    schematic_data = db.pnew(
        SchematicData(
            cells=["alu_core", "carry_chain", "flag_logic"],
            nets=[("alu_core", "carry_chain"), ("alu_core", "flag_logic")],
        )
    )
    vectors = db.pnew(TestVectors(["0101", "1010", "1111"]))
    fault_commands = db.pnew(FaultCommands(["inject stuck-at-0", "report coverage"]))
    timing_commands = db.pnew(TimingCommands(["trace critical-path", "report slack"]))

    schematic_rep = db.pnew(Configuration("schematic"))
    schematic_rep.bind_dynamic("schematic", schematic_data)

    fault_rep = db.pnew(Configuration("fault"))
    fault_rep.bind_dynamic("schematic", schematic_data)
    fault_rep.bind_dynamic("vectors", vectors)
    fault_rep.bind_dynamic("commands", fault_commands)

    timing_rep = db.pnew(Configuration("timing"))
    timing_rep.bind_dynamic("schematic", schematic_data)
    timing_rep.bind_dynamic("vectors", vectors)
    timing_rep.bind_dynamic("commands", timing_commands)

    chip = db.pnew(Chip(name))
    with chip.modify() as c:
        c.representations = {
            "schematic": schematic_rep.oid,
            "fault": fault_rep.oid,
            "timing": timing_rep.oid,
        }
    return AluDesign(
        chip=chip,
        schematic_data=schematic_data,
        vectors=vectors,
        fault_commands=fault_commands,
        timing_commands=timing_commands,
        schematic_rep=schematic_rep,
        fault_rep=fault_rep,
        timing_rep=timing_rep,
    )


def revise_schematic(db: Database, design: AluDesign, note: str) -> VersionRef:
    """Create a schematic revision (paper §5, step 2: change the state).

    A new version of the schematic data is derived from the latest; every
    representation bound *dynamically* to the schematic sees it at once,
    while frozen (released) representation versions keep the old one.
    """
    revision = db.newversion(design.schematic_data)
    with revision.modify() as data:
        data.add_cell(f"patch_{note}", connect_to="alu_core")
        data.revision_note = note
    return revision


def release_representation(db: Database, rep: Ref) -> VersionRef:
    """Release a representation: freeze its bindings at current latest."""
    return freeze(db, rep)


def representation_view(db: Database, rep: Ref | VersionRef) -> dict[str, Any]:
    """Materialize every component a representation currently binds."""
    return {
        component: resolve(db, rep, component).deref()
        for component in rep.components()
    }


@dataclass
class EvolutionLog:
    """What a random design evolution did (asserted on by tests)."""

    revisions: int = 0
    variants: int = 0
    releases: int = 0
    vector_updates: int = 0
    created: list[Any] = field(default_factory=list)


class DesignEvolution:
    """Seeded random design-evolution driver over an ALU design.

    Each step is one designer action: revise the schematic, fork a variant
    of the schematic from an older version, extend the test vectors, or
    release a representation.  Deterministic for a given seed, so
    benchmarks and property tests can replay identical histories.
    """

    def __init__(self, db: Database, design: AluDesign, seed: int = 0) -> None:
        self._db = db
        self._design = design
        self._rng = random.Random(seed)
        self.log = EvolutionLog()

    def step(self) -> str:
        """Perform one random action; returns the action name."""
        roll = self._rng.random()
        if roll < 0.45:
            self._revise()
            return "revise"
        if roll < 0.65:
            self._variant()
            return "variant"
        if roll < 0.85:
            self._update_vectors()
            return "vectors"
        self._release()
        return "release"

    def run(self, steps: int) -> EvolutionLog:
        """Run ``steps`` actions and return the accumulated log."""
        for _ in range(steps):
            self.step()
        return self.log

    def _revise(self) -> None:
        note = f"r{self.log.revisions}"
        vref = revise_schematic(self._db, self._design, note)
        self.log.revisions += 1
        self.log.created.append(vref.vid)

    def _variant(self) -> None:
        versions = self._db.versions(self._design.schematic_data)
        base = self._rng.choice(versions)
        vref = self._db.newversion(base)
        with vref.modify() as data:
            data.revision_note = f"variant_of_{base.vid.serial}"
        self.log.variants += 1
        self.log.created.append(vref.vid)

    def _update_vectors(self) -> None:
        pattern = format(self._rng.getrandbits(8), "08b")
        self._design.vectors.add_pattern(pattern)
        self.log.vector_updates += 1

    def _release(self) -> None:
        reps = list(self._design.representations().values())
        rep = self._rng.choice(reps)
        release = release_representation(self._db, rep)
        self.log.releases += 1
        self.log.created.append(release.vid)
