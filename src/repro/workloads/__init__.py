"""Workload generators: the paper's examples as executable scenarios.

* :mod:`repro.workloads.cad` -- the §5 DMS ALU design-evolution workload;
* :mod:`repro.workloads.history` -- the §3 address-book and ledger
  historical-database workloads;
* :mod:`repro.workloads.synthetic` -- seeded topology and payload
  generators for benchmarks and property tests.
"""

from repro.workloads.cad import (
    AluDesign,
    Chip,
    DesignEvolution,
    FaultCommands,
    SchematicData,
    TestVectors,
    TimingCommands,
    build_alu_design,
    release_representation,
    representation_view,
    revise_schematic,
)
from repro.workloads.history import (
    Account,
    AddressBook,
    AddressBookScenario,
    LedgerScenario,
    Person,
    address_as_of,
    address_history,
    audit_trail,
    balance_as_of,
    build_address_book,
    build_ledger,
    current_addresses,
    move_person,
    post,
)
from repro.workloads.synthetic import (
    Blob,
    make_chain,
    make_random_tree,
    make_star,
    mutate_payload,
    random_payload,
)

__all__ = [
    "AluDesign",
    "Chip",
    "DesignEvolution",
    "FaultCommands",
    "SchematicData",
    "TestVectors",
    "TimingCommands",
    "build_alu_design",
    "release_representation",
    "representation_view",
    "revise_schematic",
    "Account",
    "AddressBook",
    "AddressBookScenario",
    "LedgerScenario",
    "Person",
    "address_as_of",
    "address_history",
    "audit_trail",
    "balance_as_of",
    "build_address_book",
    "build_ledger",
    "current_addresses",
    "move_person",
    "post",
    "Blob",
    "make_chain",
    "make_random_tree",
    "make_star",
    "mutate_payload",
    "random_payload",
]
