"""Synthetic version-topology and payload generators.

Used by the property-based tests and by every parameter-sweep benchmark:

* topology builders: derivation **chains** (revision after revision),
  **stars** (many variants of one base), and seeded **random trees** with a
  controlled branching tendency;
* payload generators: byte blobs of a given size and a mutator that edits
  a controlled fraction of a blob (the edit-ratio knob of experiment E5).
"""

from __future__ import annotations

import random

from repro.core.database import Database
from repro.core.persistent import persistent
from repro.core.pointers import Ref, VersionRef


@persistent(name="synthetic.Blob")
class Blob:
    """A payload-carrying object for storage experiments."""

    def __init__(self, data: bytes, tag: str = "") -> None:
        self.data = data
        self.tag = tag


def random_payload(size: int, seed: int = 0) -> bytes:
    """``size`` pseudo-random bytes, deterministic per seed."""
    return random.Random(seed).randbytes(size)


def mutate_payload(data: bytes, edit_ratio: float, seed: int = 0) -> bytes:
    """Edit ``edit_ratio`` of ``data`` in a few contiguous runs.

    Contiguous runs (rather than scattered single bytes) model real edits
    -- a designer changes a region of a netlist -- and are also the shape
    block deltas are designed for.
    """
    if not 0.0 <= edit_ratio <= 1.0:
        raise ValueError("edit_ratio must be in [0, 1]")
    rng = random.Random(seed)
    out = bytearray(data)
    to_edit = int(len(data) * edit_ratio)
    runs = max(1, to_edit // 64)
    for _ in range(runs):
        run = max(1, to_edit // runs)
        if len(out) <= run:
            start = 0
            run = len(out)
        else:
            start = rng.randrange(len(out) - run)
        out[start : start + run] = rng.randbytes(run)
    return bytes(out)


def make_chain(db: Database, length: int, payload_size: int = 256, seed: int = 0) -> list[VersionRef]:
    """A pure revision chain: v0 <- v1 <- ... <- v(length-1).

    Each revision edits ~5% of the payload.  Returns the versions oldest
    first.
    """
    data = random_payload(payload_size, seed)
    ref = db.pnew(Blob(data, tag="chain"))
    versions = [ref.pin()]
    for i in range(1, length):
        version = db.newversion(ref)
        data = mutate_payload(data, 0.05, seed=seed + i)
        version.data = data
        versions.append(version)
    return versions


def make_star(db: Database, variants: int, payload_size: int = 256, seed: int = 0) -> tuple[VersionRef, list[VersionRef]]:
    """One base version with ``variants`` variants derived directly from it.

    Returns ``(base, variants)`` -- the paper's alternatives pattern.
    """
    data = random_payload(payload_size, seed)
    ref = db.pnew(Blob(data, tag="star"))
    base = ref.pin()
    out: list[VersionRef] = []
    for i in range(variants):
        version = db.newversion(base)
        version.tag = f"variant{i}"
        out.append(version)
    return base, out


def make_random_tree(
    db: Database,
    n_versions: int,
    branchiness: float = 0.3,
    payload_size: int = 256,
    seed: int = 0,
) -> tuple[Ref, list[VersionRef]]:
    """A seeded random derivation tree with ``n_versions`` total versions.

    With probability ``branchiness`` each new version derives from a
    uniformly random older version (creating a variant); otherwise from the
    latest (a revision).  Returns ``(object ref, versions oldest first)``.
    """
    if n_versions < 1:
        raise ValueError("need at least one version")
    rng = random.Random(seed)
    data = random_payload(payload_size, seed)
    ref = db.pnew(Blob(data, tag="tree"))
    versions = [ref.pin()]
    for i in range(1, n_versions):
        if rng.random() < branchiness:
            base = rng.choice(versions)
        else:
            base = versions[-1]
        version = db.newversion(base)
        version.data = mutate_payload(data, 0.05, seed=seed + i)
        versions.append(version)
    return ref, versions
