"""Historical-database workloads (paper §3's motivation for temporal order).

Paper §3: versions "ordered temporally according to their creation time ...
is important for historical databases, such as those used in accounting,
legal, and financial applications, that must access the past states of the
database [14, 29], and for supporting time in databases [30]", and the
address-book example: "an address-book object that keeps track of current
addresses requires references to the latest versions of person objects to
access their latest addresses (generic, dynamic or late binding)".

Two workloads:

* **Address book** -- Person objects referenced generically by an
  AddressBook.  Every move creates a *new version* of the person, so the
  book always reads current addresses through generic references while
  every past address stays reachable through the temporal chain.
* **Ledger** -- Account objects where every posting is a new version
  carrying the running balance; ``balance_as_of`` audits any past state.

Experiment E12 runs these against the kernel and against the linear
baseline (which is genuinely good at this shape of history -- the paper
concedes linear models target exactly historical databases).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.database import Database
from repro.core.persistent import persistent
from repro.core.pointers import Ref, VersionRef


@persistent(name="hist.Person")
class Person:
    """A person with a current address."""

    def __init__(self, name: str, address: str) -> None:
        self.name = name
        self.address = address


@persistent(name="hist.AddressBook")
class AddressBook:
    """Holds *generic* references (Oids) so it always reads latest addresses."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self.entries: list = []  # list of Oid

    def add(self, person_oid) -> None:
        """Add a person by generic reference."""
        self.entries.append(person_oid)


def move_person(db: Database, person: Ref, new_address: str) -> VersionRef:
    """A person moves: record it as a new version (history preserved)."""
    version = db.newversion(person)
    version.address = new_address
    return version


def current_addresses(db: Database, book: Ref) -> dict[str, str]:
    """Read every entry's *latest* address through its generic reference."""
    out: dict[str, str] = {}
    for entry in book.entries:  # entries come back as bound Refs
        out[entry.name] = entry.address
    return out


def address_history(db: Database, person: Ref) -> list[str]:
    """Every address the person ever had, oldest first (temporal chain)."""
    return [v.address for v in db.versions(person)]


def address_as_of(db: Database, person: Ref, index: int) -> str:
    """The address as of the ``index``-th state (0 = original)."""
    return db.versions(person)[index].address


@dataclass
class AddressBookScenario:
    """Handles produced by :func:`build_address_book`."""

    book: Ref
    people: list[Ref]


def build_address_book(
    db: Database, n_people: int = 10, moves_per_person: int = 3, seed: int = 0
) -> AddressBookScenario:
    """Create a book of ``n_people`` and move each ``moves_per_person`` times."""
    rng = random.Random(seed)
    book = db.pnew(AddressBook("alice"))
    people: list[Ref] = []
    for i in range(n_people):
        person = db.pnew(Person(f"person{i}", f"{i} First St"))
        book.add(person)
        people.append(person)
    for person in people:
        for move in range(moves_per_person):
            move_person(db, person, f"{rng.randrange(1000)} Move{move} Ave")
    return AddressBookScenario(book=book, people=people)


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------


@persistent(name="hist.Account")
class Account:
    """An account whose every posting is a new version (auditable)."""

    def __init__(self, owner: str, balance: int = 0) -> None:
        self.owner = owner
        self.balance = balance
        self.last_posting = "open"


def post(db: Database, account: Ref, amount: int, memo: str) -> VersionRef:
    """Apply a posting as a new version carrying the running balance."""
    version = db.newversion(account)
    with version.modify() as acct:
        acct.balance += amount
        acct.last_posting = memo
    return version


def balance_as_of(db: Database, account: Ref, posting_index: int) -> int:
    """The balance after the ``posting_index``-th state (0 = opening)."""
    return db.versions(account)[posting_index].balance


def audit_trail(db: Database, account: Ref) -> list[tuple[str, int]]:
    """Every (memo, balance) state, oldest first."""
    return [(v.last_posting, v.balance) for v in db.versions(account)]


@dataclass
class LedgerScenario:
    """Handles produced by :func:`build_ledger`."""

    accounts: list[Ref]
    postings: int


def build_ledger(
    db: Database, n_accounts: int = 4, n_postings: int = 50, seed: int = 0
) -> LedgerScenario:
    """Open accounts and apply ``n_postings`` random postings across them."""
    rng = random.Random(seed)
    accounts = [db.pnew(Account(f"acct{i}", balance=1000)) for i in range(n_accounts)]
    for i in range(n_postings):
        account = rng.choice(accounts)
        amount = rng.randrange(-200, 201)
        post(db, account, amount, f"posting{i}")
    return LedgerScenario(accounts=accounts, postings=n_postings)
