"""Disk manager: page-granular I/O against a single database file.

The database file is an array of :data:`~repro.storage.pages.PAGE_SIZE`-byte
pages.  Page 0 is the *meta page* owned by the disk manager itself; it holds
a magic number, a format version, and the allocated page count, so a
reopened file can be validated before any higher layer touches it.

Free pages are tracked with an in-file free list threaded through the first
eight bytes of each free page.  The disk manager is deliberately simple --
no extents, no bitmaps -- because correctness under crash/reopen (exercised
by the recovery tests) matters more here than allocation locality.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Callable

from repro.errors import DiskError
from repro.storage import faults
from repro.storage.pages import PAGE_SIZE

_MAGIC = b"ODEPYDB1"
_META = struct.Struct("<8sIIQ")  # magic, format_version, reserved, num_pages
_FREE_LINK = struct.Struct("<Q")  # next free page id (0 == end of list)
_FORMAT_VERSION = 1

#: Page id of the disk manager's own meta page.
META_PAGE_ID = 0

#: Sentinel meaning "no page" in the free list.
_NO_PAGE = 0


class DiskManager:
    """Allocate, read, and write fixed-size pages in one file.

    Thread-safe: a single lock guards the file offset and the free list.
    The manager never interprets page contents (other than free-list links
    in pages it knows are free).
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        existed = os.path.exists(self._path) and os.path.getsize(self._path) > 0
        # "r+b" requires the file to exist; create it first when it does not.
        if not existed:
            with open(self._path, "wb"):
                pass
        self._file = open(self._path, "r+b", buffering=0)
        self._free_head = _NO_PAGE
        #: Total page-write / fsync attempts that failed survivably.
        self.write_failures = 0
        self._consecutive_failures = 0
        #: Consecutive failures that count as persistent storage failure.
        self.failure_threshold = 3
        #: Called once (with a reason) when the threshold is crossed.
        self.on_persistent_failure: Callable[[str], None] | None = None
        self._failure_reported = False
        if existed:
            self._load_meta()
        else:
            self._num_pages = 1  # page 0 = meta
            self._file.truncate(PAGE_SIZE)
            self._write_meta()
            self.sync()

    # -- meta page -----------------------------------------------------------

    def _load_meta(self) -> None:
        self._file.seek(0)
        raw = self._file.read(PAGE_SIZE)
        if len(raw) < _META.size:
            raise DiskError(f"{self._path}: truncated meta page")
        magic, version, free_head, num_pages = _META.unpack_from(raw, 0)
        if magic == b"\x00" * len(_MAGIC) and version == 0 and num_pages == 0:
            # An all-zero meta page means creation crashed between extending
            # the file and writing the first meta page (nothing else zeroes
            # page 0: every later meta write rewrites the magic in place).
            # Nothing can have been stored yet -- re-initialize.
            self._num_pages = 1
            self._file.truncate(PAGE_SIZE)
            self._write_meta()
            self.sync()
            return
        if magic != _MAGIC:
            raise DiskError(f"{self._path}: not an ode-py database file")
        if version != _FORMAT_VERSION:
            raise DiskError(
                f"{self._path}: format version {version}, expected {_FORMAT_VERSION}"
            )
        self._free_head = free_head
        self._num_pages = num_pages
        actual = os.path.getsize(self._path) // PAGE_SIZE
        if actual < num_pages:
            raise DiskError(
                f"{self._path}: file has {actual} pages but meta claims {num_pages}"
            )

    def _write_meta(self) -> None:
        faults.fire("disk.write_meta.pre")
        buf = bytearray(PAGE_SIZE)
        _META.pack_into(buf, 0, _MAGIC, _FORMAT_VERSION, self._free_head, self._num_pages)
        self._file.seek(0)
        # A torn meta write is survivable by layout: the magic/version bytes
        # are rewritten with identical values, and free_head/num_pages only
        # ever lose an update (the file itself was already extended first).
        faults.write("disk.write_meta.write", self._file, bytes(buf))

    # -- properties ------------------------------------------------------------

    @property
    def path(self) -> str:
        """Path of the underlying database file."""
        return self._path

    @property
    def num_pages(self) -> int:
        """Number of allocated pages, including the meta page and free pages."""
        return self._num_pages

    # -- page I/O ---------------------------------------------------------------

    def allocate_page(self) -> int:
        """Allocate a fresh zeroed page and return its page id."""
        faults.fire("disk.allocate.pre")
        with self._lock:
            if self._free_head != _NO_PAGE:
                page_id = self._free_head
                self._file.seek(page_id * PAGE_SIZE)
                raw = self._file.read(_FREE_LINK.size)
                (next_free,) = _FREE_LINK.unpack(raw)
                self._free_head = next_free
                self._file.seek(page_id * PAGE_SIZE)
                self._file.write(bytes(PAGE_SIZE))
                self._write_meta()
            else:
                page_id = self._num_pages
                self._num_pages += 1
                self._file.seek(page_id * PAGE_SIZE)
                self._file.write(bytes(PAGE_SIZE))
                self._write_meta()
        faults.fire("disk.allocate.post")
        return page_id

    def ensure_allocated(self, page_id: int) -> None:
        """Extend the file so ``page_id`` exists (WAL replay support).

        Recovery replays logical heap operations that name page ids from the
        pre-crash run; those pages may never have been written back.  Pages
        created here are zeroed, which a heap file recognises as "format me".
        """
        if page_id == META_PAGE_ID:
            raise DiskError("page 0 is reserved for the disk manager")
        faults.fire("disk.ensure_allocated")
        with self._lock:
            if page_id < self._num_pages:
                return
            self._file.truncate((page_id + 1) * PAGE_SIZE)
            self._num_pages = page_id + 1
            self._write_meta()

    def free_page(self, page_id: int) -> None:
        """Return ``page_id`` to the free list.  The caller must not reuse it."""
        self._check_page_id(page_id)
        faults.fire("disk.free_page")
        with self._lock:
            buf = bytearray(PAGE_SIZE)
            _FREE_LINK.pack_into(buf, 0, self._free_head)
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(buf)
            self._free_head = page_id
            self._write_meta()

    def read_page(self, page_id: int) -> bytearray:
        """Read page ``page_id`` into a fresh mutable buffer."""
        self._check_page_id(page_id)
        with self._lock:
            self._file.seek(page_id * PAGE_SIZE)
            raw = self._file.read(PAGE_SIZE)
        if len(raw) != PAGE_SIZE:
            raise DiskError(f"short read of page {page_id} ({len(raw)} bytes)")
        return bytearray(raw)

    def write_page(self, page_id: int, data: bytes | bytearray) -> None:
        """Write a full page image to ``page_id``."""
        self._check_page_id(page_id)
        if len(data) != PAGE_SIZE:
            raise DiskError(f"page write must be {PAGE_SIZE} bytes, got {len(data)}")
        faults.fire("disk.write_page.pre")
        try:
            with self._lock:
                self._file.seek(page_id * PAGE_SIZE)
                faults.write("disk.write_page.write", self._file, bytes(data))
        except OSError:
            self._note_failure("data-file page write failed")
            raise
        else:
            self._note_success()
        faults.fire("disk.write_page.post")

    def _check_page_id(self, page_id: int) -> None:
        if page_id == META_PAGE_ID:
            raise DiskError("page 0 is reserved for the disk manager")
        if not 0 < page_id < self._num_pages:
            raise DiskError(f"page id {page_id} out of range (have {self._num_pages})")

    # -- lifecycle -----------------------------------------------------------

    def sync(self) -> None:
        """fsync the database file."""
        try:
            faults.fire("disk.sync.pre")
            self._file.flush()
            faults.fire("disk.sync.fsync")
            os.fsync(self._file.fileno())
            faults.fire("disk.sync.post")
        except OSError:
            self._note_failure("data-file fsync failed")
            raise
        else:
            self._note_success()

    def _note_failure(self, what: str) -> None:
        """Count a survivable I/O failure; report once past the threshold.

        Simulated process deaths (:class:`~repro.storage.faults.SimulatedCrash`
        is a ``BaseException``, not ``OSError``) never reach here -- only
        failures the process survives count towards "the disk is sick".
        """
        notify: Callable[[str], None] | None = None
        reason = ""
        with self._lock:
            self.write_failures += 1
            self._consecutive_failures += 1
            if (
                self._consecutive_failures >= self.failure_threshold
                and not self._failure_reported
                and self.on_persistent_failure is not None
            ):
                self._failure_reported = True
                notify = self.on_persistent_failure
                reason = f"{what} {self._consecutive_failures} consecutive times"
        if notify is not None:
            notify(reason)

    def _note_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0

    def close(self, sync: bool = True) -> None:
        """Flush and close the file.  Idempotent.

        ``sync=False`` skips the final meta write and fsync -- used when
        the database closes in degraded mode over a disk known to reject
        writes.
        """
        if self._file.closed:
            return
        if sync:
            with self._lock:
                self._write_meta()
            self.sync()
        self._file.close()

    def __enter__(self) -> DiskManager:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
