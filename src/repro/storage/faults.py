"""Deterministic fault injection for the storage layer.

Crash consistency is the paper's whole persistence promise (§6: persistent
objects "continue to exist after the program that created them has
terminated"), and it cannot be tested by waiting for real crashes.  This
module provides *failpoints*: named hooks threaded through the disk
manager, WAL, heap, and page layers at every boundary where a process
death or an I/O failure changes what reaches stable storage.  A test (or
the crash-matrix runner in :mod:`repro.tools.crashmatrix`) arms a
:class:`FaultPlan`, runs a workload, and the plan deterministically fires
one fault at a chosen hit of a chosen failpoint.

Supported fault actions:

* ``crash`` -- raise :class:`SimulatedCrash` and put the injector into the
  *crashed* state: every subsequent failpoint (i.e. every subsequent
  mutating I/O in the process) also raises, so nothing can touch the disk
  after the "process died".  The test then reopens the database directory
  the way a restarted process would.
* ``torn_write`` -- at a write-site failpoint, write only a prefix of the
  buffer (byte granularity) and then crash: the worst-case outcome of a
  real crash in the middle of a ``write(2)``.
* ``short_write`` -- write only a prefix and raise
  :class:`InjectedFaultError` *without* crashing: the process survives and
  must handle the failed write (the WAL's retry path is tested this way).
* ``fsync_error`` -- raise :class:`InjectedFaultError` in place of a
  successful ``fsync``: the caller must treat the commit as
  unacknowledged.

Fidelity note: this harness runs above a real filesystem, so bytes passed
to ``write`` are visible after a simulated crash even when no fsync
happened (the kindest possible page cache).  The torn-write action exists
precisely to simulate the *unkind* cache: it materializes the worst-case
partial write a crash-before-fsync could leave.  Recovery must cope with
both extremes; every real outcome lies in between.  Data-*page* writes are
assumed atomic at page granularity (the classic ARIES assumption absent
full-page logging); the WAL needs no such assumption because its frame
CRCs detect arbitrary tears.

The injector is installed process-globally (:func:`activate` /
:func:`deactivate`) so the storage layers need no constructor plumbing;
determinism comes from the plan itself -- a named failpoint plus a hit
ordinal is reproducible for a deterministic workload.  When no injector is
active every hook is a single global load and ``None`` check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = [
    "FAILPOINTS",
    "WRITE_FAILPOINTS",
    "ERROR_FAILPOINTS",
    "SimulatedCrash",
    "InjectedFaultError",
    "FaultPlan",
    "FaultInjector",
    "activate",
    "deactivate",
    "active",
    "fire",
    "write",
    "is_crashed",
    "stats",
]


class SimulatedCrash(BaseException):
    """The simulated process death.

    Derives from ``BaseException`` so that no ``except Exception`` /
    ``except OdeError`` handler in the stack can swallow it -- a crash is
    not an error the program observes; it simply stops running.
    """


class InjectedFaultError(OSError):
    """An injected I/O failure (failed write or fsync) the caller observes."""


#: Crash-site failpoints: a plain :func:`fire` call at a code boundary.
FAILPOINTS: tuple[str, ...] = (
    # -- WAL (repro.storage.wal) ------------------------------------------
    "wal.append",
    "wal.flush.pre_write",
    "wal.flush.write",
    "wal.flush.post_write",
    "wal.flush.pre_fsync",
    "wal.flush.fsync",
    "wal.flush.post_fsync",
    "wal.truncate.pre",
    "wal.truncate.post",
    # -- disk manager (repro.storage.disk) --------------------------------
    "disk.write_page.pre",
    "disk.write_page.write",
    "disk.write_page.post",
    "disk.write_meta.pre",
    "disk.write_meta.write",
    "disk.allocate.pre",
    "disk.allocate.post",
    "disk.free_page",
    "disk.ensure_allocated",
    "disk.sync.pre",
    "disk.sync.fsync",
    "disk.sync.post",
    # -- heap files (repro.storage.heap) -----------------------------------
    "heap.insert.pre",
    "heap.insert.post",
    "heap.update.pre",
    "heap.update.post",
    "heap.delete.pre",
    "heap.delete.post",
    "heap.span.fragment",
    "heap.replay_insert",
    "heap.replay_delete",
    # -- slotted pages (repro.storage.pages) --------------------------------
    "page.compact",
    "page.update.grow",
    # -- cross-shard two-phase commit (repro.shard.coordinator) -------------
    "shard.2pc.pre_prepare",
    "shard.2pc.post_prepare",
    "shard.2pc.pre_decision",
    "shard.2pc.post_decision",
    "shard.2pc.post_ack",
    "shard.2pc.pre_forget",
    # -- network chaos proxy (repro.net.chaos) ------------------------------
    # Visited by the proxy as it accepts and forwards traffic, so one
    # FaultPlan can compose disk faults with network moments: crash the
    # "process" exactly when a byte crosses the wire, or fire an
    # InjectedFaultError (the proxy turns it into a dropped connection).
    "net.proxy.accept",
    "net.proxy.forward.c2s",
    "net.proxy.forward.s2c",
    # -- online GC protocol windows (repro.core.gc) -------------------------
    # Every step of the reclaim protocol is bracketed: crash before the
    # tombstone is durable (nothing happened), between tombstone and
    # unlink (recovery repair finishes the unlink), between unlink and
    # index delete (repair drops the stale index entry), and inside the
    # recovery repair itself (the double-crash scenarios).
    "gc.tombstone.pre",
    "gc.tombstone.post",
    "gc.unlink.pre",
    "gc.unlink.post",
    "gc.index.pre",
    "gc.index.post",
    "gc.repair.pre",
    "gc.repair.post",
)

#: Failpoints that wrap an actual file write (torn/short writes possible).
WRITE_FAILPOINTS: frozenset[str] = frozenset(
    {"wal.flush.write", "disk.write_page.write", "disk.write_meta.write"}
)

#: Failpoints that may raise a survivable :class:`InjectedFaultError`
#: instead of crashing: fsync stand-ins, plus the chaos proxy's forward
#: points (where the error means "this connection just died").
ERROR_FAILPOINTS: frozenset[str] = frozenset(
    {
        "wal.flush.fsync",
        "disk.sync.fsync",
        "net.proxy.accept",
        "net.proxy.forward.c2s",
        "net.proxy.forward.s2c",
    }
)

_CRASH = "crash"
_TORN = "torn_write"
_SHORT = "short_write"
_FSYNC_ERROR = "fsync_error"


@dataclass(frozen=True)
class Fault:
    """One armed fault: fire ``action`` on the ``hit``-th visit of a failpoint.

    ``keep`` (torn/short writes only) is the number of buffer bytes that
    reach the file: non-negative counts from the front, negative drops
    that many bytes off the tail (``keep=-1`` loses the last byte).

    ``persistent`` (survivable actions only) keeps firing on *every* visit
    from the ``hit``-th on -- a permanently failing disk rather than a
    one-shot glitch.  This is how degraded mode is tested: a persistent
    fsync failure must push the database into read-only operation.
    """

    action: str
    hit: int = 1
    keep: int = 0
    persistent: bool = False

    def keep_bytes(self, length: int) -> int:
        if self.keep >= 0:
            return min(self.keep, length)
        return max(0, length + self.keep)


class FaultPlan:
    """A deterministic set of faults, at most one per failpoint.

    All arming methods validate the failpoint name against
    :data:`FAILPOINTS` (catching typos loudly) and return ``self`` so
    plans read as chains::

        plan = FaultPlan().crash("wal.flush.pre_fsync", hit=3)
    """

    def __init__(self) -> None:
        self._faults: dict[str, Fault] = {}

    def _arm(self, failpoint: str, fault: Fault) -> "FaultPlan":
        if failpoint not in FAILPOINTS:
            raise ValueError(f"unknown failpoint {failpoint!r}")
        if fault.hit < 1:
            raise ValueError("hit ordinal must be >= 1")
        if failpoint in self._faults:
            raise ValueError(f"failpoint {failpoint!r} already armed")
        self._faults[failpoint] = fault
        return self

    def crash(self, failpoint: str, hit: int = 1) -> "FaultPlan":
        """Die (raise :class:`SimulatedCrash`) at the failpoint's Nth visit."""
        return self._arm(failpoint, Fault(_CRASH, hit))

    def torn_write(self, failpoint: str, keep: int, hit: int = 1) -> "FaultPlan":
        """Write ``keep`` bytes of the buffer, then die (write sites only)."""
        if failpoint not in WRITE_FAILPOINTS:
            raise ValueError(f"{failpoint!r} is not a write-site failpoint")
        return self._arm(failpoint, Fault(_TORN, hit, keep))

    def short_write(
        self, failpoint: str, keep: int, hit: int = 1, persistent: bool = False
    ) -> "FaultPlan":
        """Write ``keep`` bytes, then fail the write (process survives).

        ``persistent=True`` fails every write from the ``hit``-th on.
        """
        if failpoint not in WRITE_FAILPOINTS:
            raise ValueError(f"{failpoint!r} is not a write-site failpoint")
        return self._arm(failpoint, Fault(_SHORT, hit, keep, persistent))

    def fsync_error(
        self, failpoint: str, hit: int = 1, persistent: bool = False
    ) -> "FaultPlan":
        """Fail the fsync at the failpoint (process survives, no barrier).

        ``persistent=True`` models a dead disk: every fsync from the
        ``hit``-th on fails, which is the trigger for degraded mode.
        """
        if failpoint not in ERROR_FAILPOINTS:
            raise ValueError(f"{failpoint!r} is not an fsync failpoint")
        return self._arm(failpoint, Fault(_FSYNC_ERROR, hit, 0, persistent))

    def error(
        self, failpoint: str, hit: int = 1, persistent: bool = False
    ) -> "FaultPlan":
        """Raise :class:`InjectedFaultError` at a survivable error site.

        The readable spelling for non-fsync error failpoints (the chaos
        proxy's ``net.proxy.*`` points, where the injected error means
        the connection died); mechanically identical to
        :meth:`fsync_error`.
        """
        return self.fsync_error(failpoint, hit, persistent)

    def get(self, failpoint: str) -> Fault | None:
        """The fault armed at ``failpoint``, if any."""
        return self._faults.get(failpoint)

    def failpoints(self) -> list[str]:
        """Names with a fault armed (sorted)."""
        return sorted(self._faults)


class FaultInjector:
    """Executes a :class:`FaultPlan` against the live failpoint stream.

    Thread-safe: hit counting and the crashed flag are guarded by one
    lock.  Once crashed, *every* subsequent failpoint visit raises
    :class:`SimulatedCrash` -- the storage layers place a failpoint on
    every mutating I/O path, so a dead process can no longer change the
    on-disk state (exactly like a real crash).
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self.crashed = False
        #: ``(failpoint, action)`` tuples in firing order.
        self.fired: list[tuple[str, str]] = []
        self.hits_total = 0
        self.crashes = 0
        self.torn_writes = 0
        self.short_writes = 0
        self.fsync_errors = 0

    # -- bookkeeping -------------------------------------------------------

    def hit_count(self, failpoint: str) -> int:
        """Number of times ``failpoint`` has been visited."""
        with self._lock:
            return self._hits.get(failpoint, 0)

    def _visit(self, failpoint: str) -> Fault | None:
        """Count a visit; return the fault if this visit triggers it."""
        if self.crashed:
            raise SimulatedCrash(f"I/O at {failpoint} after simulated crash")
        self.hits_total += 1
        count = self._hits.get(failpoint, 0) + 1
        self._hits[failpoint] = count
        fault = self.plan.get(failpoint)
        if fault is None:
            return None
        if count == fault.hit or (fault.persistent and count > fault.hit):
            return fault
        return None

    def _die(self, failpoint: str, action: str) -> None:
        self.crashed = True
        self.crashes += 1
        self.fired.append((failpoint, action))
        raise SimulatedCrash(f"{action} injected at {failpoint}")

    # -- hook implementations ------------------------------------------------

    def fire(self, failpoint: str) -> None:
        """Visit a plain (non-write) failpoint."""
        with self._lock:
            fault = self._visit(failpoint)
            if fault is None:
                return
            if fault.action == _FSYNC_ERROR:
                self.fsync_errors += 1
                self.fired.append((failpoint, _FSYNC_ERROR))
                raise InjectedFaultError(f"fsync failure injected at {failpoint}")
            self._die(failpoint, fault.action)

    def write(self, failpoint: str, file, data) -> None:
        """Visit a write-site failpoint, performing (or mutilating) the write."""
        with self._lock:
            fault = self._visit(failpoint)
            if fault is None:
                file.write(data)
                return
            if fault.action == _CRASH:
                self._die(failpoint, _CRASH)
            kept = fault.keep_bytes(len(data))
            if kept:
                file.write(data[:kept])
            if fault.action == _TORN:
                self.torn_writes += 1
                self._die(failpoint, _TORN)
            self.short_writes += 1
            self.fired.append((failpoint, _SHORT))
            raise InjectedFaultError(
                f"short write injected at {failpoint} ({kept}/{len(data)} bytes)"
            )

    def stats(self) -> dict[str, int]:
        """Counters for ``Database.stats()`` / the crash-matrix report."""
        with self._lock:
            return {
                "faults_armed": len(self.plan.failpoints()),
                "faults_hits": self.hits_total,
                "faults_crashes": self.crashes,
                "faults_torn_writes": self.torn_writes,
                "faults_short_writes": self.short_writes,
                "faults_fsync_errors": self.fsync_errors,
            }


# -- process-global installation -------------------------------------------
#
# The storage layers call the module-level fire()/write(); tests install an
# injector around a workload.  Inactive cost: one global load per hook.

_active: FaultInjector | None = None


def activate(plan: FaultPlan) -> FaultInjector:
    """Install an injector for ``plan``; returns it for assertions."""
    global _active
    injector = FaultInjector(plan)
    _active = injector
    return injector


def deactivate() -> None:
    """Remove the active injector (always pair with :func:`activate`)."""
    global _active
    _active = None


def active() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _active


def fire(failpoint: str) -> None:
    """Hook: visit a crash-site failpoint (no-op when inactive)."""
    injector = _active
    if injector is not None:
        injector.fire(failpoint)


def write(failpoint: str, file, data) -> None:
    """Hook: write ``data`` to ``file`` through a write-site failpoint."""
    injector = _active
    if injector is None:
        file.write(data)
    else:
        injector.write(failpoint, file, data)


def is_crashed() -> bool:
    """True once a crash fault has fired (error-path cleanup must not run)."""
    injector = _active
    return injector is not None and injector.crashed


def stats() -> dict[str, int]:
    """Injected-fault counters (all zero when no injector is active)."""
    injector = _active
    if injector is None:
        return {
            "faults_armed": 0,
            "faults_hits": 0,
            "faults_crashes": 0,
            "faults_torn_writes": 0,
            "faults_short_writes": 0,
            "faults_fsync_errors": 0,
        }
    return injector.stats()
