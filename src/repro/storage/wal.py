"""Write-ahead log and crash recovery.

Durability contract for the persistence library (paper §6: persistent
objects "continue to exist after the program that created them has
terminated"): every mutation of durable state is a heap-record operation,
and every heap-record operation is logged *before* its page is modified.

Log records are logical at record-id granularity:

* ``BEGIN(txid)`` / ``COMMIT(txid)`` / ``ABORT_END(txid)``
* ``OP(txid, kind, file_id, page_id, slot, payload, undo_payload)`` with
  ``kind`` in ``{INSERT, UPDATE, DELETE}``

Recovery repeats history: it replays **all** ops from the last checkpoint in
log order (replay is last-writer-wins per record id, so this is idempotent),
then rolls back *losers* -- transactions with neither ``COMMIT`` nor
``ABORT_END`` -- by applying their undo images in reverse.  A transaction
aborted during normal operation logs its undo actions as ordinary ops (a
poor-man's CLR) followed by ``ABORT_END``, so recovery treats it as
finished.

Checkpoints are quiescent: with no transaction active, all dirty pages are
flushed, the data file is fsynced, and the log is truncated to empty.  This
keeps recovery simple (replay always starts at offset 0) at the cost of a
pause -- acceptable for the workloads in this reproduction, and measured by
experiment E11.

Frame format: ``u32 length | u32 crc32 | body``.  A torn final frame (short
read or CRC mismatch) ends replay cleanly; anything after it was never
acknowledged as committed because ``COMMIT`` is only acknowledged after
``flush()``.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import WalError
from repro.storage import faults, serialization
from repro.verify import hooks

_FRAME = struct.Struct("<II")  # length, crc32

# Record kinds (on-disk values; never renumber).
BEGIN = 1
COMMIT = 2
ABORT_END = 3
OP_INSERT = 4
OP_UPDATE = 5
OP_DELETE = 6
# Two-phase commit (cross-shard transactions; see repro.shard).
PREPARE = 7
COORD_COMMIT = 8
COORD_END = 9
# Online GC: "these blob keys are about to be unlinked" (repro.core.gc).
# Journaled and flushed *before* the files go away, so a crash anywhere
# between tombstone and index update is repaired at recovery.
GC_TOMBSTONE = 10


@dataclass(frozen=True)
class LogRecord:
    """One decoded WAL record."""

    kind: int
    txid: int
    file_id: int = 0
    page_id: int = 0
    slot: int = 0
    payload: bytes = b""
    undo_payload: bytes = b""

    @property
    def is_op(self) -> bool:
        """True for the three heap-operation kinds."""
        return self.kind in (OP_INSERT, OP_UPDATE, OP_DELETE)

    def to_bytes(self) -> bytes:
        return serialization.encode(
            (
                self.kind,
                self.txid,
                self.file_id,
                self.page_id,
                self.slot,
                self.payload,
                self.undo_payload,
            )
        )

    @staticmethod
    def from_bytes(raw: bytes) -> LogRecord:
        fields = serialization.decode(raw)
        if not isinstance(fields, tuple) or len(fields) != 7:
            raise WalError("malformed log record body")
        return LogRecord(*fields)


class LogManager:
    """Append-only WAL over one file, with buffered appends and group commit.

    ``append`` buffers in memory; ``flush`` writes and fsyncs.  The commit
    path appends its ``COMMIT`` record and then calls ``flush`` -- nothing is
    acknowledged before an fsync covering that record returns.

    Group commit: every append gets a sequence number, and ``flush``
    remembers the highest sequence an fsync has covered.  A flusher that
    arrives while another thread's fsync is in flight waits; if that fsync
    (which snapshots the shared buffer) covered its records, it returns
    without issuing its own fsync -- one disk barrier acknowledges the
    whole group.  With ``group_window > 0`` the flusher additionally
    lingers that many seconds before snapshotting, letting concurrent
    committers join the group even when their flushes would not otherwise
    overlap.  A flush that did not wait behind another always fsyncs, so
    an idle ``flush()`` still hits the disk (checkpoints rely on that).

    The linger only happens when at least one *other* flusher is pending
    (a solo commit pays fsync latency, never the window), ``append``
    wakes a lingering flusher, and the linger ends as soon as the group
    stops growing -- the window is a cap, not a tax.
    """

    def __init__(
        self, path: str | os.PathLike[str], group_window: float = 0.0
    ) -> None:
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            with open(self._path, "wb"):
                pass
        self._file = open(self._path, "r+b", buffering=0)
        self._file.seek(0, os.SEEK_END)
        self._buffer = bytearray()
        self._cond = threading.Condition()
        self._group_window = group_window
        self._seq = 0  # sequence of the newest appended record
        self._flushed_seq = 0  # highest sequence covered by a completed fsync
        self._flushing = False  # an fsync is in flight (I/O happens unlocked)
        self._pending_flushers = 0  # threads currently inside flush()
        #: Count of fsyncs, for the E11 micro-benchmarks.
        self.flush_count = 0
        #: Flush calls satisfied by another thread's fsync (group commit).
        self.group_piggybacks = 0
        #: Total flush attempts that failed (write or fsync error).
        self.write_failures = 0
        #: Failures with no intervening success; resets on every good fsync.
        self._consecutive_failures = 0
        #: Consecutive failures that count as *persistent* storage failure.
        self.failure_threshold = 3
        #: Called once (with a reason string) when the threshold is crossed
        #: -- the database facade hooks this to enter degraded mode.
        self.on_persistent_failure: "Callable[[str], None] | None" = None
        self._failure_reported = False

    @property
    def path(self) -> str:
        """Path of the WAL file."""
        return self._path

    def append(self, record: LogRecord) -> None:
        """Buffer one record.  Call :meth:`flush` to make it durable."""
        faults.fire("wal.append")
        body = record.to_bytes()
        frame = _FRAME.pack(len(body), zlib.crc32(body)) + body
        with self._cond:
            self._buffer.extend(frame)
            self._seq += 1
            if self._flushing:
                # Wake a lingering group-commit flusher: the group grew.
                self._cond.notify_all()

    def flush(self) -> None:
        """Make every record appended so far durable (one fsync per group)."""
        hooks.sched_point("wal.flush")
        with self._cond:
            self._pending_flushers += 1
        try:
            self._flush()
        finally:
            with self._cond:
                self._pending_flushers -= 1

    def _flush(self) -> None:
        with self._cond:
            target = self._seq
            waited = False
            while self._flushing:
                waited = True
                self._cond.wait()
            if waited and self._flushed_seq >= target:
                # The fsync we waited behind snapshotted our records; its
                # completion already made them durable.
                self.group_piggybacks += 1
                return
            self._flushing = True
            if self._group_window > 0.0 and self._pending_flushers > 1:
                # Linger with the lock released so concurrent committers can
                # append and join this group's single fsync.  A solo flusher
                # (no other thread pending) skips the linger entirely, and a
                # group lingers only while it keeps growing: each wait is a
                # short grace period, and a grace with no new append ends
                # the linger.  The window bounds the total linger.
                deadline = time.monotonic() + self._group_window
                grace = self._group_window * 0.25
                while True:
                    seen = self._seq
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._cond.wait(min(remaining, grace))
                    if self._seq == seen:
                        break  # the group stopped growing
            buf = bytes(self._buffer)
            self._buffer.clear()
            covered = self._seq
        ok = False
        write_start = -1
        try:
            # I/O happens outside the lock so that piggybacking flushers can
            # register and appends are never blocked behind the disk.
            faults.fire("wal.flush.pre_write")
            if buf:
                write_start = self._file.tell()
                faults.write("wal.flush.write", self._file, buf)
            faults.fire("wal.flush.post_write")
            self._file.flush()
            faults.fire("wal.flush.pre_fsync")
            faults.fire("wal.flush.fsync")
            os.fsync(self._file.fileno())
            faults.fire("wal.flush.post_fsync")
            ok = True
        finally:
            if not ok and write_start >= 0 and not faults.is_crashed():
                # A failed write may have put a *partial* frame in the file.
                # The retry below re-appends the whole buffer, so without a
                # repair the log would read  <garbage prefix><good frames>
                # and replay -- which stops at the first bad frame -- would
                # never see the retried records even after their successful
                # fsync.  Truncate back to the pre-write offset so a retry
                # starts from a clean tail.  (Skipped after a simulated
                # crash: a dead process repairs nothing.)
                try:
                    self._file.truncate(write_start)
                    self._file.seek(write_start)
                except OSError:
                    pass  # the retry's flush will surface persistent failure
            notify: "Callable[[str], None] | None" = None
            reason = ""
            with self._cond:
                self._flushing = False
                if ok:
                    self._flushed_seq = max(self._flushed_seq, covered)
                    self.flush_count += 1
                    self._consecutive_failures = 0
                else:
                    # Keep the unwritten records so a retry can flush them.
                    self._buffer[:0] = buf
                    if not faults.is_crashed():
                        # A simulated crash is a dead process, not a sick
                        # disk -- only survivable failures count towards
                        # the persistent-failure threshold.
                        self.write_failures += 1
                        self._consecutive_failures += 1
                        if (
                            self._consecutive_failures >= self.failure_threshold
                            and not self._failure_reported
                            and self.on_persistent_failure is not None
                        ):
                            self._failure_reported = True
                            notify = self.on_persistent_failure
                            reason = (
                                "WAL flush failed "
                                f"{self._consecutive_failures} consecutive times"
                            )
                self._cond.notify_all()
            if notify is not None:
                notify(reason)

    def truncate(self) -> None:
        """Discard the entire log (only valid at a quiescent checkpoint)."""
        with self._cond:
            while self._flushing:
                self._cond.wait()
            faults.fire("wal.truncate.pre")
            self._buffer.clear()
            self._flushed_seq = self._seq
            self._file.seek(0)
            self._file.truncate(0)
            self._file.flush()
            os.fsync(self._file.fileno())
            faults.fire("wal.truncate.post")

    def size(self) -> int:
        """Durable log size in bytes (excludes the unflushed buffer)."""
        with self._cond:
            return os.path.getsize(self._path)

    def records(self) -> Iterator[LogRecord]:
        """Iterate durable records from the start; stops at a torn tail."""
        with self._cond:
            while self._flushing:
                self._cond.wait()
            self._file.seek(0)
            data = self._file.read()
            self._file.seek(0, os.SEEK_END)
        pos = 0
        n = len(data)
        while pos + _FRAME.size <= n:
            length, crc = _FRAME.unpack_from(data, pos)
            body_start = pos + _FRAME.size
            body_end = body_start + length
            if body_end > n:
                break  # torn tail
            body = data[body_start:body_end]
            if zlib.crc32(body) != crc:
                break  # torn or corrupt tail
            yield LogRecord.from_bytes(body)
            pos = body_end

    def close(self, flush: bool = True) -> None:
        """Flush and close.  Idempotent.

        ``flush=False`` skips the final flush -- used when the database
        closes in degraded mode and the disk is known to reject writes.
        """
        if self._file.closed:
            return
        if flush:
            self.flush()
        self._file.close()


@dataclass(frozen=True)
class InDoubtTransaction:
    """A participant that crashed between ``PREPARE`` and the decision.

    Its ops were replayed (the prepared state is durable by contract), and
    they are retained here in log order so a presumed-abort resolution can
    apply the undo images in reverse.  ``gtxid`` is the global transaction
    id from the PREPARE payload; ``coordinator`` names the shard whose WAL
    holds (or never held) the commit decision.
    """

    txid: int
    gtxid: tuple
    coordinator: int
    participants: tuple[int, ...]
    ops: tuple[LogRecord, ...]


@dataclass
class RecoveryReport:
    """What :func:`recover` did -- asserted on by the crash-recovery tests."""

    records_scanned: int = 0
    ops_replayed: int = 0
    loser_txids: tuple[int, ...] = ()
    ops_undone: int = 0
    #: Prepared-but-undecided participants keyed by local txid.  The owner
    #: must resolve each one (commit or presumed abort) before accepting
    #: new work that could observe the prepared state.
    in_doubt: dict[int, InDoubtTransaction] = field(default_factory=dict)
    #: Surviving coordinator commit decisions: gtxid -> participant shards.
    #: A decision followed by ``COORD_END`` has been forgotten.
    coord_decisions: dict[tuple, tuple[int, ...]] = field(default_factory=dict)
    #: Highest txid seen anywhere in the scanned log (0 for an empty one).
    #: When the WAL is retained past recovery (in-doubt participants or
    #: surviving decisions block truncation), the owner must hand out new
    #: txids above this floor, or a retained loser's records could be
    #: mistaken for a fresh winner's on the next recovery.
    max_txid: int = 0
    #: Blob keys named by ``GC_TOMBSTONE`` records, in log order.  Collected
    #: from *every* transaction, committed or loser: the tombstone means "an
    #: unlink may have happened", and the repair pass (see
    #: ``Database._repair_gc_tombstones``) is idempotent either way.
    gc_tombstones: tuple[str, ...] = ()


def recover(log: LogManager, heap_resolver) -> RecoveryReport:
    """Replay the WAL onto the heap files and roll back losers.

    ``heap_resolver(file_id)`` must return an object with the replay
    surface of :class:`repro.storage.heap.HeapFile`:
    ``replay_insert(page_id, slot, payload)`` and
    ``replay_delete(page_id, slot)``.

    Pass 1 classifies transactions (losers have neither ``COMMIT`` nor
    ``ABORT_END``).  Pass 2 folds the log into a **final state per record
    id**: for a record touched by a loser, the state *before* the loser's
    first op on it (strict 2PL guarantees loser ops are a contiguous suffix
    of any record's op sequence); otherwise the state after its last op.
    Pass 3 applies each final state exactly once.  Applying final states
    (rather than naively repeating history op-by-op) is what makes replay
    insensitive to how many dirty pages reached disk before the crash: a
    page is never asked to transiently hold both an old and a new
    generation of its records.

    Two-phase commit: a transaction with a ``PREPARE`` record but neither
    ``COMMIT`` nor ``ABORT_END`` is **in-doubt**, not a loser.  Its ops are
    replayed like a winner's (the prepare promise is "I can still commit"),
    its op records are retained in :attr:`RecoveryReport.in_doubt` so the
    owner can roll it back if the coordinator decided abort, and it keeps
    the heap out of bounds for truncation until resolved.  ``COORD_COMMIT``
    records (logged under txid 0, which classification already ignores)
    surface in :attr:`RecoveryReport.coord_decisions` unless a matching
    ``COORD_END`` shows the decision was already delivered everywhere.
    """
    records = list(log.records())
    finished: set[int] = set()
    seen: set[int] = set()
    prepared: dict[int, tuple] = {}
    decisions: dict[tuple, tuple[int, ...]] = {}
    ended: set[tuple] = set()
    tombstones: list[str] = []
    tombstone_seen: set[str] = set()
    for rec in records:
        seen.add(rec.txid)
        if rec.kind in (COMMIT, ABORT_END):
            finished.add(rec.txid)
        elif rec.kind == PREPARE:
            gtxid, coordinator, participants = serialization.decode(rec.payload)
            prepared[rec.txid] = (gtxid, coordinator, tuple(participants))
        elif rec.kind == COORD_COMMIT:
            gtxid, participants = serialization.decode(rec.payload)
            decisions[gtxid] = tuple(participants)
        elif rec.kind == COORD_END:
            ended.add(serialization.decode(rec.payload))
        elif rec.kind == GC_TOMBSTONE:
            for key in serialization.decode(rec.payload):
                if key not in tombstone_seen:
                    tombstone_seen.add(key)
                    tombstones.append(key)
    in_doubt_ids = set(prepared) - finished
    losers = tuple(sorted(seen - finished - in_doubt_ids - {0}))
    loser_set = set(losers)

    report = RecoveryReport(
        records_scanned=len(records),
        loser_txids=losers,
        coord_decisions={
            g: parts for g, parts in decisions.items() if g not in ended
        },
        max_txid=max(seen, default=0),
        gc_tombstones=tuple(tombstones),
    )
    in_doubt_ops: dict[int, list[LogRecord]] = {t: [] for t in in_doubt_ids}

    # rid -> (present, payload, from_undo).  Ordered dict: first-touch order.
    final: dict[tuple[int, int, int], tuple[bool, bytes, bool]] = {}
    for rec in records:
        if not rec.is_op:
            continue
        if rec.txid in in_doubt_ops:
            in_doubt_ops[rec.txid].append(rec)
        rid = (rec.file_id, rec.page_id, rec.slot)
        if rec.txid in loser_set:
            if rid in final and final[rid][2]:
                continue  # already frozen at the pre-loser state
            if rec.kind == OP_INSERT:
                final[rid] = (False, b"", True)
            else:  # UPDATE or DELETE carry the pre-image
                final[rid] = (True, rec.undo_payload, True)
            continue
        if rec.kind in (OP_INSERT, OP_UPDATE):
            final[rid] = (True, rec.payload, False)
        else:
            final[rid] = (False, b"", False)

    for (file_id, page_id, slot), (present, payload, from_undo) in final.items():
        heap = heap_resolver(file_id)
        if present:
            heap.replay_insert(page_id, slot, payload)
        else:
            heap.replay_delete(page_id, slot)
        if from_undo:
            report.ops_undone += 1
        else:
            report.ops_replayed += 1
    for txid in sorted(in_doubt_ids):
        gtxid, coordinator, participants = prepared[txid]
        report.in_doubt[txid] = InDoubtTransaction(
            txid=txid,
            gtxid=gtxid,
            coordinator=coordinator,
            participants=participants,
            ops=tuple(in_doubt_ops[txid]),
        )
    return report
