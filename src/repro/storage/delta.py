"""Delta codec: store a version as its difference from the derived-from base.

Paper §3: "The derived-from relationship can be used to store versions by
storing their 'differences' (called deltas [28, 32])" -- citing SCCS and
RCS.  This module provides the binary-delta machinery that the version
store's ``delta`` storage policy uses, and experiment E5 measures the
space/latency trade-off against full copies.

Algorithm: rsync-style block matching.  The *base* is split into fixed-size
blocks which are indexed by a rolling checksum (a weak Adler-32 variant)
plus a strong hash.  The *target* is scanned with the rolling checksum; on a
match the delta emits ``COPY(base_offset, length)`` (greedily extended past
the block boundary), otherwise literal bytes accumulate into ``ADD`` ops.
Applying a delta is a single pass over its ops.

Delta wire format (all varints)::

    magic 'D1' | base_len | target_len | op*
    op := 0x01 len bytes           -- ADD literal
        | 0x02 offset len          -- COPY from base

The codec verifies ``base_len`` on apply, so applying a delta to the wrong
base fails loudly instead of producing garbage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import DeltaError
from repro.storage.serialization import read_uvarint, write_uvarint

#: Default block size for the base index.  Small enough to find matches in
#: page-sized records, large enough that the index stays compact.
DEFAULT_BLOCK_SIZE = 64

_MAGIC = b"D1"
_OP_ADD = 0x01
_OP_COPY = 0x02

_MOD = 1 << 16


def _weak_checksum(data: bytes | memoryview) -> tuple[int, int, int]:
    """Adler-style weak checksum; returns ``(a, b, combined)``."""
    a = 0
    b = 0
    for byte in data:
        a = (a + byte) % _MOD
        b = (b + a) % _MOD
    return a, b, (b << 16) | a


def _roll(a: int, b: int, out_byte: int, in_byte: int, block: int) -> tuple[int, int, int]:
    """Slide the weak checksum one byte forward."""
    a = (a - out_byte + in_byte) % _MOD
    b = (b - block * out_byte + a) % _MOD
    return a, b, (b << 16) | a


def _strong_hash(data: bytes | memoryview) -> bytes:
    return hashlib.blake2b(bytes(data), digest_size=8).digest()


@dataclass(frozen=True)
class DeltaStats:
    """Size accounting for one computed delta (used by experiment E5)."""

    base_len: int
    target_len: int
    delta_len: int
    copy_bytes: int
    add_bytes: int

    @property
    def ratio(self) -> float:
        """Delta size relative to the target (< 1.0 means the delta saves space)."""
        if self.target_len == 0:
            return 0.0 if self.delta_len == 0 else float("inf")
        return self.delta_len / self.target_len


def compute_delta(
    base: bytes, target: bytes, block_size: int = DEFAULT_BLOCK_SIZE
) -> bytes:
    """Compute a delta that transforms ``base`` into ``target``.

    Always succeeds; in the worst case the delta is one big ADD (slightly
    larger than the target itself).  Callers deciding between full-copy and
    delta storage should compare ``len(delta)`` with ``len(target)``.
    """
    if block_size < 8:
        raise DeltaError("block size must be >= 8")
    out = bytearray(_MAGIC)
    write_uvarint(out, len(base))
    write_uvarint(out, len(target))

    if not base or len(target) < block_size:
        _emit_add(out, target)
        return bytes(out)

    # Index base blocks: weak checksum -> [(block_start, strong_hash)].
    index: dict[int, list[tuple[int, bytes]]] = {}
    base_view = memoryview(base)
    for start in range(0, len(base) - block_size + 1, block_size):
        blk = base_view[start : start + block_size]
        _a, _b, combined = _weak_checksum(blk)
        index.setdefault(combined, []).append((start, _strong_hash(blk)))

    target_view = memoryview(target)
    pos = 0
    literal_start = 0
    n = len(target)
    a = b = combined = -1
    checksum_valid = False
    while pos + block_size <= n:
        window = target_view[pos : pos + block_size]
        if not checksum_valid:
            a, b, combined = _weak_checksum(window)
            checksum_valid = True
        match_start = -1
        candidates = index.get(combined)
        if candidates:
            strong = _strong_hash(window)
            for base_start, base_strong in candidates:
                if base_strong == strong:
                    match_start = base_start
                    break
        if match_start >= 0:
            # Extend the match greedily beyond the block.
            length = block_size
            while (
                pos + length < n
                and match_start + length < len(base)
                and target[pos + length] == base[match_start + length]
            ):
                length += 1
            if literal_start < pos:
                _emit_add(out, target[literal_start:pos])
            _emit_copy(out, match_start, length)
            pos += length
            literal_start = pos
            checksum_valid = False
        else:
            # Roll one byte forward.
            if pos + block_size < n:
                a, b, combined = _roll(
                    a, b, target[pos], target[pos + block_size], block_size
                )
            pos += 1
    if literal_start < n:
        _emit_add(out, target[literal_start:])
    return bytes(out)


def _emit_add(out: bytearray, data: bytes | memoryview) -> None:
    if len(data) == 0:
        return
    out.append(_OP_ADD)
    write_uvarint(out, len(data))
    out.extend(data)


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    out.append(_OP_COPY)
    write_uvarint(out, offset)
    write_uvarint(out, length)


def apply_delta(base: bytes, delta: bytes, counters: object | None = None) -> bytes:
    """Reconstruct the target from ``base`` and a delta.

    Raises :class:`DeltaError` if the delta is malformed, was computed
    against a base of a different length, or reconstructs the wrong number
    of bytes.

    ``counters`` (optional) is any object with a ``deltas_applied``
    attribute -- e.g. :class:`repro.core.cache.CacheStats` -- incremented
    once per successful application, so callers can measure how much
    chain-replay work their cache layer did *not* absorb.
    """
    if delta[:2] != _MAGIC:
        raise DeltaError("not a delta (bad magic)")
    pos = 2
    base_len, pos = read_uvarint(delta, pos)
    target_len, pos = read_uvarint(delta, pos)
    if base_len != len(base):
        raise DeltaError(
            f"delta was computed against a {base_len}-byte base, got {len(base)} bytes"
        )
    out = bytearray()
    n = len(delta)
    while pos < n:
        op = delta[pos]
        pos += 1
        if op == _OP_ADD:
            length, pos = read_uvarint(delta, pos)
            if pos + length > n:
                raise DeltaError("truncated ADD op")
            out.extend(delta[pos : pos + length])
            pos += length
        elif op == _OP_COPY:
            offset, pos = read_uvarint(delta, pos)
            length, pos = read_uvarint(delta, pos)
            if offset + length > len(base):
                raise DeltaError("COPY op reaches past end of base")
            out.extend(base[offset : offset + length])
        else:
            raise DeltaError(f"unknown delta op 0x{op:02x}")
    if len(out) != target_len:
        raise DeltaError(
            f"delta reconstructed {len(out)} bytes, expected {target_len}"
        )
    if counters is not None:
        counters.deltas_applied += 1
    return bytes(out)


def delta_stats(base: bytes, target: bytes, delta: bytes) -> DeltaStats:
    """Decompose a delta into COPY/ADD byte counts (for experiment E5)."""
    if delta[:2] != _MAGIC:
        raise DeltaError("not a delta (bad magic)")
    pos = 2
    _base_len, pos = read_uvarint(delta, pos)
    _target_len, pos = read_uvarint(delta, pos)
    copy_bytes = 0
    add_bytes = 0
    n = len(delta)
    while pos < n:
        op = delta[pos]
        pos += 1
        if op == _OP_ADD:
            length, pos = read_uvarint(delta, pos)
            add_bytes += length
            pos += length
        elif op == _OP_COPY:
            _offset, pos = read_uvarint(delta, pos)
            length, pos = read_uvarint(delta, pos)
            copy_bytes += length
        else:
            raise DeltaError(f"unknown delta op 0x{op:02x}")
    return DeltaStats(
        base_len=len(base),
        target_len=len(target),
        delta_len=len(delta),
        copy_bytes=copy_bytes,
        add_bytes=add_bytes,
    )


def materialize_chain(
    root: bytes, deltas: list[bytes], counters: object | None = None
) -> bytes:
    """Apply a derivation chain of deltas in order starting from ``root``."""
    current = root
    for delta in deltas:
        current = apply_delta(current, delta, counters)
    return current
