"""System catalog: named heaps, durable counters, and named roots.

Ode groups persistent objects into per-type *clusters* and needs a handful
of database-wide counters (the object-id and version-id generators of paper
§4's ``pnew``/``newversion``).  All of that bookkeeping is itself ordinary
heap data, stored in a well-known heap (file id 1), so it is WAL-protected
like everything else and needs no special recovery path.

Catalog records are codec-encoded tuples:

* ``("heap", name, file_id)`` -- a named heap file
* ``("counter", name, value)`` -- a monotonic counter (updated in place)
* ``("root", name, value)`` -- a named root value (any codec value)
"""

from __future__ import annotations

import os
from typing import Any

from repro.errors import CatalogError
from repro.storage import serialization
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap import HeapFile, LogOp, Rid
from repro.storage.stripes import StripedLock

#: The catalog lives in heap file 1, always.
CATALOG_FILE_ID = 1


class Catalog:
    """Registry of heaps, counters, and roots backed by heap file 1.

    All state is cached in memory at open (the catalog is small) and
    written through on every mutation.  Mutations accept the same optional
    ``log_op`` callback as the heap layer so they participate in whatever
    transaction is running.
    """

    def __init__(
        self,
        disk: DiskManager,
        pool: BufferPool,
        page_locks: StripedLock | None = None,
    ) -> None:
        self._disk = disk
        self._pool = pool
        self._page_locks = page_locks
        self._heap = HeapFile(CATALOG_FILE_ID, disk, pool, page_locks=page_locks)
        self._heaps: dict[str, int] = {}
        self._heap_rids: dict[str, Rid] = {}
        self._counters: dict[str, int] = {}
        self._counter_rids: dict[str, Rid] = {}
        self._roots: dict[str, Any] = {}
        self._root_rids: dict[str, Rid] = {}
        self._open_heaps: dict[int, HeapFile] = {CATALOG_FILE_ID: self._heap}
        self._load()

    @property
    def directory(self) -> str:
        """Directory holding the database files (derived from the data file).

        The version store roots its blob directory here, so everything a
        database owns -- data file, WAL, blobs -- lives under one path.
        """
        return os.path.dirname(os.path.abspath(self._disk.path))

    def reload(self) -> None:
        """Rebuild the in-memory catalog caches from heap file 1.

        Used after a transaction abort (the WAL undo has restored the
        records; this brings counters/roots/heap names back in line).
        Open heap handles are kept -- pages never disappear.
        """
        self._heaps.clear()
        self._heap_rids.clear()
        self._counters.clear()
        self._counter_rids.clear()
        self._roots.clear()
        self._root_rids.clear()
        self._load()

    def _load(self) -> None:
        for rid, payload in self._heap.scan():
            entry = serialization.decode(payload)
            if not isinstance(entry, tuple) or len(entry) != 3:
                raise CatalogError(f"malformed catalog record at {rid}")
            kind, name, value = entry
            if kind == "heap":
                self._heaps[name] = value
                self._heap_rids[name] = rid
            elif kind == "counter":
                self._counters[name] = value
                self._counter_rids[name] = rid
            elif kind == "root":
                self._roots[name] = value
                self._root_rids[name] = rid
            else:
                raise CatalogError(f"unknown catalog record kind {kind!r}")

    # -- heaps --------------------------------------------------------------

    def heap_names(self) -> list[str]:
        """Registered heap names, sorted."""
        return sorted(self._heaps)

    def ensure_heap(self, name: str, log_op: LogOp | None = None) -> HeapFile:
        """Open the named heap, registering a new file id on first use."""
        file_id = self._heaps.get(name)
        if file_id is None:
            file_id = self._next_file_id()
            rid = self._heap.insert(
                serialization.encode(("heap", name, file_id)), log_op
            )
            self._heaps[name] = file_id
            self._heap_rids[name] = rid
        return self.heap_by_id(file_id)

    def heap_by_id(self, file_id: int) -> HeapFile:
        """Open a heap by file id (shared instance per id)."""
        heap = self._open_heaps.get(file_id)
        if heap is None:
            heap = HeapFile(
                file_id, self._disk, self._pool, page_locks=self._page_locks
            )
            self._open_heaps[file_id] = heap
        return heap

    def _next_file_id(self) -> int:
        used = set(self._heaps.values()) | {CATALOG_FILE_ID}
        return max(used) + 1

    # -- counters --------------------------------------------------------------

    def next_value(
        self,
        counter: str,
        log_op: LogOp | None = None,
        *,
        stride: int = 1,
        residue: int = 0,
    ) -> int:
        """Increment and persist the named counter; returns the new value.

        Counters start at 0, so the first call returns 1.  With
        ``stride > 1`` the counter advances to the smallest value above the
        current one congruent to ``residue`` modulo ``stride`` -- how a
        shard allocates oids from its own slice of the id space while the
        persisted counter still equals the last id handed out (the
        invariant the consistency checker's oid-counter floor relies on).
        """
        value = self._counters.get(counter, 0) + 1
        if stride > 1:
            value += (residue - value) % stride
        payload = serialization.encode(("counter", counter, value))
        rid = self._counter_rids.get(counter)
        if rid is None:
            rid = self._heap.insert(payload, log_op)
            self._counter_rids[counter] = rid
        else:
            self._heap.update(rid, payload, log_op)
        self._counters[counter] = value
        return value

    def peek_value(self, counter: str) -> int:
        """Current value of the counter without incrementing."""
        return self._counters.get(counter, 0)

    # -- roots -----------------------------------------------------------------

    def get_root(self, name: str, default: Any = None) -> Any:
        """Read a named root value."""
        return self._roots.get(name, default)

    def set_root(self, name: str, value: Any, log_op: LogOp | None = None) -> None:
        """Write a named root value (any codec-encodable value)."""
        payload = serialization.encode(("root", name, value))
        rid = self._root_rids.get(name)
        if rid is None:
            rid = self._heap.insert(payload, log_op)
            self._root_rids[name] = rid
        else:
            self._heap.update(rid, payload, log_op)
        self._roots[name] = value

    def root_names(self) -> list[str]:
        """Registered root names, sorted."""
        return sorted(self._roots)
