"""Content-addressed blob storage for version payloads.

OrpheusDB-style dedup for the version store: every payload -- full copies
*and* the delta bodies along the derived-from chain -- is keyed by the
sha256 of its bytes and stored once, as an immutable file under
``blobs/ab/cdef...`` (first byte of the digest is the fan-out directory).
Identical payloads across objects, versions, and snapshots therefore share
one file; ``newversion`` (which starts as a byte-identical copy of its
base) costs no payload I/O at all.

Durability protocol for :meth:`BlobStore.put`:

1. write the content to a temp file *in the same directory*,
2. ``fsync`` the temp file,
3. ``rename`` it onto the final content path (atomic on POSIX).

A crash mid-put leaves either a temp file (swept opportunistically) or an
orphan content file; both are harmless -- content files carry no liveness
information.  Liveness is the **refcount index**: an ``ode.blobs`` heap
(WAL-journaled like every other heap, so refcounts are updated in the same
transaction as the version records that reference them and are rolled back
together on abort/recovery).  The index lives in
:class:`repro.core.store.VersionStore`; this module only knows about files.

Blob files are never overwritten: a put whose target path already exists is
a dedup hit and touches nothing.  Unlink happens only through the GC
tombstone protocol (journal first, unlink second -- see
``repro.core.gc``), so a missing file surfaces as
:class:`~repro.errors.BlobMissingError` and snapshot readers recover from
their stash overlays.

The store is deliberately a narrow interface (put/get/unlink/scan over an
opaque key) so an S3-style remote backend can slot in behind it later
(ROADMAP: multi-backend storage).
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from typing import Iterator

from repro.errors import BlobError, BlobMissingError

#: Version-record marker: a heap record in ``ode.versions`` that starts
#: with this magic is a blob *reference*, not inline payload bytes.  The
#: first byte is 0xFF, which the stable codec never emits as a leading
#: type tag, and the exact-length check below makes a collision with a
#: legacy inline payload practically impossible.
_REF_MAGIC = b"\xffODEB1"
_REF_LEN = struct.Struct("<I")
#: Total size of an encoded blob reference: magic + u32 size + 32-byte digest.
REF_SIZE = len(_REF_MAGIC) + _REF_LEN.size + 32

#: Size of a hex blob key (sha256 hexdigest).
KEY_HEX_LEN = 64


def blob_key(content: bytes) -> str:
    """The content key of ``content``: its sha256 hex digest."""
    return hashlib.sha256(content).hexdigest()


def encode_ref(key: str, size: int) -> bytes:
    """Encode a blob reference record (stored in the versions heap)."""
    return _REF_MAGIC + _REF_LEN.pack(size) + bytes.fromhex(key)


def is_ref(record: bytes) -> bool:
    """True when a versions-heap record is a blob reference."""
    return len(record) == REF_SIZE and record.startswith(_REF_MAGIC)


def decode_ref(record: bytes) -> tuple[str, int]:
    """Decode a blob reference record; returns ``(key, payload_size)``."""
    if not is_ref(record):
        raise BlobError("record is not a blob reference")
    (size,) = _REF_LEN.unpack_from(record, len(_REF_MAGIC))
    return record[len(_REF_MAGIC) + _REF_LEN.size :].hex(), size


class BlobStats:
    """Operation counters, surfaced under ``blobs.*`` in database stats."""

    __slots__ = (
        "puts",
        "dedup_hits",
        "files_written",
        "bytes_written",
        "bytes_deduped",
        "reads",
        "bytes_read",
        "unlinks",
        "bytes_unlinked",
        "missing",
    )

    def __init__(self) -> None:
        self.puts = 0
        self.dedup_hits = 0
        self.files_written = 0
        self.bytes_written = 0
        self.bytes_deduped = 0
        self.reads = 0
        self.bytes_read = 0
        self.unlinks = 0
        self.bytes_unlinked = 0
        self.missing = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "blobs.puts": self.puts,
            "blobs.dedup_hits": self.dedup_hits,
            "blobs.files_written": self.files_written,
            "blobs.bytes_written": self.bytes_written,
            "blobs.bytes_deduped": self.bytes_deduped,
            "blobs.reads": self.reads,
            "blobs.bytes_read": self.bytes_read,
            "blobs.unlinks": self.unlinks,
            "blobs.bytes_unlinked": self.bytes_unlinked,
            "blobs.missing": self.missing,
        }


class BlobStore:
    """Immutable sha256-keyed files under one root directory."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = os.fspath(root)
        os.makedirs(self._root, exist_ok=True)
        self._lock = threading.Lock()
        self._tmp_seq = 0
        self.stats = BlobStats()

    @property
    def root(self) -> str:
        """The blob directory."""
        return self._root

    def path_of(self, key: str) -> str:
        """Filesystem path of a content key (``blobs/ab/cdef...``)."""
        if len(key) != KEY_HEX_LEN:
            raise BlobError(f"malformed blob key {key!r}")
        return os.path.join(self._root, key[:2], key[2:])

    def exists(self, key: str) -> bool:
        """True when the content file is on disk."""
        return os.path.exists(self.path_of(key))

    def put(self, content: bytes) -> str:
        """Store ``content``; returns its key.  Idempotent by construction:
        ``put(b) == put(b)`` is one key and (after the first call) no I/O."""
        key = blob_key(content)
        path = self.path_of(key)
        self.stats.puts += 1
        if os.path.exists(path):
            # Content-addressing makes the existence check sufficient: the
            # file's bytes *are* the key's preimage, whoever wrote it.
            self.stats.dedup_hits += 1
            self.stats.bytes_deduped += len(content)
            return key
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        tmp = os.path.join(directory, f".tmp-{os.getpid()}-{seq}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(content)
                fh.flush()
                os.fsync(fh.fileno())
            os.rename(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.files_written += 1
        self.stats.bytes_written += len(content)
        return key

    def get(self, key: str) -> bytes:
        """Read a blob's content; raises :class:`BlobMissingError` if gone."""
        try:
            with open(self.path_of(key), "rb") as fh:
                content = fh.read()
        except FileNotFoundError:
            self.stats.missing += 1
            raise BlobMissingError(f"blob {key} is not on disk") from None
        self.stats.reads += 1
        self.stats.bytes_read += len(content)
        return content

    def size_of(self, key: str) -> int | None:
        """On-disk size of a blob, or None when the file is gone."""
        try:
            return os.path.getsize(self.path_of(key))
        except OSError:
            return None

    def unlink(self, key: str) -> int:
        """Remove a blob file; returns the bytes freed (0 if already gone).

        Only the GC tombstone protocol calls this -- the tombstone must be
        durable in the WAL *before* the unlink.
        """
        path = self.path_of(key)
        try:
            size = os.path.getsize(path)
            os.unlink(path)
        except OSError:
            return 0
        self.stats.unlinks += 1
        self.stats.bytes_unlinked += size
        return size

    def keys(self) -> Iterator[str]:
        """Iterate the keys of every content file on disk (sorted).

        Temp files from interrupted puts are swept as they are found --
        they were never renamed, so nothing can reference them.
        """
        try:
            fanouts = sorted(os.listdir(self._root))
        except FileNotFoundError:
            return
        for fanout in fanouts:
            subdir = os.path.join(self._root, fanout)
            if len(fanout) != 2 or not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.startswith(".tmp-"):
                    try:
                        os.unlink(os.path.join(subdir, name))
                    except OSError:
                        pass
                    continue
                key = fanout + name
                if len(key) == KEY_HEX_LEN:
                    yield key

    def file_count(self) -> int:
        """Number of content files on disk."""
        return sum(1 for _ in self.keys())

    def total_bytes(self) -> int:
        """Total content bytes on disk."""
        total = 0
        for key in self.keys():
            size = self.size_of(key)
            if size is not None:
                total += size
        return total
