"""Stable binary codec for persistent object state.

The Ode persistence library stores C++ object images; the Python analogue
needs a codec that is (a) *stable* -- the byte encoding of a value never
changes across runs, so deltas and WAL replay are deterministic -- and
(b) *closed* -- only a known set of types can be persisted, so a database
file can always be read back without importing arbitrary code.

Supported values:

* ``None``, ``bool``, ``int`` (arbitrary precision), ``float``, ``str``,
  ``bytes``
* ``list``, ``tuple``, ``dict``, ``set``, ``frozenset`` of supported values
* :class:`~repro.core.identity.Oid` and :class:`~repro.core.identity.Vid`
  (persistent references -- the on-disk form of the paper's object ids and
  version ids)
* registered *persistent types*: any class registered via
  :func:`register_type` is encoded as ``(type name, state dict)`` where the
  state comes from ``__getstate__``/``obj.__dict__``.

Integers use zig-zag varints; containers are length-prefixed.  ``dict``
preserves insertion order (like Python).  ``set``/``frozenset`` elements are
sorted by their encoded bytes so equal sets always encode identically.

We deliberately do **not** use :mod:`pickle`: pickle is neither stable
across Python versions nor safe to load from an untrusted database file.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.errors import SerializationError

# Tag bytes.  Never renumber -- they are on-disk format.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_SET = 0x0A
_T_FROZENSET = 0x0B
_T_OID = 0x0C
_T_VID = 0x0D
_T_OBJECT = 0x0E
_T_BIGINT = 0x0F  # ints that overflow a 64-bit zig-zag varint

_F64 = struct.Struct("<d")

# Registry: class <-> stable name.  Populated by register_type().
_TYPE_BY_NAME: dict[str, type] = {}
_NAME_BY_TYPE: dict[type, str] = {}

# Hooks installed by repro.core so that Oid/Vid/Ref encode without a
# circular import at module load time.  They are set in repro.core.identity.
_oid_codec: tuple[Callable[[Any], bytes], Callable[[bytes], Any]] | None = None
_vid_codec: tuple[Callable[[Any], bytes], Callable[[bytes], Any]] | None = None
_oid_type: type | None = None
_vid_type: type | None = None


def install_identity_codec(
    oid_type: type,
    oid_encode: Callable[[Any], bytes],
    oid_decode: Callable[[bytes], Any],
    vid_type: type,
    vid_encode: Callable[[Any], bytes],
    vid_decode: Callable[[bytes], Any],
) -> None:
    """Wire the identity types into the codec (called by repro.core.identity)."""
    global _oid_codec, _vid_codec, _oid_type, _vid_type
    _oid_codec = (oid_encode, oid_decode)
    _vid_codec = (vid_encode, vid_decode)
    _oid_type = oid_type
    _vid_type = vid_type


_ref_unwrappers: list[tuple[type, Callable[[Any], Any]]] = []


def install_reference_unwrapper(ref_type: type, to_id: Callable[[Any], Any]) -> None:
    """Teach the codec to encode a live reference proxy as its id.

    Installed by :mod:`repro.core.pointers` so that a Ref nested anywhere in
    persistent state is stored as its Oid (and a VersionRef as its Vid) --
    decoding yields the id, and access through a reference re-binds it.
    """
    _ref_unwrappers.append((ref_type, to_id))


def register_type(cls: type, name: str | None = None) -> type:
    """Register ``cls`` as a persistable type under a stable ``name``.

    Usable as a decorator::

        @register_type
        class Part: ...

    Instances are encoded as their ``__getstate__()`` (or ``__dict__``) and
    decoded via ``cls.__new__`` + ``__setstate__`` (or ``__dict__.update``),
    so no constructor runs on load.  Re-registering the same class under the
    same name is a no-op; a name collision with a different class raises.
    """
    if name is None:
        name = f"{cls.__module__}.{cls.__qualname__}"
    existing = _TYPE_BY_NAME.get(name)
    if existing is not None and existing is not cls:
        raise SerializationError(f"type name {name!r} already registered to {existing!r}")
    _TYPE_BY_NAME[name] = cls
    _NAME_BY_TYPE[cls] = name
    return cls


def registered_name(cls: type) -> str | None:
    """The stable name ``cls`` was registered under, or None."""
    return _NAME_BY_TYPE.get(cls)


def lookup_type(name: str) -> type:
    """Resolve a stable type name back to the class; raises if unknown."""
    try:
        return _TYPE_BY_NAME[name]
    except KeyError:
        raise SerializationError(f"unknown persistent type {name!r}") from None


# ---------------------------------------------------------------------------
# Varints
# ---------------------------------------------------------------------------


def write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise SerializationError("uvarint cannot encode negative values")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned varint at ``pos``; return ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63 + 7:
            raise SerializationError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else -1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        if -(1 << 63) <= value < (1 << 63):
            out.append(_T_INT)
            write_uvarint(out, _zigzag(value))
        else:
            out.append(_T_BIGINT)
            raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "little", signed=True)
            write_uvarint(out, len(raw))
            out.extend(raw)
    elif type(value) is float:
        out.append(_T_FLOAT)
        out.extend(_F64.pack(value))
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        write_uvarint(out, len(raw))
        out.extend(raw)
    elif type(value) is bytes:
        out.append(_T_BYTES)
        write_uvarint(out, len(value))
        out.extend(value)
    elif type(value) is list:
        out.append(_T_LIST)
        write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is dict:
        out.append(_T_DICT)
        write_uvarint(out, len(value))
        for key, val in value.items():
            _encode_into(out, key)
            _encode_into(out, val)
    elif type(value) in (set, frozenset):
        out.append(_T_SET if type(value) is set else _T_FROZENSET)
        encoded = sorted(encode(item) for item in value)
        write_uvarint(out, len(encoded))
        for raw in encoded:
            out.extend(raw)
    elif _oid_type is not None and type(value) is _oid_type:
        assert _oid_codec is not None
        raw = _oid_codec[0](value)
        out.append(_T_OID)
        write_uvarint(out, len(raw))
        out.extend(raw)
    elif _vid_type is not None and type(value) is _vid_type:
        assert _vid_codec is not None
        raw = _vid_codec[0](value)
        out.append(_T_VID)
        write_uvarint(out, len(raw))
        out.extend(raw)
    else:
        for ref_type, to_id in _ref_unwrappers:
            if isinstance(value, ref_type):
                _encode_into(out, to_id(value))
                return
        name = _NAME_BY_TYPE.get(type(value))
        if name is None:
            raise SerializationError(
                f"cannot persist value of unregistered type {type(value).__qualname__}"
            )
        getstate = getattr(value, "__getstate__", None)
        state = getstate() if callable(getstate) else dict(value.__dict__)
        if state is None:
            # Python 3.11+: object.__getstate__ returns None when __dict__
            # is empty; persist the empty state rather than failing.
            state = dict(value.__dict__)
        if not isinstance(state, dict):
            raise SerializationError(
                f"{name}: __getstate__ must return a dict, got {type(state).__qualname__}"
            )
        out.append(_T_OBJECT)
        _encode_into(out, name)
        _encode_into(out, state)


def encode_into(out: bytearray, value: Any) -> None:
    """Append the stable encoding of ``value`` to ``out`` in place.

    The zero-copy sibling of :func:`encode`: callers assembling a larger
    buffer (the wire-protocol framer, the WAL) write the payload directly
    into it instead of paying ``encode()``'s final ``bytes()`` copy.
    Raises :class:`SerializationError`; on failure ``out`` may hold a
    partial encoding, so append into a scratch region you can truncate.
    """
    _encode_into(out, value)


def encode(value: Any) -> bytes:
    """Encode ``value`` to stable bytes.  Raises :class:`SerializationError`."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_at(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise SerializationError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        raw, pos = read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == _T_BIGINT:
        length, pos = read_uvarint(data, pos)
        if pos + length > len(data):
            raise SerializationError("truncated bigint")
        value = int.from_bytes(data[pos : pos + length], "little", signed=True)
        return value, pos + length
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise SerializationError("truncated float")
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == _T_STR:
        length, pos = read_uvarint(data, pos)
        if pos + length > len(data):
            raise SerializationError("truncated string")
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == _T_BYTES:
        length, pos = read_uvarint(data, pos)
        if pos + length > len(data):
            raise SerializationError("truncated bytes")
        return data[pos : pos + length], pos + length
    if tag in (_T_LIST, _T_TUPLE):
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), pos
    if tag == _T_DICT:
        count, pos = read_uvarint(data, pos)
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_at(data, pos)
            val, pos = _decode_at(data, pos)
            result[key] = val
        return result, pos
    if tag in (_T_SET, _T_FROZENSET):
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return (set(items) if tag == _T_SET else frozenset(items)), pos
    if tag == _T_OID:
        if _oid_codec is None:
            raise SerializationError("identity codec not installed")
        length, pos = read_uvarint(data, pos)
        return _oid_codec[1](data[pos : pos + length]), pos + length
    if tag == _T_VID:
        if _vid_codec is None:
            raise SerializationError("identity codec not installed")
        length, pos = read_uvarint(data, pos)
        return _vid_codec[1](data[pos : pos + length]), pos + length
    if tag == _T_OBJECT:
        name, pos = _decode_at(data, pos)
        state, pos = _decode_at(data, pos)
        cls = lookup_type(name)
        obj = cls.__new__(cls)
        setstate = getattr(obj, "__setstate__", None)
        if callable(setstate):
            setstate(state)
        else:
            obj.__dict__.update(state)
        return obj, pos
    raise SerializationError(f"unknown tag byte 0x{tag:02x}")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`.

    Raises :class:`SerializationError` on trailing garbage, so a decoded
    record is always exactly one value.
    """
    value, pos = _decode_at(data, 0)
    if pos != len(data):
        raise SerializationError(f"{len(data) - pos} trailing bytes after value")
    return value


def decode_from(data: bytes, pos: int = 0) -> tuple[Any, int]:
    """Decode one value starting at ``pos``; returns ``(value, end)``.

    The offset sibling of :func:`decode` for callers unpacking a value
    embedded in a larger buffer (the wire protocol) without slicing a
    copy first.  No trailing-bytes check -- the enclosing format owns
    the length accounting.
    """
    return _decode_at(data, pos)
