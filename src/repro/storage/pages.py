"""Slotted pages: the lowest layer of the persistence library.

The paper's versioning kernel sits on the Buroff--Shasha C++ persistence
library; this module is the Python equivalent of its page layer.  A *page* is
a fixed-size byte buffer with a classic slotted layout:

::

    +--------------------------- PAGE_SIZE bytes ---------------------------+
    | header | slot dir (grows ->)        free space      (<- grows) records|
    +-----------------------------------------------------------------------+

    header  : num_slots (u16) | free_ptr (u16) | flags (u16) | reserved (u16)
    slot i  : offset (u16) | length (u16)      -- offset == 0 means "empty"

Records are inserted at ``free_ptr`` moving *down* from the end of the page;
slots are appended after the header moving *up*.  Deleting a record clears
its slot; :meth:`SlottedPage.compact` squeezes out the holes.  Record offsets
are never exposed outside this module -- callers use ``(page_id, slot)``
pairs (see :mod:`repro.storage.heap`).

The implementation favours explicitness over cleverness: every structural
mutation re-checks the page invariants in ``__debug__`` builds.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.errors import BadSlotError, PageFullError
from repro.storage import faults

#: Size of every page in the database file, in bytes.
PAGE_SIZE = 4096

#: Byte offset where the slot directory starts (just after the header).
_HEADER_SIZE = 8

_HEADER = struct.Struct("<HHHH")  # num_slots, free_ptr, flags, reserved
_SLOT = struct.Struct("<HH")  # offset, length

#: A slot whose offset field is 0 is empty (offset 0 is inside the header,
#: so no live record can ever start there).
_EMPTY_OFFSET = 0

#: Maximum payload a single page can hold (one slot + the record bytes).
MAX_RECORD_PAYLOAD = PAGE_SIZE - _HEADER_SIZE - _SLOT.size


class SlottedPage:
    """A mutable slotted page over a ``bytearray`` of :data:`PAGE_SIZE` bytes.

    The page does not know its own page id; ownership of ids belongs to the
    disk manager and buffer pool.  All record payloads are ``bytes``.
    """

    __slots__ = ("_buf",)

    def __init__(self, buf: bytearray | None = None) -> None:
        if buf is None:
            buf = bytearray(PAGE_SIZE)
            self._buf = buf
            self._write_header(num_slots=0, free_ptr=PAGE_SIZE, flags=0)
            return
        if len(buf) != PAGE_SIZE:
            raise ValueError(f"page buffer must be {PAGE_SIZE} bytes, got {len(buf)}")
        self._buf = buf
        num_slots, free_ptr, _flags, _ = _HEADER.unpack_from(buf, 0)
        if free_ptr == 0 and num_slots == 0:
            # A freshly zeroed buffer from the disk manager: format it.
            self._write_header(num_slots=0, free_ptr=PAGE_SIZE, flags=0)

    # -- header ------------------------------------------------------------

    def _write_header(self, num_slots: int, free_ptr: int, flags: int) -> None:
        _HEADER.pack_into(self._buf, 0, num_slots, free_ptr, flags, 0)

    @property
    def num_slots(self) -> int:
        """Number of slot directory entries (including empty ones)."""
        return _HEADER.unpack_from(self._buf, 0)[0]

    @property
    def _free_ptr(self) -> int:
        return _HEADER.unpack_from(self._buf, 0)[1]

    @property
    def flags(self) -> int:
        """Free-form 16-bit flags word for the page's owner."""
        return _HEADER.unpack_from(self._buf, 0)[2]

    @flags.setter
    def flags(self, value: int) -> None:
        num_slots, free_ptr, _flags, _ = _HEADER.unpack_from(self._buf, 0)
        self._write_header(num_slots, free_ptr, value)

    # -- slot directory ----------------------------------------------------

    def _slot_pos(self, slot: int) -> int:
        return _HEADER_SIZE + slot * _SLOT.size

    def _read_slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.num_slots:
            raise BadSlotError(f"slot {slot} out of range (page has {self.num_slots})")
        return _SLOT.unpack_from(self._buf, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._buf, self._slot_pos(slot), offset, length)

    # -- space accounting ----------------------------------------------------

    @property
    def free_space(self) -> int:
        """Bytes available for a new record, accounting for its slot entry.

        Includes space reclaimable by compaction, since :meth:`insert`
        compacts automatically when fragmentation is the only blocker.
        """
        dir_end = _HEADER_SIZE + self.num_slots * _SLOT.size
        gap = max(self._free_ptr - dir_end, self._compacted_gap())
        return max(0, gap - _SLOT.size)

    def _find_empty_slot(self) -> int | None:
        for slot in range(self.num_slots):
            offset, _length = self._read_slot(slot)
            if offset == _EMPTY_OFFSET:
                return slot
        return None

    def can_insert(self, length: int) -> bool:
        """Return True if a record of ``length`` bytes fits in this page.

        Accounts for space reclaimable by :meth:`compact` -- :meth:`insert`
        compacts automatically when fragmentation is the only blocker.
        """
        dir_end = _HEADER_SIZE + self.num_slots * _SLOT.size
        gap = self._free_ptr - dir_end
        slot_cost = 0 if self._find_empty_slot() is not None else _SLOT.size
        if gap >= length + slot_cost:
            return True
        return self._compacted_gap() >= length + slot_cost

    def _compacted_gap(self) -> int:
        """The contiguous gap :meth:`compact` would produce."""
        live_bytes = sum(length for _, length in self._live_slots())
        dir_end = _HEADER_SIZE + self.num_slots * _SLOT.size
        return PAGE_SIZE - live_bytes - dir_end

    def _live_slots(self) -> Iterator[tuple[int, int]]:
        for slot in range(self.num_slots):
            offset, length = self._read_slot(slot)
            if offset != _EMPTY_OFFSET:
                yield slot, length

    # -- record operations ---------------------------------------------------

    def insert(self, payload: bytes) -> int:
        """Insert ``payload`` and return its slot number.

        Raises :class:`PageFullError` if the payload does not fit.  A record
        may be empty (``b""``); it still occupies a slot.
        """
        length = len(payload)
        if length > MAX_RECORD_PAYLOAD:
            raise PageFullError(
                f"record of {length} bytes exceeds page capacity {MAX_RECORD_PAYLOAD}"
            )
        if not self.can_insert(length):
            raise PageFullError(f"record of {length} bytes does not fit in page")
        slot = self._find_empty_slot()
        num_slots, free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
        dir_end = _HEADER_SIZE + (num_slots + (1 if slot is None else 0)) * _SLOT.size
        if free_ptr - dir_end < length:
            # Fits only after squeezing out holes left by deletes/updates.
            self.compact()
            slot = self._find_empty_slot()
            num_slots, free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
        if slot is None:
            slot = num_slots
            num_slots += 1
        offset = free_ptr - length
        if length:
            self._buf[offset : offset + length] = payload
            self._write_header(num_slots, offset, flags)
            self._write_slot(slot, offset, length)
        else:
            # Zero-length record: mark the slot live with a sentinel offset
            # pointing at the current free_ptr; length 0 disambiguates.
            self._write_header(num_slots, free_ptr, flags)
            self._write_slot(slot, free_ptr if free_ptr != 0 else PAGE_SIZE, 0)
        return slot

    def insert_at(self, slot: int, payload: bytes) -> None:
        """Insert ``payload`` at a *specific* slot number (WAL replay only).

        The slot directory is extended with empty slots as needed.  Raises
        :class:`BadSlotError` if the slot is already occupied and
        :class:`PageFullError` if the payload does not fit.
        """
        num_slots, free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
        needed_slots = max(0, slot + 1 - num_slots)
        length = len(payload)
        dir_end = _HEADER_SIZE + (num_slots + needed_slots) * _SLOT.size
        if free_ptr - dir_end < length:
            # Replay applies deletes and inserts in log first-touch order,
            # so the free space may be fragmented even though the insert
            # fit at runtime.  Compact before giving up, exactly like the
            # runtime insert path does.
            self.compact()
            _, free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
            if free_ptr - dir_end < length:
                raise PageFullError(
                    f"record of {length} bytes does not fit at slot {slot}"
                )
        if slot < num_slots:
            offset, _ = self._read_slot(slot)
            if offset != _EMPTY_OFFSET:
                raise BadSlotError(f"slot {slot} is already occupied")
        new_num_slots = max(num_slots, slot + 1)
        # Zero-fill any newly revealed slots so they read as empty.
        for s in range(num_slots, new_num_slots):
            _SLOT.pack_into(self._buf, self._slot_pos(s), _EMPTY_OFFSET, 0)
        if length:
            offset = free_ptr - length
            self._buf[offset : offset + length] = payload
            self._write_header(new_num_slots, offset, flags)
            self._write_slot(slot, offset, length)
        else:
            self._write_header(new_num_slots, free_ptr, flags)
            self._write_slot(slot, free_ptr if free_ptr != 0 else PAGE_SIZE, 0)

    def read(self, slot: int) -> bytes:
        """Return the payload stored at ``slot``.

        Raises :class:`BadSlotError` if the slot is empty or out of range.
        """
        offset, length = self._read_slot(slot)
        if offset == _EMPTY_OFFSET:
            raise BadSlotError(f"slot {slot} is empty")
        return bytes(self._buf[offset : offset + length])

    def update(self, slot: int, payload: bytes) -> None:
        """Replace the record at ``slot`` with ``payload``.

        Updates in place when the new payload is not larger than the old one;
        otherwise the old space is abandoned (reclaimed by :meth:`compact`)
        and the record is re-inserted, keeping the same slot number.  Raises
        :class:`PageFullError` when the grown record no longer fits.
        """
        offset, length = self._read_slot(slot)
        if offset == _EMPTY_OFFSET:
            raise BadSlotError(f"slot {slot} is empty")
        new_length = len(payload)
        if 0 < new_length <= length:
            self._buf[offset : offset + new_length] = payload
            self._write_slot(slot, offset, new_length)
            return
        # Grown (or grown-from/shrunk-to empty): release then re-place.
        # Check fitness BEFORE touching the slot -- update must be atomic:
        # on PageFullError the old record is still intact.
        faults.fire("page.update.grow")
        num_slots, free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
        dir_end = _HEADER_SIZE + num_slots * _SLOT.size
        after_compact = self._compacted_gap() + length  # old copy freed too
        if free_ptr - dir_end < new_length and after_compact < new_length:
            raise PageFullError(
                f"updated record of {new_length} bytes does not fit in page"
            )
        if free_ptr - dir_end < new_length:
            self._write_slot(slot, _EMPTY_OFFSET, 0)
            self.compact()
            num_slots, free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
        else:
            self._write_slot(slot, _EMPTY_OFFSET, 0)
        if new_length:
            new_offset = free_ptr - new_length
            self._buf[new_offset : new_offset + new_length] = payload
            self._write_header(num_slots, new_offset, flags)
            self._write_slot(slot, new_offset, new_length)
        else:
            self._write_slot(slot, free_ptr if free_ptr != 0 else PAGE_SIZE, 0)

    def delete(self, slot: int) -> None:
        """Remove the record at ``slot`` (the slot entry becomes empty)."""
        offset, _length = self._read_slot(slot)
        if offset == _EMPTY_OFFSET:
            raise BadSlotError(f"slot {slot} is already empty")
        self._write_slot(slot, _EMPTY_OFFSET, 0)
        # Trim trailing empty slots so the directory does not grow forever.
        num_slots, free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
        while num_slots > 0:
            off, _ = _SLOT.unpack_from(self._buf, self._slot_pos(num_slots - 1))
            if off != _EMPTY_OFFSET:
                break
            num_slots -= 1
        self._write_header(num_slots, free_ptr, flags)

    def has_record(self, slot: int) -> bool:
        """Return True if ``slot`` exists and holds a record."""
        if not 0 <= slot < self.num_slots:
            return False
        offset, _length = self._read_slot(slot)
        return offset != _EMPTY_OFFSET

    def compact(self) -> None:
        """Slide all live records to the end of the page, removing holes."""
        faults.fire("page.compact")
        records: list[tuple[int, bytes]] = list(self.records())
        num_slots, _free_ptr, flags, _ = _HEADER.unpack_from(self._buf, 0)
        free_ptr = PAGE_SIZE
        # Clear every slot, then re-place the live records.
        for slot in range(num_slots):
            self._write_slot(slot, _EMPTY_OFFSET, 0)
        for slot, payload in records:
            length = len(payload)
            if length:
                free_ptr -= length
                self._buf[free_ptr : free_ptr + length] = payload
                self._write_slot(slot, free_ptr, length)
            else:
                self._write_slot(slot, PAGE_SIZE, 0)
        self._write_header(num_slots, free_ptr, flags)

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, payload)`` for every live record, slot order."""
        for slot in range(self.num_slots):
            offset, length = self._read_slot(slot)
            if offset != _EMPTY_OFFSET:
                yield slot, bytes(self._buf[offset : offset + length])

    def live_count(self) -> int:
        """Number of live records in the page."""
        return sum(1 for _ in self.records())

    def validate(self) -> list[str]:
        """Structural problems with this page's layout (empty == sound).

        Used by the strict consistency checker after crash recovery: the
        header must be self-consistent and every live record extent must
        lie in the record area without overlapping any other.
        """
        problems: list[str] = []
        num_slots, free_ptr, _flags, _ = _HEADER.unpack_from(self._buf, 0)
        dir_end = _HEADER_SIZE + num_slots * _SLOT.size
        if not dir_end <= free_ptr <= PAGE_SIZE:
            problems.append(
                f"free_ptr {free_ptr} outside [{dir_end}, {PAGE_SIZE}]"
            )
            return problems
        extents: list[tuple[int, int, int]] = []
        for slot in range(num_slots):
            offset, length = _SLOT.unpack_from(self._buf, self._slot_pos(slot))
            if offset == _EMPTY_OFFSET or length == 0:
                continue  # empty, or a zero-length record (no extent)
            if offset < free_ptr or offset + length > PAGE_SIZE:
                problems.append(
                    f"slot {slot} extent [{offset}, {offset + length}) "
                    f"outside record area [{free_ptr}, {PAGE_SIZE})"
                )
                continue
            extents.append((offset, offset + length, slot))
        extents.sort()
        for (_s1, e1, a), (s2, _e2, b) in zip(extents, extents[1:]):
            if e1 > s2:
                problems.append(f"slots {a} and {b} overlap")
        return problems

    # -- raw access ---------------------------------------------------------

    def raw(self) -> bytes:
        """The page's full :data:`PAGE_SIZE`-byte image (a copy)."""
        return bytes(self._buf)

    def buffer(self) -> bytearray:
        """The underlying mutable buffer (shared, not a copy)."""
        return self._buf
