"""Heap files: unordered record storage with stable record ids.

A heap file is a set of slotted pages tagged with the heap's ``file_id`` in
the page ``flags`` word.  A record id (:class:`Rid`) is ``(page_id, slot)``
and is stable for the life of the record -- the object table and version
store persist Rids inside other records.

Records larger than one page are stored *spanning*: the payload is split
into fragment records and a small master record lists the fragment Rids.
The split is internal; callers only ever see logical payloads and the
master's Rid.  Physically, every stored record starts with a marker byte::

    0x00  inline    marker | payload
    0x01  master    marker | codec(total_len, [fragment rids...])
    0x02  fragment  marker | chunk

The WAL logs *physical* records (marker included), so crash recovery never
needs to understand spanning.

Write-ahead logging is threaded through an optional ``log_op`` callback:
``log_op(kind, file_id, page_id, slot, payload, undo_payload)``.  The
transaction
layer passes a callback that appends to the WAL (and records the op for
in-memory rollback); passing ``None`` performs unlogged writes (used by
bulk loaders in benchmarks, and by WAL replay itself).
"""

from __future__ import annotations

from typing import Callable, Iterator, NamedTuple

from repro.errors import HeapError, PageFullError, RecordNotFoundError
from repro.storage import faults, serialization
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.pages import MAX_RECORD_PAYLOAD, SlottedPage
from repro.storage.stripes import StripedLock
from repro.storage.wal import OP_DELETE, OP_INSERT, OP_UPDATE

_INLINE = 0x00
_MASTER = 0x01
_FRAGMENT = 0x02
_FORWARD = 0x03
_RELOC_INLINE = 0x04
_RELOC_MASTER = 0x05

#: Relocated counterpart of each primary marker (forwarding targets).
_RELOC_OF = {_INLINE: _RELOC_INLINE, _MASTER: _RELOC_MASTER}

#: Max logical payload that fits inline (one marker byte of overhead).
MAX_INLINE = MAX_RECORD_PAYLOAD - 1

#: Fragment chunk size: leave room for marker + slot overhead.
_FRAGMENT_CHUNK = MAX_RECORD_PAYLOAD - 1

#: ``log_op(kind, file_id, page_id, slot, payload, undo_payload)``
LogOp = Callable[[int, int, int, int, bytes, bytes], None]


class Rid(NamedTuple):
    """A record id: page number and slot within the page."""

    page_id: int
    slot: int

    def pack(self) -> tuple[int, int]:
        """Plain-tuple form for embedding in serialized state."""
        return (self.page_id, self.slot)


class HeapFile:
    """Record storage for one heap, identified by a small ``file_id``.

    ``file_id`` must be in ``1..65535`` (it lives in the 16-bit page flags
    word; 0 means "unowned page").
    """

    def __init__(
        self,
        file_id: int,
        disk: DiskManager,
        pool: BufferPool,
        known_pages: list[int] | None = None,
        page_locks: StripedLock | None = None,
    ) -> None:
        if not 1 <= file_id <= 0xFFFF:
            raise HeapError(f"heap file id must be 1..65535, got {file_id}")
        self._file_id = file_id
        self._disk = disk
        self._pool = pool
        # Striped page locks guard each physical op's fetch..unpin window
        # against lock-free snapshot readers; one stripe is held at a time,
        # so the stripes cannot deadlock.  None = single-threaded heap.
        self._page_locks = page_locks
        self._pages: list[int] = list(known_pages) if known_pages else []
        # Approximate free space per page; refreshed lazily.
        self._free: dict[int, int] = {}
        if known_pages is None:
            self._discover_pages()

    @property
    def file_id(self) -> int:
        """This heap's id (also the flags tag on its pages)."""
        return self._file_id

    @property
    def page_ids(self) -> list[int]:
        """The page ids currently owned by this heap (copy)."""
        return list(self._pages)

    def _discover_pages(self) -> None:
        """Scan the database file for pages tagged with our file id."""
        for page_id in range(1, self._disk.num_pages):
            with self._pool.page(page_id) as page:
                if page.flags == self._file_id:
                    self._pages.append(page_id)
                    self._free[page_id] = page.free_space

    # -- physical record operations (marker-level) ---------------------------

    def _find_page_for(self, length: int) -> int:
        """A page with room for a ``length``-byte physical record, or new."""
        # Check cached candidates first (most recently touched pages).
        for page_id in list(self._free):
            if self._free[page_id] >= length:
                with self._pool.page(page_id) as page:
                    if page.can_insert(length):
                        return page_id
                    self._free[page_id] = page.free_space
            if len(self._free) > 16 and self._free.get(page_id, 0) < 64:
                del self._free[page_id]
        page_id, page = self._pool.new_page()
        page.flags = self._file_id
        self._pool.unpin(page_id, dirty=True)
        self._pages.append(page_id)
        self._free[page_id] = page.free_space
        return page_id

    def _stripe_acquire(self, page_id: int) -> None:
        if self._page_locks is not None:
            self._page_locks.acquire(page_id)

    def _stripe_release(self, page_id: int) -> None:
        if self._page_locks is not None:
            self._page_locks.release(page_id)

    def _physical_insert(self, physical: bytes, log_op: LogOp | None) -> Rid:
        faults.fire("heap.insert.pre")
        page_id = self._find_page_for(len(physical))
        self._stripe_acquire(page_id)
        try:
            page = self._pool.fetch(page_id)
            try:
                slot = page.insert(physical)
                self._free[page_id] = page.free_space
            finally:
                self._pool.unpin(page_id, dirty=True)
        finally:
            self._stripe_release(page_id)
        if log_op is not None:
            log_op(OP_INSERT, self._file_id, page_id, slot, physical, b"")
        faults.fire("heap.insert.post")
        return Rid(page_id, slot)

    def _physical_read(self, rid: Rid) -> bytes:
        if rid.page_id not in self._free and rid.page_id not in self._pages:
            # Unknown page: treat as missing record rather than disk error.
            raise RecordNotFoundError(f"no record at {rid} (unknown page)")
        self._stripe_acquire(rid.page_id)
        try:
            with self._pool.page(rid.page_id) as page:
                if not page.has_record(rid.slot):
                    raise RecordNotFoundError(f"no record at {rid}")
                return page.read(rid.slot)
        finally:
            self._stripe_release(rid.page_id)

    def _physical_update(self, rid: Rid, physical: bytes, log_op: LogOp | None) -> None:
        faults.fire("heap.update.pre")
        self._stripe_acquire(rid.page_id)
        try:
            page = self._pool.fetch(rid.page_id)
            try:
                if not page.has_record(rid.slot):
                    raise RecordNotFoundError(f"no record at {rid}")
                old = page.read(rid.slot)
                page.update(rid.slot, physical)
                self._free[rid.page_id] = page.free_space
            finally:
                self._pool.unpin(rid.page_id, dirty=True)
        finally:
            self._stripe_release(rid.page_id)
        if log_op is not None:
            log_op(OP_UPDATE, self._file_id, rid.page_id, rid.slot, physical, old)
        faults.fire("heap.update.post")

    def _physical_delete(self, rid: Rid, log_op: LogOp | None) -> None:
        faults.fire("heap.delete.pre")
        self._stripe_acquire(rid.page_id)
        try:
            page = self._pool.fetch(rid.page_id)
            try:
                if not page.has_record(rid.slot):
                    raise RecordNotFoundError(f"no record at {rid}")
                old = page.read(rid.slot)
                page.delete(rid.slot)
                self._free[rid.page_id] = page.free_space
            finally:
                self._pool.unpin(rid.page_id, dirty=True)
        finally:
            self._stripe_release(rid.page_id)
        if log_op is not None:
            log_op(OP_DELETE, self._file_id, rid.page_id, rid.slot, b"", old)
        faults.fire("heap.delete.post")

    # -- logical record operations -------------------------------------------
    #
    # A record's home Rid is stable for its whole life.  If an update no
    # longer fits in the home page, the record body is *relocated* to
    # another page (marker _RELOC_*) and the home slot becomes a small
    # _FORWARD stub pointing at it -- the classic slotted-page forwarding
    # technique.  Forward chains never exceed one hop: re-relocation
    # rewrites the home stub.  Relocated records and fragments are not
    # addressable and are skipped by scan().

    def _build_body(
        self, payload: bytes, relocated: bool, log_op: LogOp | None
    ) -> bytes:
        """The physical body record for a logical payload (spans if needed)."""
        if relocated:
            inline_marker, master_marker = _RELOC_INLINE, _RELOC_MASTER
        else:
            inline_marker, master_marker = _INLINE, _MASTER
        if len(payload) <= MAX_INLINE:
            return bytes([inline_marker]) + payload
        fragments: list[tuple[int, int]] = []
        for start in range(0, len(payload), _FRAGMENT_CHUNK):
            faults.fire("heap.span.fragment")
            chunk = payload[start : start + _FRAGMENT_CHUNK]
            frag_rid = self._physical_insert(bytes([_FRAGMENT]) + chunk, log_op)
            fragments.append(frag_rid.pack())
        master = bytes([master_marker]) + serialization.encode(
            (len(payload), fragments)
        )
        if len(master) > MAX_RECORD_PAYLOAD:
            raise HeapError("record too large: master fragment list overflows a page")
        return master

    def _resolve(self, rid: Rid) -> tuple[bytes, Rid | None]:
        """Return ``(body_physical, target_rid)`` for the record at ``rid``.

        ``target_rid`` is None for a record living in its home slot, or the
        relocated body's Rid when the home slot is a forward stub.  Raises
        for fragments and directly-addressed relocated bodies.
        """
        physical = self._physical_read(rid)
        marker = physical[0]
        if marker == _FRAGMENT:
            raise HeapError(f"{rid} is a spanning fragment, not a record")
        if marker in (_RELOC_INLINE, _RELOC_MASTER):
            raise HeapError(f"{rid} is a relocated body, not an addressable record")
        if marker != _FORWARD:
            return physical, None
        page_id, slot = serialization.decode(physical[1:])
        target = Rid(page_id, slot)
        body = self._physical_read(target)
        if body[0] not in (_RELOC_INLINE, _RELOC_MASTER):
            raise HeapError(f"corrupt forward stub at {rid}")
        return body, target

    def _assemble(self, rid: Rid, body: bytes) -> bytes:
        """Logical payload from a body record (inline or spanning master)."""
        marker = body[0]
        if marker in (_INLINE, _RELOC_INLINE):
            return body[1:]
        total_len, fragments = serialization.decode(body[1:])
        out = bytearray()
        for page_id, slot in fragments:
            frag = self._physical_read(Rid(page_id, slot))
            if frag[0] != _FRAGMENT:
                raise HeapError(f"corrupt spanning chain at {rid}")
            out.extend(frag[1:])
        if len(out) != total_len:
            raise HeapError(
                f"spanning record at {rid}: got {len(out)} bytes, expected {total_len}"
            )
        return bytes(out)

    def _release_body(self, body: bytes, log_op: LogOp | None) -> None:
        """Delete the fragments of a spanning body (not the body itself)."""
        if body[0] in (_MASTER, _RELOC_MASTER):
            _total, fragments = serialization.decode(body[1:])
            for page_id, slot in fragments:
                self._physical_delete(Rid(page_id, slot), log_op)

    def insert(self, payload: bytes, log_op: LogOp | None = None) -> Rid:
        """Store ``payload`` and return its Rid (spanning if necessary)."""
        return self._physical_insert(self._build_body(payload, False, log_op), log_op)

    def read(self, rid: Rid) -> bytes:
        """Return the logical payload at ``rid``.

        Raises :class:`RecordNotFoundError` for missing records and
        :class:`HeapError` when ``rid`` names a spanning fragment or a
        relocated body (neither is an addressable record).
        """
        body, _target = self._resolve(rid)
        return self._assemble(rid, body)

    def update(self, rid: Rid, payload: bytes, log_op: LogOp | None = None) -> None:
        """Replace the payload at ``rid``; the Rid remains valid forever.

        Falls back to relocation-with-forwarding when the grown record no
        longer fits in its home (or current) page.
        """
        body, target = self._resolve(rid)
        self._release_body(body, log_op)
        home = target if target is not None else rid
        new_body = self._build_body(payload, target is not None, log_op)
        try:
            self._physical_update(home, new_body, log_op)
            return
        except PageFullError:
            pass
        # Relocate: the body moves to a fresh slot; the home Rid keeps (or
        # becomes) a small forward stub.
        if target is not None:
            # Already relocated once; move the body again and repoint.
            self._physical_delete(target, log_op)
            new_target = self._physical_insert(new_body, log_op)
            stub = bytes([_FORWARD]) + serialization.encode(new_target.pack())
            self._physical_update(rid, stub, log_op)
            return
        reloc_body = self._build_body(payload, True, log_op)
        new_target = self._physical_insert(reloc_body, log_op)
        stub = bytes([_FORWARD]) + serialization.encode(new_target.pack())
        try:
            self._physical_update(rid, stub, log_op)
        except PageFullError:
            # Even the ~16-byte stub does not fit (can only happen when the
            # existing record is smaller than the stub AND the page is
            # packed solid).  Undo the relocation and report.
            self._release_body(reloc_body, log_op)
            self._physical_delete(new_target, log_op)
            raise HeapError(f"record at {rid} cannot grow within its page") from None

    def delete(self, rid: Rid, log_op: LogOp | None = None) -> None:
        """Delete the record (with any fragments and relocated body) at ``rid``."""
        body, target = self._resolve(rid)
        self._release_body(body, log_op)
        if target is not None:
            self._physical_delete(target, log_op)
        self._physical_delete(rid, log_op)

    def exists(self, rid: Rid) -> bool:
        """True if an addressable logical record lives at ``rid``."""
        try:
            physical = self._physical_read(rid)
        except RecordNotFoundError:
            return False
        return physical[0] in (_INLINE, _MASTER, _FORWARD)

    def scan(self) -> Iterator[tuple[Rid, bytes]]:
        """Yield every logical record as ``(rid, payload)``, page order.

        Fragments and relocated bodies are internal and never yielded;
        forwarded records are yielded at their home Rid.
        """
        for page_id in list(self._pages):
            with self._pool.page(page_id) as page:
                entries = list(page.records())
            for slot, physical in entries:
                marker = physical[0]
                if marker == _INLINE:
                    yield Rid(page_id, slot), physical[1:]
                elif marker in (_MASTER, _FORWARD):
                    rid = Rid(page_id, slot)
                    yield rid, self.read(rid)

    def record_count(self) -> int:
        """Number of logical records (spans and relocations count once)."""
        return sum(1 for _ in self.scan())

    # -- WAL replay surface -----------------------------------------------------

    def _replay_page(self, page_id: int) -> SlottedPage:
        self._disk.ensure_allocated(page_id)
        page = self._pool.fetch(page_id)
        if page.flags != self._file_id:
            # Fresh (zeroed) page revived by replay: claim and format it.
            page.flags = self._file_id
        if page_id not in self._pages:
            self._pages.append(page_id)
        return page

    def replay_insert(self, page_id: int, slot: int, payload: bytes) -> None:
        """Redo an insert: ensure ``payload`` lives at ``(page_id, slot)``."""
        faults.fire("heap.replay_insert")
        page = self._replay_page(page_id)
        try:
            if page.has_record(slot):
                page.update(slot, payload)
            else:
                page.insert_at(slot, payload)
            self._free[page_id] = page.free_space
        finally:
            self._pool.unpin(page_id, dirty=True)

    def replay_update(self, page_id: int, slot: int, payload: bytes) -> None:
        """Redo an update (inserts if the record never reached the page)."""
        self.replay_insert(page_id, slot, payload)

    def replay_delete(self, page_id: int, slot: int) -> None:
        """Redo a delete; a missing record is fine (already gone)."""
        faults.fire("heap.replay_delete")
        page = self._replay_page(page_id)
        try:
            if page.has_record(slot):
                page.delete(slot)
            self._free[page_id] = page.free_space
        finally:
            self._pool.unpin(page_id, dirty=True)
