"""Buffer pool: cached, pinnable page frames over the disk manager.

Higher layers never call :class:`~repro.storage.disk.DiskManager` directly;
they fetch pages through the pool, which keeps a bounded set of frames in
memory with LRU eviction.  A pinned frame is never evicted, and a dirty
frame is written back before its frame is reused.

The pool exposes pages as :class:`~repro.storage.pages.SlottedPage` views
over the frame's buffer, so mutations through the view are visible to the
pool; callers mark frames dirty via :meth:`BufferPool.unpin`.

Usage pattern (also wrapped by :meth:`BufferPool.page` as a context
manager)::

    page = pool.fetch(pid)
    try:
        slot = page.insert(payload)
    finally:
        pool.unpin(pid, dirty=True)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import BufferPoolError
from repro.storage.disk import DiskManager
from repro.storage.pages import SlottedPage

#: Default number of frames a pool holds.
DEFAULT_POOL_SIZE = 256


class _Frame:
    __slots__ = ("page_id", "page", "pins", "dirty")

    def __init__(self, page_id: int, page: SlottedPage) -> None:
        self.page_id = page_id
        self.page = page
        self.pins = 0
        self.dirty = False


class BufferPool:
    """A fixed-capacity, scan-resistant cache of pages with pin counting.

    Thread-safe.  ``capacity`` bounds resident frames; fetching a page when
    all frames are pinned raises :class:`BufferPoolError` rather than
    blocking, which turns buffer leaks into loud test failures.

    Eviction is segmented LRU: pages enter a *probationary* segment and
    are promoted to the *protected* segment (~80% of capacity) only on a
    re-hit.  Eviction drains probation first, so a one-pass scan -- a
    cluster sweep, a long delta-chain replay -- churns through probation
    without flushing the protected hot set (index roots, the object
    table's pages).
    """

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_POOL_SIZE) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self._disk = disk
        self._capacity = capacity
        self._protected_cap = max(1, (capacity * 4) // 5)
        #: Called once before any dirty page is written back.  The database
        #: installs the WAL flush here (write-ahead rule: log before data).
        self.before_write: Callable[[], None] | None = None
        # Both segments are LRU -> MRU ordered.
        self._probation: OrderedDict[int, _Frame] = OrderedDict()
        self._protected: OrderedDict[int, _Frame] = OrderedDict()
        self._lock = threading.RLock()
        # Statistics -- consumed by the kernel micro-benchmarks (E11).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.promotions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of resident frames."""
        return self._capacity

    @property
    def resident(self) -> int:
        """Number of frames currently in memory."""
        return len(self._probation) + len(self._protected)

    def _frame(self, page_id: int) -> _Frame | None:
        frame = self._probation.get(page_id)
        if frame is None:
            frame = self._protected.get(page_id)
        return frame

    def _iter_frames(self) -> Iterator[tuple[int, _Frame]]:
        yield from self._probation.items()
        yield from self._protected.items()

    # -- core protocol ---------------------------------------------------------

    def new_page(self) -> tuple[int, SlottedPage]:
        """Allocate a fresh page on disk and return it pinned.

        The caller owns one pin and must :meth:`unpin` it (dirty, normally).
        """
        page_id = self._disk.allocate_page()
        with self._lock:
            self._ensure_room()
            frame = _Frame(page_id, SlottedPage(bytearray(self._disk.read_page(page_id))))
            frame.pins = 1
            self._probation[page_id] = frame
            return page_id, frame.page

    def fetch(self, page_id: int) -> SlottedPage:
        """Pin and return page ``page_id``, reading it from disk on a miss."""
        with self._lock:
            frame = self._probation.get(page_id)
            if frame is not None:
                # Re-hit in probation proves reuse: promote to protected.
                self.hits += 1
                frame.pins += 1
                del self._probation[page_id]
                self._protected[page_id] = frame
                self.promotions += 1
                self._shrink_protected()
                return frame.page
            frame = self._protected.get(page_id)
            if frame is not None:
                self.hits += 1
                frame.pins += 1
                self._protected.move_to_end(page_id)
                return frame.page
            self.misses += 1
            self._ensure_room()
            frame = _Frame(page_id, SlottedPage(self._disk.read_page(page_id)))
            frame.pins = 1
            self._probation[page_id] = frame
            return frame.page

    def _shrink_protected(self) -> None:
        # Demote the protected LRU back to probation's MRU end when the
        # segment outgrows its share; it must earn a re-hit to return.
        while len(self._protected) > self._protected_cap:
            page_id, frame = self._protected.popitem(last=False)
            self._probation[page_id] = frame

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin on ``page_id``; ``dirty=True`` marks it modified."""
        with self._lock:
            frame = self._frame(page_id)
            if frame is None:
                raise BufferPoolError(f"unpin of non-resident page {page_id}")
            if frame.pins <= 0:
                raise BufferPoolError(f"unpin of unpinned page {page_id}")
            frame.pins -= 1
            if dirty:
                frame.dirty = True

    @contextmanager
    def page(self, page_id: int, dirty: bool = False) -> Iterator[SlottedPage]:
        """Context manager: fetch, yield, and unpin a page.

        ``dirty`` declares up front whether the body mutates the page.
        """
        page = self.fetch(page_id)
        try:
            yield page
        finally:
            self.unpin(page_id, dirty=dirty)

    def discard(self, page_id: int) -> None:
        """Drop page from the pool without writing it back (page was freed)."""
        with self._lock:
            frame = self._frame(page_id)
            if frame is None:
                return
            if frame.pins > 0:
                raise BufferPoolError(f"discard of pinned page {page_id}")
            self._probation.pop(page_id, None)
            self._protected.pop(page_id, None)

    # -- eviction & flushing ---------------------------------------------------

    def _ensure_room(self) -> None:
        if self.resident < self._capacity:
            return
        # Probation (cold, unproven pages) drains before protected.
        for segment in (self._probation, self._protected):
            for page_id, frame in segment.items():  # LRU -> MRU order
                if frame.pins == 0:
                    if frame.dirty:
                        if self.before_write is not None:
                            self.before_write()
                        self._disk.write_page(page_id, frame.page.raw())
                    del segment[page_id]
                    self.evictions += 1
                    return
        raise BufferPoolError(
            f"all {self._capacity} frames are pinned; cannot evict"
        )

    def flush_page(self, page_id: int) -> None:
        """Write one resident dirty page back to disk (keeps it resident)."""
        with self._lock:
            frame = self._frame(page_id)
            if frame is not None and frame.dirty:
                if self.before_write is not None:
                    self.before_write()
                self._disk.write_page(page_id, frame.page.raw())
                frame.dirty = False

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        with self._lock:
            if self.before_write is not None and any(
                f.dirty for _pid, f in self._iter_frames()
            ):
                self.before_write()
            for page_id, frame in self._iter_frames():
                if frame.dirty:
                    self._disk.write_page(page_id, frame.page.raw())
                    frame.dirty = False

    def drop_clean(self) -> None:
        """Evict all unpinned frames after flushing (for crash simulation)."""
        with self._lock:
            self.flush_all()
            for segment in (self._probation, self._protected):
                for page_id in [pid for pid, f in segment.items() if f.pins == 0]:
                    del segment[page_id]

    def pinned_pages(self) -> list[int]:
        """Page ids with outstanding pins (should be empty between ops)."""
        with self._lock:
            return [pid for pid, f in self._iter_frames() if f.pins > 0]
