"""Striped page locks: fine-grained mutual exclusion for heap page windows.

The snapshot read path (``repro.core.snapshot``) lets readers fetch heap
records without the database's global storage mutex.  Page *frames* are
already safe to share (the buffer pool pins them under its own lock), but
the bytes inside a frame are not: a writer compacting or rewriting a slot
while a reader copies the record out would tear the read.  A single lock
per page would be safest but heavyweight; a single global lock would
recreate the mutex this layer exists to remove.

:class:`StripedLock` is the standard middle ground -- N plain locks, a
page id hashing to one stripe.  Heap physical operations hold exactly one
stripe at a time (one page per physical op; spanning records take stripes
fragment-by-fragment), so stripes can never deadlock against each other.
Writers still serialize logical mutations through the storage mutex; the
stripes only guard the short fetch-copy-unpin window against lock-free
readers.
"""

from __future__ import annotations

import threading

#: Default stripe count.  Collisions only cost a brief wait on an
#: unrelated page; 64 keeps the false-sharing odds low for any plausible
#: thread count while staying cheap to allocate per database.
DEFAULT_STRIPES = 64


class StripedLock:
    """N-way striped mutual exclusion keyed by an integer (a page id)."""

    __slots__ = ("_locks", "_stripes")

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        if stripes < 1:
            raise ValueError("stripe count must be >= 1")
        self._stripes = stripes
        self._locks = [threading.Lock() for _ in range(stripes)]

    @property
    def stripes(self) -> int:
        """Number of stripes."""
        return self._stripes

    def lock_for(self, key: int) -> threading.Lock:
        """The stripe lock guarding ``key`` (exposed for tests/diagnostics)."""
        return self._locks[hash(key) % self._stripes]

    def acquire(self, key: int) -> None:
        """Acquire the stripe guarding ``key`` (blocking)."""
        self._locks[hash(key) % self._stripes].acquire()

    def release(self, key: int) -> None:
        """Release the stripe guarding ``key``."""
        self._locks[hash(key) % self._stripes].release()
