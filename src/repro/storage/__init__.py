"""The persistence library: the substrate under the versioning kernel.

This package is the Python analogue of the Buroff--Shasha C++ persistence
library the paper's implementation section relies on (paper §6, [10]):
fixed-size slotted pages over a single database file, a pinning buffer
pool, heap files with stable record ids, a write-ahead log with crash
recovery, a stable binary codec, deltas for derived-from version storage,
and a system catalog.
"""

from repro.storage.buffer import BufferPool, DEFAULT_POOL_SIZE
from repro.storage.catalog import CATALOG_FILE_ID, Catalog
from repro.storage.delta import (
    DeltaStats,
    apply_delta,
    compute_delta,
    delta_stats,
    materialize_chain,
)
from repro.storage.disk import DiskManager, META_PAGE_ID
from repro.storage.heap import MAX_INLINE, HeapFile, Rid
from repro.storage.pages import MAX_RECORD_PAYLOAD, PAGE_SIZE, SlottedPage
from repro.storage.serialization import decode, encode, register_type
from repro.storage.wal import LogManager, LogRecord, RecoveryReport, recover

__all__ = [
    "BufferPool",
    "DEFAULT_POOL_SIZE",
    "CATALOG_FILE_ID",
    "Catalog",
    "DeltaStats",
    "apply_delta",
    "compute_delta",
    "delta_stats",
    "materialize_chain",
    "DiskManager",
    "META_PAGE_ID",
    "MAX_INLINE",
    "HeapFile",
    "Rid",
    "MAX_RECORD_PAYLOAD",
    "PAGE_SIZE",
    "SlottedPage",
    "decode",
    "encode",
    "register_type",
    "LogManager",
    "LogRecord",
    "RecoveryReport",
    "recover",
]
