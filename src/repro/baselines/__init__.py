"""Related-work version models the paper compares against (paper §7).

Semantic reimplementations -- the comparisons the paper draws are about
model behaviour (declared versionability, transformation procedures,
linear histories, type-based version sets), which these reproduce exactly;
all use the same codec as the kernel so benchmark differences reflect the
models, not serialization.
"""

from repro.baselines.encore import EncoreStore, HistoryBearingEntity, VersionSet
from repro.baselines.iris import IrisObject, IrisStore, IrisVersion
from repro.baselines.linear import LinearityError, LinearObject, LinearStore
from repro.baselines.orion import (
    GenericHeader,
    OrionStore,
    OrionVersion,
    PRIVATE,
    PROJECT,
    PUBLIC,
    RELEASED,
    TRANSIENT,
    WORKING,
)

__all__ = [
    "EncoreStore",
    "HistoryBearingEntity",
    "VersionSet",
    "IrisObject",
    "IrisStore",
    "IrisVersion",
    "LinearityError",
    "LinearObject",
    "LinearStore",
    "GenericHeader",
    "OrionStore",
    "OrionVersion",
    "PRIVATE",
    "PROJECT",
    "PUBLIC",
    "RELEASED",
    "TRANSIENT",
    "WORKING",
]
