"""IRIS's version model (Beech & Mahbod [8]), as the paper describes it.

Paper §3/§7: "In IRIS, a previously unversioned object can be versioned,
but it has to go through a transformation procedure" -- versioning is
orthogonal to type (unlike ORION), but *not free at versioning time*
(unlike Ode, where any object can gain a second version with no
transformation at all).

The transformation procedure, per the IRIS design: the unversioned object
becomes a *generic object*; its state is copied into a new first-version
instance; and every stored reference to the object now goes through the
generic object for default resolution.  We reproduce the costs:

* copying the object's state (O(object size));
* rewriting the reference table entries that pointed at the unversioned
  instance (O(#references), simulated through an explicit reference
  registry, since IRIS tracked references through its object manager).

Experiment E6 measures this transformation against Ode's free
``newversion`` and ORION's extent migration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BaselineError
from repro.storage import serialization


@dataclass
class IrisVersion:
    """One version instance of a versioned IRIS object."""

    number: int
    payload: bytes

    def materialize(self) -> Any:
        """Decode a fresh copy."""
        return serialization.decode(self.payload)


@dataclass
class IrisObject:
    """An IRIS object: unversioned payload or generic + version set."""

    object_id: int
    versioned: bool
    payload: bytes | None = None  # unversioned form
    versions: dict[int, IrisVersion] = field(default_factory=dict)
    default_version: int | None = None
    next_number: int = 1


class IrisStore:
    """IRIS-style store: version anything, after a transformation."""

    def __init__(self) -> None:
        self._objects: dict[int, IrisObject] = {}
        self._ids = itertools.count(1)
        # reference registry: target object id -> referencing object ids.
        self._references: dict[int, set[int]] = {}
        #: Work done by transformations (consumed by experiment E6).
        self.transform_bytes = 0
        self.references_rewritten = 0

    def create(self, obj: Any, references: list[int] | None = None) -> int:
        """Create an unversioned object; ``references`` lists objects it points at."""
        object_id = next(self._ids)
        payload = serialization.encode(obj)
        self._objects[object_id] = IrisObject(object_id, False, payload=payload)
        for target in references or ():
            self._references.setdefault(target, set()).add(object_id)
        return object_id

    def _object(self, object_id: int) -> IrisObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise BaselineError(f"no object {object_id}") from None

    def is_versioned(self, object_id: int) -> bool:
        """True once the object has been transformed."""
        return self._object(object_id).versioned

    def transform_to_versioned(self, object_id: int) -> None:
        """The IRIS transformation procedure (the E6 cost).

        Copies the object's state into a first version under a generic
        object, and rewrites every registered inbound reference to resolve
        through the generic object.  Idempotent by refusal: transforming a
        versioned object raises.
        """
        record = self._object(object_id)
        if record.versioned:
            raise BaselineError(f"object {object_id} is already versioned")
        assert record.payload is not None
        payload = bytes(record.payload)  # the state copy
        self.transform_bytes += len(payload)
        record.versions[1] = IrisVersion(1, payload)
        record.default_version = 1
        record.next_number = 2
        record.versioned = True
        record.payload = None
        # Reference rewriting: each inbound reference is re-bound to the
        # generic object (unit of work per reference).
        inbound = self._references.get(object_id, set())
        self.references_rewritten += len(inbound)

    def new_version(self, object_id: int) -> int:
        """Create a version; requires the object to be versioned already.

        The Ode comparison point: in Ode this works on *any* object with no
        prior step, while IRIS callers must first pay
        :meth:`transform_to_versioned`.
        """
        record = self._object(object_id)
        if not record.versioned:
            raise BaselineError(
                f"object {object_id} must be transformed before versioning"
            )
        assert record.default_version is not None
        base = record.versions[record.default_version]
        number = record.next_number
        record.next_number += 1
        record.versions[number] = IrisVersion(number, bytes(base.payload))
        record.default_version = number
        return number

    def update(self, object_id: int, obj: Any, number: int | None = None) -> None:
        """Mutate the object (its default version when versioned)."""
        record = self._object(object_id)
        payload = serialization.encode(obj)
        if not record.versioned:
            record.payload = payload
            return
        if number is None:
            number = record.default_version
        version = record.versions.get(number) if number is not None else None
        if version is None:
            raise BaselineError(f"no version {number} of object {object_id}")
        version.payload = payload

    def deref_generic(self, object_id: int) -> Any:
        """Generic dereference: default version (or the unversioned state)."""
        record = self._object(object_id)
        if not record.versioned:
            assert record.payload is not None
            return serialization.decode(record.payload)
        assert record.default_version is not None
        return record.versions[record.default_version].materialize()

    def deref_specific(self, object_id: int, number: int) -> Any:
        """Specific dereference to one version."""
        record = self._object(object_id)
        if not record.versioned:
            raise BaselineError(f"object {object_id} is not versioned")
        try:
            return record.versions[number].materialize()
        except KeyError:
            raise BaselineError(f"no version {number} of object {object_id}") from None

    def versions_of(self, object_id: int) -> list[int]:
        """Version numbers, ascending (empty for unversioned objects)."""
        return sorted(self._object(object_id).versions)
