"""ENCORE's version model (Hornick & Zdonik [19]), as the paper describes it.

Paper §7: "Version control in ENCORE is realized by introducing two new
types: History-Bearing-Entity (HBE) and Version-Set.  To create a
versioned object, its corresponding type must inherit the properties
defined by these two types.  Properties defined by HBE include
next-version and previous-version.  Version-Set is used to collect all of
the versions of an object.  It provides an insert operation that allows
new versions to be added at the end of a version sequence or as an
alternative to an existing version."

Points of contrast with Ode that the experiments exercise:

* versionability comes from **type inheritance** (like ORION's
  declaration, unlike Ode's orthogonality) -- a type that does not inherit
  :class:`HistoryBearingEntity` cannot be versioned;
* generic access goes through the **Version-Set object** (one more
  indirection than Ode's object table, measured by experiment E7);
* the derivation structure is expressed through HBE's
  next-version/previous-version properties and Version-Set's positional
  insert.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import BaselineError
from repro.storage import serialization


class HistoryBearingEntity:
    """The HBE mixin: next-version / previous-version properties.

    User types must inherit this (plus have their instances collected in a
    :class:`VersionSet`) to be versionable in the ENCORE model.
    """

    def __init__(self) -> None:
        self.previous_version: int | None = None
        self.next_versions: list[int] = []


class VersionSet:
    """Collects all the versions of one object.

    Versions are payload snapshots with HBE linkage.  ``insert`` appends at
    the end of the version sequence or as an alternative to an existing
    version, per the ENCORE description.
    """

    def __init__(self, set_id: int, type_name: str) -> None:
        self.set_id = set_id
        self.type_name = type_name
        self._payloads: dict[int, bytes] = {}
        self._previous: dict[int, int | None] = {}
        self._next: dict[int, list[int]] = {}
        self._sequence: list[int] = []  # insertion order == version sequence
        self._ids = itertools.count(1)
        self.default_version: int | None = None

    def insert(self, obj: Any, alternative_to: int | None = None) -> int:
        """Insert a version at the end of the sequence, or as an alternative.

        ``alternative_to=None`` chains from the current end of the
        sequence; otherwise the new version is an alternative derived from
        the named version.
        """
        number = next(self._ids)
        if alternative_to is None:
            previous = self._sequence[-1] if self._sequence else None
        else:
            if alternative_to not in self._payloads:
                raise BaselineError(
                    f"no version {alternative_to} in version set {self.set_id}"
                )
            previous = alternative_to
        self._payloads[number] = serialization.encode(obj)
        self._previous[number] = previous
        self._next[number] = []
        if previous is not None:
            self._next[previous].append(number)
        self._sequence.append(number)
        self.default_version = number
        return number

    def versions(self) -> list[int]:
        """Version numbers in sequence order."""
        return list(self._sequence)

    def previous_of(self, number: int) -> int | None:
        """HBE previous-version property."""
        self._require(number)
        return self._previous[number]

    def next_of(self, number: int) -> list[int]:
        """HBE next-version property."""
        self._require(number)
        return list(self._next[number])

    def materialize(self, number: int) -> Any:
        """Decode a fresh copy of one version."""
        self._require(number)
        return serialization.decode(self._payloads[number])

    def update(self, number: int, obj: Any) -> None:
        """Replace one version's state."""
        self._require(number)
        self._payloads[number] = serialization.encode(obj)

    def _require(self, number: int) -> None:
        if number not in self._payloads:
            raise BaselineError(f"no version {number} in version set {self.set_id}")


class EncoreStore:
    """ENCORE-style store: versioning through HBE + Version-Set types."""

    def __init__(self) -> None:
        self._sets: dict[int, VersionSet] = {}
        # object id -> version-set id: the extra indirection generic
        # dereference pays in this model (experiment E7).
        self._set_of_object: dict[int, int] = {}
        self._ids = itertools.count(1)

    def create(self, obj: Any) -> int:
        """Create a versioned object (its type must inherit HBE).

        Returns the object id; the first version is inserted into a fresh
        version set.
        """
        if not isinstance(obj, HistoryBearingEntity):
            raise BaselineError(
                f"{type(obj).__qualname__} does not inherit HistoryBearingEntity; "
                "ENCORE types must inherit HBE + Version-Set properties"
            )
        object_id = next(self._ids)
        set_id = next(self._ids)
        vset = VersionSet(set_id, type(obj).__qualname__)
        vset.insert(obj)
        self._sets[set_id] = vset
        self._set_of_object[object_id] = set_id
        return object_id

    def version_set(self, object_id: int) -> VersionSet:
        """The object's version set (the indirection step)."""
        try:
            return self._sets[self._set_of_object[object_id]]
        except KeyError:
            raise BaselineError(f"no object {object_id}") from None

    def deref_generic(self, object_id: int) -> Any:
        """Generic dereference: object -> version set -> default version."""
        vset = self.version_set(object_id)
        if vset.default_version is None:
            raise BaselineError(f"object {object_id} has no versions")
        return vset.materialize(vset.default_version)

    def deref_specific(self, object_id: int, number: int) -> Any:
        """Specific dereference: still resolves through the version set."""
        return self.version_set(object_id).materialize(number)

    def new_version(self, object_id: int, alternative_to: int | None = None) -> int:
        """Insert a new version (sequence end, or alternative to one)."""
        vset = self.version_set(object_id)
        base_number = (
            alternative_to if alternative_to is not None else vset.default_version
        )
        if base_number is None:
            raise BaselineError(f"object {object_id} has no versions")
        base = vset.materialize(base_number)
        return vset.insert(base, alternative_to=alternative_to)
