"""Linear version histories (GemStone [14] / POSTGRES [29] style).

Paper §3: "Some current versioning proposals (GemStone [14] and POSTGRES
[29], for example) constrain the version relationship of an object to be
linear, which is inadequate for design databases."  Paper §7: they
"allow versioning of objects to capture the history of database states.
The version relationship of an object is constrained to be linear."

This baseline enforces exactly that constraint so experiment E9 can show
both halves of the paper's claim:

* **correctness**: deriving a variant from a non-latest version raises
  :class:`LinearityError` in strict mode -- the model simply cannot
  represent design alternatives;
* **cost of the workaround**: ``branch_by_copy`` emulates what a linear
  system's user must do instead -- copy the old version's state into a
  brand-new object, losing shared identity and history.

It is good at what it was built for -- historical databases -- so it also
serves as the comparison substrate in the historical-query experiment
(E12): ``as_of`` reads the state at a past position of the linear chain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BaselineError
from repro.storage import serialization


class LinearityError(BaselineError):
    """The linear model cannot represent the requested branching."""


@dataclass
class LinearObject:
    """An object with a strictly linear chain of versions."""

    object_id: int
    chain: list[bytes] = field(default_factory=list)  # index == version number


class LinearStore:
    """A versioned store whose histories are constrained to be linear."""

    def __init__(self) -> None:
        self._objects: dict[int, LinearObject] = {}
        self._ids = itertools.count(1)
        #: Bytes copied by branch_by_copy workarounds (experiment E9).
        self.branch_copy_bytes = 0

    def create(self, obj: Any) -> int:
        """Create an object with one initial version."""
        object_id = next(self._ids)
        record = LinearObject(object_id)
        record.chain.append(serialization.encode(obj))
        self._objects[object_id] = record
        return object_id

    def _object(self, object_id: int) -> LinearObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise BaselineError(f"no object {object_id}") from None

    def new_version(self, object_id: int, base: int | None = None) -> int:
        """Append a version to the chain.

        ``base`` may name only the latest version; anything older raises
        :class:`LinearityError` -- the defining restriction of the model.
        Returns the new version's index.
        """
        record = self._object(object_id)
        latest = len(record.chain) - 1
        if base is not None and base != latest:
            raise LinearityError(
                f"linear history: cannot derive from version {base}, "
                f"only from the latest ({latest})"
            )
        record.chain.append(bytes(record.chain[latest]))
        return latest + 1

    def branch_by_copy(self, object_id: int, base: int) -> int:
        """The linear user's variant workaround: copy into a new object.

        Copies version ``base`` of the object into a brand-new object with
        a fresh identity and a one-entry history.  The copy severs shared
        identity: the variant no longer tracks -- or is reachable from --
        the original (the cost E9 quantifies alongside the byte copying).
        """
        record = self._object(object_id)
        try:
            payload = record.chain[base]
        except IndexError:
            raise BaselineError(f"no version {base} of object {object_id}") from None
        self.branch_copy_bytes += len(payload)
        new_id = next(self._ids)
        clone = LinearObject(new_id)
        clone.chain.append(bytes(payload))
        self._objects[new_id] = clone
        return new_id

    def update(self, object_id: int, obj: Any, version: int | None = None) -> None:
        """Mutate a version (the latest by default)."""
        record = self._object(object_id)
        if version is None:
            version = len(record.chain) - 1
        try:
            record.chain[version]
        except IndexError:
            raise BaselineError(f"no version {version} of object {object_id}") from None
        record.chain[version] = serialization.encode(obj)

    def deref(self, object_id: int) -> Any:
        """Read the latest version."""
        record = self._object(object_id)
        return serialization.decode(record.chain[-1])

    def as_of(self, object_id: int, version: int) -> Any:
        """Historical read: the state as of chain position ``version``."""
        record = self._object(object_id)
        try:
            payload = record.chain[version]
        except IndexError:
            raise BaselineError(f"no version {version} of object {object_id}") from None
        return serialization.decode(payload)

    def version_count(self, object_id: int) -> int:
        """Length of the object's chain."""
        return len(self._object(object_id).chain)
