"""ORION's version model (Chou & Kim [13]), as the paper describes it.

Paper §7: "A comprehensive versioning model for public/private distributed
architecture of CAD systems has been developed as part of the ORION
project [13].  Versions can be transient, working, or released depending
upon their location in public, project, or private databases.  Versions
can be created by checkout and checkin, derivation, and promotion.  Only
objects of classes declared to be versionable can be versioned."

This is a semantic reimplementation for the paper's comparisons:

* **declared versionability** (vs Ode's orthogonality, experiment E6):
  objects of undeclared classes cannot be versioned; retrofitting
  versionability migrates the whole class extent into generic-header form;
* **generic object headers** (vs Ode's object-id-is-latest): a generic
  reference resolves through a header object holding a user-settable
  default version;
* **checkout / checkin / promotion across private / project / public
  databases** (vs Ode's single-database ``newversion``, experiment E10):
  each movement copies the version's state between databases.

State is stored serialized with the same codec as the kernel, so the
benchmark comparisons measure model differences, not codec differences.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BaselineError, CheckoutError, NotVersionableError
from repro.storage import serialization

#: Version statuses (by database residence).
TRANSIENT = "transient"  # private database; mutable, deletable
WORKING = "working"      # project database; immutable, derivable
RELEASED = "released"    # public database; immutable, permanent

#: Database tiers.
PRIVATE = "private"
PROJECT = "project"
PUBLIC = "public"

_STATUS_DB = {TRANSIENT: PRIVATE, WORKING: PROJECT, RELEASED: PUBLIC}


@dataclass
class OrionVersion:
    """One version instance living in one of the three databases."""

    number: int
    status: str
    derived_from: int | None
    payload: bytes

    def materialize(self) -> Any:
        """Decode a fresh copy of this version's object."""
        return serialization.decode(self.payload)


@dataclass
class GenericHeader:
    """ORION's generic object: the version-set header.

    Holds the version set and the *default version* that generic
    references resolve to.  (Ode deliberately has no such header -- paper
    §4: "an object id does not refer to a generic object header".)
    """

    object_id: int
    class_name: str
    versions: dict[int, OrionVersion] = field(default_factory=dict)
    default_version: int | None = None
    next_number: int = 1

    def resolve_default(self) -> OrionVersion:
        """The version a generic reference denotes."""
        if self.default_version is None:
            raise BaselineError(f"object {self.object_id} has no default version")
        return self.versions[self.default_version]


class OrionStore:
    """The three-tier ORION database with declared versionability."""

    def __init__(self) -> None:
        self._versionable: set[str] = set()
        self._headers: dict[int, GenericHeader] = {}
        # Unversioned instances: plain payloads, no header machinery.
        self._unversioned: dict[int, tuple[str, bytes]] = {}
        self._ids = itertools.count(1)
        #: Bytes copied by extent migrations (consumed by experiment E6).
        self.migration_bytes = 0
        #: Bytes copied across databases by checkout/checkin (E10).
        self.transfer_bytes = 0

    # -- class declarations -----------------------------------------------------

    def declare_versionable(self, class_name: str) -> None:
        """Declare a class versionable *at schema time* (the ORION way)."""
        self._versionable.add(class_name)

    def is_versionable(self, class_name: str) -> bool:
        """True if the class was declared versionable."""
        return class_name in self._versionable

    def make_versionable(self, class_name: str) -> int:
        """Retrofit versionability: migrate the whole extent (E6's cost).

        Every existing unversioned instance of the class is copied into a
        generic header with one transient version.  Returns the number of
        migrated instances; ``migration_bytes`` accumulates the copy cost.
        """
        self._versionable.add(class_name)
        migrated = 0
        for object_id, (cls, payload) in list(self._unversioned.items()):
            if cls != class_name:
                continue
            header = GenericHeader(object_id, class_name)
            version = OrionVersion(1, TRANSIENT, None, bytes(payload))
            self.migration_bytes += len(payload)
            header.versions[1] = version
            header.default_version = 1
            header.next_number = 2
            self._headers[object_id] = header
            del self._unversioned[object_id]
            migrated += 1
        return migrated

    # -- object creation -----------------------------------------------------------

    def create(self, class_name: str, obj: Any) -> int:
        """Create an instance; versioned iff the class was declared."""
        object_id = next(self._ids)
        payload = serialization.encode(obj)
        if class_name in self._versionable:
            header = GenericHeader(object_id, class_name)
            header.versions[1] = OrionVersion(1, TRANSIENT, None, payload)
            header.default_version = 1
            header.next_number = 2
            self._headers[object_id] = header
        else:
            self._unversioned[object_id] = (class_name, payload)
        return object_id

    def header(self, object_id: int) -> GenericHeader:
        """The generic header (raises for unversioned objects)."""
        header = self._headers.get(object_id)
        if header is None:
            if object_id in self._unversioned:
                raise NotVersionableError(
                    f"object {object_id}'s class was not declared versionable"
                )
            raise BaselineError(f"no object {object_id}")
        return header

    # -- generic / specific dereference ------------------------------------------

    def deref_generic(self, object_id: int) -> Any:
        """Resolve a generic reference: header lookup + default version."""
        header = self._headers.get(object_id)
        if header is not None:
            return header.resolve_default().materialize()
        try:
            _cls, payload = self._unversioned[object_id]
        except KeyError:
            raise BaselineError(f"no object {object_id}") from None
        return serialization.decode(payload)

    def deref_specific(self, object_id: int, number: int) -> Any:
        """Resolve a specific reference to one version."""
        header = self.header(object_id)
        try:
            return header.versions[number].materialize()
        except KeyError:
            raise BaselineError(f"no version {number} of object {object_id}") from None

    def set_default(self, object_id: int, number: int) -> None:
        """Point the generic header's default at a version."""
        header = self.header(object_id)
        if number not in header.versions:
            raise BaselineError(f"no version {number} of object {object_id}")
        header.default_version = number

    # -- the checkout / checkin / promote cycle -------------------------------------

    def checkout(self, object_id: int, number: int | None = None) -> int:
        """Copy a working/released version into the private DB as transient.

        Returns the new transient version's number.  This is ORION's way to
        start an edit; the copy cost is the E10 comparison point against
        Ode's ``newversion``.
        """
        header = self.header(object_id)
        if number is None:
            number = header.default_version
        base = header.versions.get(number) if number is not None else None
        if base is None:
            raise CheckoutError(f"no version {number} of object {object_id}")
        if base.status == TRANSIENT:
            raise CheckoutError("transient versions are already checked out")
        new_number = header.next_number
        header.next_number += 1
        payload = bytes(base.payload)  # copy across databases
        self.transfer_bytes += len(payload)
        header.versions[new_number] = OrionVersion(
            new_number, TRANSIENT, base.number, payload
        )
        return new_number

    def update_transient(self, object_id: int, number: int, obj: Any) -> None:
        """Mutate a transient (checked-out) version in the private DB."""
        version = self.header(object_id).versions.get(number)
        if version is None or version.status != TRANSIENT:
            raise CheckoutError(f"version {number} is not checked out")
        version.payload = serialization.encode(obj)

    def checkin(self, object_id: int, number: int) -> None:
        """Promote transient -> working: copy private DB -> project DB."""
        version = self.header(object_id).versions.get(number)
        if version is None or version.status != TRANSIENT:
            raise CheckoutError(f"version {number} is not checked out")
        self.transfer_bytes += len(version.payload)  # cross-database move
        version.status = WORKING
        self.header(object_id).default_version = number

    def promote(self, object_id: int, number: int) -> None:
        """Promote working -> released: copy project DB -> public DB."""
        version = self.header(object_id).versions.get(number)
        if version is None or version.status != WORKING:
            raise CheckoutError(f"version {number} is not working")
        self.transfer_bytes += len(version.payload)
        version.status = RELEASED

    def derive(self, object_id: int, number: int) -> int:
        """Derive a new transient version from a working/released one."""
        return self.checkout(object_id, number)

    # -- introspection ---------------------------------------------------------------

    def database_of(self, object_id: int, number: int) -> str:
        """Which database tier the version resides in."""
        version = self.header(object_id).versions.get(number)
        if version is None:
            raise BaselineError(f"no version {number} of object {object_id}")
        return _STATUS_DB[version.status]

    def versions_of(self, object_id: int) -> list[int]:
        """Version numbers of an object, ascending."""
        return sorted(self.header(object_id).versions)
