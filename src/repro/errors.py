"""Exception hierarchy for ode-py.

Every error raised by the library derives from :class:`OdeError`, so callers
can catch one base class at an API boundary.  The hierarchy mirrors the
subsystems: storage errors (pages, heap, WAL), identity/version errors (the
paper's kernel), transaction errors, and policy errors.
"""

from __future__ import annotations


class OdeError(Exception):
    """Base class for every error raised by ode-py."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(OdeError):
    """Base class for errors raised by the persistence substrate."""


class PageError(StorageError):
    """A slotted-page operation failed (bad slot, page overflow, ...)."""


class PageFullError(PageError):
    """The record does not fit in the page's free space."""


class BadSlotError(PageError):
    """The referenced slot does not exist or holds no record."""


class DiskError(StorageError):
    """Low-level file I/O against the database file failed."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all frames pinned)."""


class HeapError(StorageError):
    """A heap-file record operation failed."""


class RecordNotFoundError(HeapError):
    """No record lives at the given record id."""


class WalError(StorageError):
    """The write-ahead log is corrupt or an append/replay failed."""


class SerializationError(StorageError):
    """A value could not be encoded to or decoded from the stable codec."""


class DeltaError(StorageError):
    """A delta could not be computed or applied against its base."""


class CatalogError(StorageError):
    """The system catalog is missing an entry or is inconsistent."""


# ---------------------------------------------------------------------------
# Versioning kernel
# ---------------------------------------------------------------------------


class VersionError(OdeError):
    """Base class for version-graph and version-store errors."""


class UnknownObjectError(VersionError):
    """The object id does not name a live persistent object."""


class UnknownVersionError(VersionError):
    """The version id does not name a live version."""


class DanglingReferenceError(VersionError):
    """A Ref/VersionRef was dereferenced after its target was deleted."""


class GraphInvariantError(VersionError):
    """An internal version-graph invariant was violated (a bug if seen)."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(OdeError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (explicitly or by conflict)."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired before the deadlock-avoidance timeout."""


class TransactionStateError(TransactionError):
    """An operation was issued against a finished or inactive transaction."""


# ---------------------------------------------------------------------------
# Policies and baselines
# ---------------------------------------------------------------------------


class PolicyError(OdeError):
    """Base class for errors in policy modules (configurations, ...)."""


class ConfigurationError(PolicyError):
    """A configuration binding is missing or cannot be resolved."""


class BaselineError(OdeError):
    """Base class for errors raised by the related-work baseline models."""


class NotVersionableError(BaselineError):
    """ORION-style model: the class was not declared versionable."""


class CheckoutError(BaselineError):
    """ORION-style model: invalid checkout/checkin sequence."""
