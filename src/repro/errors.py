"""Exception hierarchy for ode-py.

Every error raised by the library derives from :class:`OdeError`, so callers
can catch one base class at an API boundary.  The hierarchy mirrors the
subsystems: storage errors (pages, heap, WAL), identity/version errors (the
paper's kernel), transaction errors, and policy errors.
"""

from __future__ import annotations


class OdeError(Exception):
    """Base class for every error raised by ode-py."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(OdeError):
    """Base class for errors raised by the persistence substrate."""


class PageError(StorageError):
    """A slotted-page operation failed (bad slot, page overflow, ...)."""


class PageFullError(PageError):
    """The record does not fit in the page's free space."""


class BadSlotError(PageError):
    """The referenced slot does not exist or holds no record."""


class DiskError(StorageError):
    """Low-level file I/O against the database file failed."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all frames pinned)."""


class HeapError(StorageError):
    """A heap-file record operation failed."""


class RecordNotFoundError(HeapError):
    """No record lives at the given record id."""


class WalError(StorageError):
    """The write-ahead log is corrupt or an append/replay failed."""


class SerializationError(StorageError):
    """A value could not be encoded to or decoded from the stable codec."""


class DeltaError(StorageError):
    """A delta could not be computed or applied against its base."""


class CatalogError(StorageError):
    """The system catalog is missing an entry or is inconsistent."""


class BlobError(StorageError):
    """A content-addressed blob operation failed (bad key, refcount bug)."""


class BlobMissingError(BlobError):
    """The blob file for a content key is not on disk.

    Snapshot readers treat this exactly like a deleted heap record: the
    payload was displaced by a writer or the GC, so the reader re-checks
    its stash overlay (stash-before-overwrite guarantees the bytes are
    there for any version the snapshot can still reach).  Seen outside
    that protocol it indicates a refcount-accounting bug -- the blob
    audit in ``repro.tools.check`` looks for exactly that.
    """


# ---------------------------------------------------------------------------
# Versioning kernel
# ---------------------------------------------------------------------------


class VersionError(OdeError):
    """Base class for version-graph and version-store errors."""


class UnknownObjectError(VersionError):
    """The object id does not name a live persistent object."""


class UnknownVersionError(VersionError):
    """The version id does not name a live version."""


class DanglingReferenceError(VersionError):
    """A Ref/VersionRef was dereferenced after its target was deleted."""


class GraphInvariantError(VersionError):
    """An internal version-graph invariant was violated (a bug if seen)."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(OdeError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (explicitly or by conflict)."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired before the transaction's deadline."""


class DeadlockError(TransactionError):
    """The wait-for graph detector chose this transaction as a deadlock victim.

    Carries the detected cycle (a tuple of transaction ids, in wait order)
    and the victim's txid so callers and tests can see *why* the abort
    happened.  Retryable: abort and re-run the transaction (see
    ``Database.run_transaction``).
    """

    def __init__(
        self,
        message: str,
        cycle: tuple[int, ...] = (),
        victim: int | None = None,
    ) -> None:
        super().__init__(message)
        self.cycle = tuple(cycle)
        self.victim = victim


class TransactionStateError(TransactionError):
    """An operation was issued against a finished or inactive transaction."""


class ReadOnlySnapshotError(TransactionError):
    """A write was attempted through a snapshot view or snapshot-read
    transaction.

    Snapshot views and snapshot-read transactions reject writes; use an
    ordinary transaction (strict 2PL) for mutations.
    """


class DatabaseDegradedError(OdeError):
    """The database is in read-only degraded mode after persistent I/O failure.

    Reads and version traversal keep working; writes fail fast with this
    error.  Not retryable -- the condition persists until the process is
    restarted against healthy storage.  ``Database.degraded_reason`` (and
    ``db.stats()['degraded.reason']``) say what went wrong.
    """


# ---------------------------------------------------------------------------
# Network service layer
# ---------------------------------------------------------------------------


class NetworkError(OdeError):
    """Base class for errors raised by the network service layer."""


class DeadlineExceededError(NetworkError):
    """A wire operation did not complete within its deadline.

    Raised client-side: the request may or may not have executed on the
    server (a timed-out commit is *indeterminate* -- the value may be
    durable).  Retryable for idempotent operations; read-modify-write
    sequences must re-run from the read.
    """


class ServerOverloadedError(NetworkError):
    """The server shed this request under admission control.

    The connection exceeded its bounded in-flight budget; the request
    was rejected before execution, so retrying after backoff is always
    safe (the server did not run it).
    """


class ServerDrainingError(NetworkError):
    """The server is draining: finishing in-flight work, taking no new.

    New transactions and mutations are refused while a graceful shutdown
    completes.  Retryable -- against a replacement server, or after the
    drain is cancelled.
    """


class SessionStateError(NetworkError):
    """A session was used illegally (closed, or active on two threads)."""


class ProtocolError(NetworkError):
    """A wire frame could not be parsed (bad magic, malformed header/body)."""


class FrameTooLargeError(ProtocolError):
    """A frame declared a payload larger than the negotiated maximum.

    The server answers with a clean error frame before closing the
    connection, so a misbehaving client learns why it was dropped.
    """


class ConnectionClosedError(NetworkError):
    """The connection closed while requests were still in flight."""


class RemoteError(NetworkError):
    """The server reported an error that has no local exception class.

    Known kernel errors (``DeadlockError``, ``UnknownObjectError``, ...)
    are re-raised client-side as their real classes; this is the fallback
    carrier for anything else.  ``error_name`` holds the server-side
    class name.
    """

    def __init__(self, message: str, error_name: str = "RemoteError") -> None:
        super().__init__(message)
        self.error_name = error_name


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------


class ShardUnavailableError(OdeError):
    """The operation touched a shard that is down (its failure domain).

    The sharded router fails such operations *fast* -- no hang, no
    timeout burn -- while reads and transactions confined to healthy
    shards keep serving.  Retryable: the shard may be reattached online
    (``ShardedDatabase.reattach_shard``), after which the same operation
    succeeds.  ``shard`` names the down shard when known.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard


# ---------------------------------------------------------------------------
# Policies and baselines
# ---------------------------------------------------------------------------


class PolicyError(OdeError):
    """Base class for errors in policy modules (configurations, ...)."""


class ConfigurationError(PolicyError):
    """A configuration binding is missing or cannot be resolved."""


class BaselineError(OdeError):
    """Base class for errors raised by the related-work baseline models."""


class NotVersionableError(BaselineError):
    """ORION-style model: the class was not declared versionable."""


class CheckoutError(BaselineError):
    """ORION-style model: invalid checkout/checkin sequence."""
