"""Deterministic network chaos: an in-process proxy with scripted faults.

The crash matrix proved the *storage* layer survives a dying process;
this module is the equivalent attack surface for the *wire*.  A
:class:`ChaosProxy` sits between clients and an
:class:`~repro.net.server.OdeServer`, forwarding raw bytes both ways,
and a :class:`ChaosPlan` -- seeded, so every run is reproducible --
decides what happens to each connection and each forwarded chunk:

* **delay** -- hold a chunk for a bounded, seeded-random interval before
  forwarding (reordering across connections, latency spikes within one);
* **duplicate** -- forward a chunk twice (at-least-once delivery: the
  receiver sees the same frames, and therefore the same correlation
  ids, again);
* **drop_chunk** -- silently discard a chunk.  Mid-stream this loses
  frame bytes and desynchronizes the framing, exactly like a
  misbehaving middlebox; the peer's decoder rejects the stream and the
  connection dies, which is the point;
* **truncate** -- forward only a prefix of a chunk, then kill the
  connection: the canonical *truncate-mid-frame*;
* **drip** -- slow-drip a chunk a few bytes at a time (a pathologically
  slow peer; exercises incremental decoders and server write-buffer
  caps);
* **kill_after** -- abruptly close a connection after N forwarded bytes;
* **partition** -- refuse new connections and black-hole traffic on
  established ones until :meth:`ChaosProxy.heal` (an asymmetric-free,
  full partition).

Determinism: all probabilistic choices draw from one ``random.Random``
seeded in the plan, and chunk/connection ordinals are deterministic for
a deterministic workload.  Scripted one-shots (``kill_conn``,
``partition_at``) need no randomness at all.

Fault-registry composition: the proxy visits the ``net.proxy.*``
failpoints (:data:`repro.storage.faults.FAILPOINTS`) on accept and on
every forwarded chunk, so a crashmatrix-style :class:`~repro.storage.
faults.FaultPlan` can compose disk and network faults in one scenario --
e.g. crash the process at the exact moment a commit acknowledgement
crosses the wire, or inject an :class:`~repro.storage.faults.
InjectedFaultError` (the proxy turns it into a dropped connection).

:class:`ChaosProxyThread` is the synchronous embedding (the harness and
tests drive it next to :class:`~repro.net.server.ServerThread`).
"""

from __future__ import annotations

import asyncio
import random
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import NetworkError
from repro.storage import faults

__all__ = [
    "C2S",
    "S2C",
    "ChaosPlan",
    "ChaosProxy",
    "ChaosProxyThread",
]

#: Direction tags: client-to-server and server-to-client.
C2S = "c2s"
S2C = "s2c"

_CHUNK = 64 * 1024


@dataclass
class _DirRule:
    """Per-direction probabilistic knobs (all default off)."""

    delay_prob: float = 0.0
    delay_min: float = 0.0
    delay_max: float = 0.0
    dup_prob: float = 0.0
    drop_prob: float = 0.0
    truncate_prob: float = 0.0
    drip_bytes: int = 0
    drip_interval: float = 0.0


@dataclass
class _ConnScript:
    """Scripted one-shots for one connection ordinal."""

    refuse: bool = False
    kill_after_bytes: int | None = None


class ChaosPlan:
    """A seeded, scriptable schedule of network faults.

    Chainable like :class:`~repro.storage.faults.FaultPlan`::

        plan = (
            ChaosPlan(seed=7)
            .delay(S2C, prob=0.05, min_s=0.001, max_s=0.02)
            .duplicate(C2S, prob=0.02)
            .truncate(S2C, prob=0.01)
            .kill_conn(3)               # refuse the 4th connection
        )

    Probabilities are evaluated per forwarded chunk against a
    :class:`random.Random` derived per (connection ordinal, direction)
    via :meth:`stream_rng`, so each stream's fault schedule depends only
    on the seed and its own chunk sequence -- not on how asyncio happens
    to interleave the concurrent pump tasks.  A given seed plus a
    deterministic per-connection workload replays the same faults even
    under a concurrent swarm.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: dict[str, _DirRule] = {C2S: _DirRule(), S2C: _DirRule()}
        self._scripts: dict[int, _ConnScript] = {}

    def stream_rng(self, conn_ordinal: int, direction: str) -> random.Random:
        """An independent RNG for one connection's one direction.

        Seeded from ``(seed, ordinal, direction)`` via the string form
        (:class:`random.Random` hashes str seeds deterministically,
        unlike tuple hashes under ``PYTHONHASHSEED``).
        """
        return random.Random(f"{self.seed}:{conn_ordinal}:{direction}")

    def _rule(self, direction: str) -> _DirRule:
        try:
            return self._rules[direction]
        except KeyError:
            raise ValueError(
                f"direction must be {C2S!r} or {S2C!r}, not {direction!r}"
            ) from None

    def _script(self, conn: int) -> _ConnScript:
        return self._scripts.setdefault(conn, _ConnScript())

    # -- probabilistic knobs (chainable) -----------------------------------

    def delay(
        self, direction: str, prob: float, min_s: float, max_s: float
    ) -> "ChaosPlan":
        """Hold chunks for a seeded-random interval in ``[min_s, max_s]``."""
        rule = self._rule(direction)
        rule.delay_prob, rule.delay_min, rule.delay_max = prob, min_s, max_s
        return self

    def duplicate(self, direction: str, prob: float) -> "ChaosPlan":
        """Forward chunks twice with probability ``prob``."""
        self._rule(direction).dup_prob = prob
        return self

    def drop_chunk(self, direction: str, prob: float) -> "ChaosPlan":
        """Silently discard chunks (desyncs framing; the connection dies)."""
        self._rule(direction).drop_prob = prob
        return self

    def truncate(self, direction: str, prob: float) -> "ChaosPlan":
        """Forward a prefix of a chunk, then kill the connection."""
        self._rule(direction).truncate_prob = prob
        return self

    def drip(
        self, direction: str, bytes_per_tick: int, interval_s: float
    ) -> "ChaosPlan":
        """Slow-drip every chunk ``bytes_per_tick`` at a time."""
        rule = self._rule(direction)
        rule.drip_bytes, rule.drip_interval = bytes_per_tick, interval_s
        return self

    # -- scripted one-shots (deterministic, no randomness) ------------------

    def kill_conn(self, conn_ordinal: int) -> "ChaosPlan":
        """Refuse the Nth accepted connection outright (0-based)."""
        self._script(conn_ordinal).refuse = True
        return self

    def kill_after(self, conn_ordinal: int, nbytes: int) -> "ChaosPlan":
        """Abruptly close the Nth connection after forwarding ``nbytes``."""
        self._script(conn_ordinal).kill_after_bytes = nbytes
        return self


@dataclass
class ChaosStats:
    """What the proxy did -- asserted on by the harness and tests."""

    conns_total: int = 0
    conns_refused: int = 0
    conns_killed: int = 0
    chunks_forwarded: int = 0
    chunks_delayed: int = 0
    chunks_duplicated: int = 0
    chunks_dropped: int = 0
    chunks_truncated: int = 0
    bytes_forwarded: int = 0
    bytes_blackholed: int = 0
    partitions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f"chaos.{k}": v for k, v in self.__dict__.items()}


class _Link:
    """One proxied connection: two sockets, two pump tasks."""

    def __init__(
        self,
        ordinal: int,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        server_reader: asyncio.StreamReader,
        server_writer: asyncio.StreamWriter,
    ) -> None:
        self.ordinal = ordinal
        self.client_reader = client_reader
        self.client_writer = client_writer
        self.server_reader = server_reader
        self.server_writer = server_writer
        self.forwarded = 0
        self.dead = False

    def kill(self) -> None:
        """Abort both transports (RST-style, no graceful FIN)."""
        self.dead = True
        for writer in (self.client_writer, self.server_writer):
            transport = writer.transport
            if transport is not None and not transport.is_closing():
                transport.abort()


class ChaosProxy:
    """A TCP proxy that mutilates traffic according to a :class:`ChaosPlan`.

    Forwards ``host:port`` to ``target_host:target_port``.  ``plan=None``
    forwards faithfully (useful as a control, and because
    :meth:`partition` works regardless of plan).
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: ChaosPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.plan = plan or ChaosPlan()
        self.host = host
        self._requested_port = port
        self.stats = ChaosStats()
        self._server: asyncio.AbstractServer | None = None
        self._links: set[_Link] = set()
        self._tasks: set[asyncio.Task] = set()
        self._ordinals = iter(range(1 << 62))
        self._partitioned = False
        self._closed = False

    @property
    def port(self) -> int:
        """The proxy's bound port (connect clients here)."""
        assert self._server is not None, "proxy not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._links):
            link.kill()
        # Handler tasks park in reads (or a blackhole sleep) that the
        # kills above unblock only eventually; cancel and await them so
        # a closing event loop never destroys a pending pump.
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def __aenter__(self) -> "ChaosProxy":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- partition control ---------------------------------------------------

    def partition(self) -> None:
        """Full partition: refuse new connections, black-hole existing ones.

        Established connections stay *open* but no byte crosses in either
        direction -- the nastiest failure shape for a client, because
        nothing tells it the peer is gone; only its own deadline can.
        """
        if not self._partitioned:
            self._partitioned = True
            self.stats.partitions += 1

    def heal(self) -> None:
        """Lift the partition.  Connections that desynced during it die on
        their next frame; new connections succeed immediately."""
        self._partitioned = False

    # -- forwarding ----------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        ordinal = next(self._ordinals)
        self.stats.conns_total += 1
        script = self.plan._scripts.get(ordinal)
        try:
            faults.fire("net.proxy.accept")
        except faults.InjectedFaultError:
            script = _ConnScript(refuse=True)
        if self._partitioned or (script is not None and script.refuse):
            self.stats.conns_refused += 1
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            self.stats.conns_refused += 1
            writer.transport.abort()
            return
        link = _Link(ordinal, reader, writer, server_reader, server_writer)
        self._links.add(link)
        try:
            await asyncio.gather(
                self._pump(link, C2S), self._pump(link, S2C)
            )
        except asyncio.CancelledError:
            # Only close() cancels handler tasks; finish normally so the
            # streams module's connection callback (which re-raises a
            # cancelled handler's "exception") stays quiet.
            return
        finally:
            self._links.discard(link)
            link.kill()

    async def _pump(self, link: _Link, direction: str) -> None:
        """Forward one direction of one link, chunk by chunk, per the plan."""
        if direction == C2S:
            reader, writer = link.client_reader, link.server_writer
            failpoint = "net.proxy.forward.c2s"
        else:
            reader, writer = link.server_reader, link.client_writer
            failpoint = "net.proxy.forward.s2c"
        rule = self.plan._rule(direction)
        rng = self.plan.stream_rng(link.ordinal, direction)
        script = self.plan._scripts.get(link.ordinal)
        try:
            while not link.dead:
                data = await reader.read(_CHUNK)
                if not data:
                    break
                if self._partitioned:
                    # Black-hole: swallow the bytes, keep the socket open.
                    self.stats.bytes_blackholed += len(data)
                    continue
                try:
                    faults.fire(failpoint)
                except faults.InjectedFaultError:
                    self.stats.conns_killed += 1
                    link.kill()
                    return
                if rule.drop_prob and rng.random() < rule.drop_prob:
                    self.stats.chunks_dropped += 1
                    continue
                if rule.truncate_prob and rng.random() < rule.truncate_prob:
                    keep = rng.randrange(len(data)) if len(data) > 1 else 0
                    if keep:
                        writer.write(data[:keep])
                        self.stats.bytes_forwarded += keep
                    self.stats.chunks_truncated += 1
                    self.stats.conns_killed += 1
                    # Let the truncated prefix reach the peer's transport
                    # before the RST tears the link down.
                    try:
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    link.kill()
                    return
                if rule.delay_prob and rng.random() < rule.delay_prob:
                    self.stats.chunks_delayed += 1
                    await asyncio.sleep(rng.uniform(rule.delay_min, rule.delay_max))
                    if link.dead or self._partitioned:
                        self.stats.bytes_blackholed += len(data)
                        continue
                repeats = 1
                if rule.dup_prob and rng.random() < rule.dup_prob:
                    self.stats.chunks_duplicated += 1
                    repeats = 2
                for _ in range(repeats):
                    if rule.drip_bytes:
                        for at in range(0, len(data), rule.drip_bytes):
                            writer.write(data[at : at + rule.drip_bytes])
                            await writer.drain()
                            await asyncio.sleep(rule.drip_interval)
                    else:
                        writer.write(data)
                        await writer.drain()
                    self.stats.bytes_forwarded += len(data)
                self.stats.chunks_forwarded += 1
                link.forwarded += len(data)
                if (
                    script is not None
                    and script.kill_after_bytes is not None
                    and link.forwarded >= script.kill_after_bytes
                ):
                    self.stats.conns_killed += 1
                    link.kill()
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            if not link.dead:
                # Half-close propagation: one side hung up cleanly; tell
                # the other side so its reader sees EOF, not a stall.
                try:
                    if writer.can_write_eof():
                        writer.write_eof()
                except (OSError, RuntimeError):
                    pass


class ChaosProxyThread:
    """Run a :class:`ChaosProxy` on a private event loop in a daemon thread.

    The synchronous embedding, mirroring :class:`~repro.net.server.
    ServerThread`::

        with ServerThread(db) as srv, ChaosProxyThread(srv.host, srv.port, plan) as px:
            ...connect clients to ("127.0.0.1", px.port)...
            px.partition()
            ...
            px.heal()
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: ChaosPlan | None = None,
        **proxy_kwargs: Any,
    ) -> None:
        self._proxy = ChaosProxy(target_host, target_port, plan, **proxy_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def proxy(self) -> ChaosProxy:
        return self._proxy

    @property
    def port(self) -> int:
        return self._proxy.port

    @property
    def host(self) -> str:
        return self._proxy.host

    @property
    def stats(self) -> ChaosStats:
        return self._proxy.stats

    def start(self) -> "ChaosProxyThread":
        self._thread = threading.Thread(
            target=self._run, name="ode-chaos-proxy", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise NetworkError(
                f"chaos proxy failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        stop = loop.create_future()
        self._stop_future = stop

        async def main() -> None:
            try:
                await self._proxy.start()
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            try:
                await stop
            finally:
                await self._proxy.close()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def partition(self) -> None:
        """Thread-safe partition toggle (see :meth:`ChaosProxy.partition`)."""
        loop = self._loop
        assert loop is not None, "proxy not started"
        loop.call_soon_threadsafe(self._proxy.partition)

    def heal(self) -> None:
        loop = self._loop
        assert loop is not None, "proxy not started"
        loop.call_soon_threadsafe(self._proxy.heal)

    def kill_all(self) -> None:
        """Abort every live proxied connection (a mass disconnect)."""
        loop = self._loop
        assert loop is not None, "proxy not started"

        def _kill() -> None:
            for link in list(self._proxy._links):
                self._proxy.stats.conns_killed += 1
                link.kill()

        loop.call_soon_threadsafe(_kill)

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        loop.call_soon_threadsafe(
            lambda: self._stop_future.done() or self._stop_future.set_result(None)
        )
        assert self._thread is not None
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            raise NetworkError(
                "chaos proxy thread failed to stop within 30s; its event "
                "loop is wedged (a leaked pump task?)"
            )

    def __enter__(self) -> "ChaosProxyThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
